//! End-to-end confidentiality across every scheme: real keys, real
//! wrapping, real multicast messages processed by real member states.
//!
//! Verified properties, per scheme:
//!
//! - **liveness** — every present member can always produce the
//!   current group DEK;
//! - **forward secrecy** — a departed member processing every
//!   subsequent multicast message never recovers a later DEK;
//! - **backward secrecy** — a new member never recovers any DEK issued
//!   before its join.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::loss_forest::LossForestManager;
use rekey_core::one_tree::OneTreeManager;
use rekey_core::partition::{PtManager, QtManager, TtManager};
use rekey_core::{DurationClass, GroupKeyManager, Join};
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::MemberId;
use std::collections::BTreeMap;

struct Harness {
    states: BTreeMap<MemberId, GroupMember>,
    departed: Vec<MemberId>,
    old_deks: Vec<Key>,
    next_id: u64,
}

impl Harness {
    fn new() -> Self {
        Harness {
            states: BTreeMap::new(),
            departed: Vec::new(),
            old_deks: Vec::new(),
            next_id: 0,
        }
    }

    fn make_joins(&mut self, n: usize, rng: &mut StdRng) -> Vec<Join> {
        (0..n)
            .map(|i| {
                let id = MemberId(self.next_id);
                self.next_id += 1;
                let ik = Key::generate(rng);
                self.states.insert(id, GroupMember::new(id, ik.clone()));
                let mut join = Join::new(id, ik);
                // Alternate hints so every partition/class is used.
                if i % 2 == 0 {
                    join = join.with_class(DurationClass::Short).with_loss_rate(0.2);
                } else {
                    join = join.with_class(DurationClass::Long).with_loss_rate(0.02);
                }
                join
            })
            .collect()
    }

    fn pick_leavers(&self, mgr: &dyn GroupKeyManager, n: usize) -> Vec<MemberId> {
        self.states
            .keys()
            .filter(|id| mgr.contains(**id))
            .take(n)
            .copied()
            .collect()
    }

    /// Every member — present or departed — sees every multicast.
    fn broadcast(&mut self, message: &rekey_keytree::message::RekeyMessage) {
        for s in self.states.values_mut() {
            let _ = s.process(message);
        }
    }

    fn check(&self, mgr: &dyn GroupKeyManager) {
        let node = mgr.dek_node();
        let dek = mgr.dek();
        for (id, s) in &self.states {
            if self.departed.contains(id) {
                assert_ne!(
                    s.key_for(node),
                    Some(dek),
                    "[{}] departed member {id} holds the current DEK",
                    mgr.scheme_name()
                );
            } else {
                assert_eq!(
                    s.key_for(node),
                    Some(dek),
                    "[{}] member {id} cannot produce the DEK",
                    mgr.scheme_name()
                );
            }
        }
    }
}

fn exercise(mut mgr: Box<dyn GroupKeyManager>, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut h = Harness::new();

    // Bootstrap.
    let joins = h.make_joins(30, &mut rng);
    let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
    h.broadcast(&out.message);
    h.check(mgr.as_ref());
    h.old_deks.push(mgr.dek().clone());

    // Churn across enough intervals to trigger migrations (K = 3 for
    // partition schemes below).
    for round in 0..10 {
        let joins = h.make_joins(3, &mut rng);
        let leavers = h.pick_leavers(mgr.as_ref(), 1 + round % 3);
        let out = mgr.process_interval(&joins, &leavers, &mut rng).unwrap();
        h.departed.extend(leavers);
        h.broadcast(&out.message);
        h.check(mgr.as_ref());
        h.old_deks.push(mgr.dek().clone());
    }

    // Backward secrecy: a member joining now holds none of the old
    // DEKs.
    let newcomer_joins = h.make_joins(1, &mut rng);
    let newcomer = newcomer_joins[0].member;
    let out = mgr
        .process_interval(&newcomer_joins, &[], &mut rng)
        .unwrap();
    h.broadcast(&out.message);
    h.check(mgr.as_ref());
    let state = &h.states[&newcomer];
    let current = mgr.dek();
    for old in &h.old_deks {
        assert_ne!(old, current, "DEK must change every interval");
        // The newcomer's view of the DEK node is the current DEK only.
        assert_ne!(
            state.key_for(mgr.dek_node()),
            Some(old),
            "[{}] newcomer decrypted an old DEK",
            mgr.scheme_name()
        );
    }
}

#[test]
fn one_tree_secrecy() {
    exercise(Box::new(OneTreeManager::new(3)), 1);
}

#[test]
fn tt_scheme_secrecy() {
    exercise(Box::new(TtManager::new(3, 3)), 2);
}

#[test]
fn qt_scheme_secrecy() {
    exercise(Box::new(QtManager::new(3, 3)), 3);
}

#[test]
fn pt_scheme_secrecy() {
    exercise(Box::new(PtManager::new(3)), 4);
}

#[test]
fn loss_forest_secrecy() {
    exercise(Box::new(LossForestManager::two_trees(3)), 5);
}

/// A full simulated session with member verification at every
/// interval, for every scheme, on a shared workload.
#[test]
fn simulated_sessions_stay_synchronized() {
    use rekey_sim::driver::{run_scheme, SimConfig};
    use rekey_sim::membership::{MembershipGenerator, MembershipParams};

    let params = MembershipParams {
        target_size: 150,
        ..MembershipParams::paper_default()
    };
    let config = SimConfig {
        intervals: 12,
        warmup: 3,
        verify_members: true,
        oracle_hints: true,
        ..SimConfig::quick()
    };
    let managers: Vec<Box<dyn GroupKeyManager>> = vec![
        Box::new(OneTreeManager::new(4)),
        Box::new(TtManager::new(4, 4)),
        Box::new(QtManager::new(4, 4)),
        Box::new(PtManager::new(4)),
        Box::new(LossForestManager::two_trees(4)),
    ];
    for mut mgr in managers {
        let mut rng = StdRng::seed_from_u64(99);
        let mut generator = MembershipGenerator::new(params, &mut rng);
        // run_scheme panics on any desynchronization.
        let report = run_scheme(mgr.as_mut(), &mut generator, &config, &mut rng);
        assert!(report.mean_keys_per_interval > 0.0);
    }
}
