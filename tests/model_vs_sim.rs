//! Cross-validation of the paper's analytic models (what the paper's
//! figures are computed from) against the executable system (what the
//! paper did not have).
//!
//! A discrete-event simulation of the real key server — actual trees,
//! actual key wrapping, actual migrations — must land close to the
//! closed-form steady-state costs of §3.3.1, and preserve the paper's
//! scheme ordering. Every comparison sweeps several workload seeds and
//! reports the worst-case model/sim deviation, so a single lucky draw
//! can neither pass nor fail the suite.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_analytic::partition::PartitionParams;
use rekey_core::one_tree::OneTreeManager;
use rekey_core::partition::{QtManager, TtManager};
use rekey_core::GroupKeyManager;
use rekey_sim::driver::{run_scheme, SimConfig};
use rekey_sim::membership::{MembershipGenerator, MembershipParams};

const N: usize = 2048;
/// Independent workload seeds; deviation bounds must hold for all.
const SEEDS: [u64; 3] = [20030412, 7, 424242];

fn sim_params() -> MembershipParams {
    MembershipParams {
        target_size: N,
        ..MembershipParams::paper_default()
    }
}

fn model(k: u32) -> PartitionParams {
    PartitionParams {
        group_size: N as u64,
        k,
        ..PartitionParams::paper_default()
    }
}

fn simulate(manager: &mut dyn GroupKeyManager, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut generator = MembershipGenerator::new(sim_params(), &mut rng);
    let config = SimConfig {
        intervals: 50,
        warmup: 15,
        ..SimConfig::quick()
    };
    run_scheme(manager, &mut generator, &config, &mut rng).mean_keys_per_interval
}

/// Sweeps every seed, requires each run's measured cost within
/// `tolerance` of the model, and reports the worst-case deviation.
///
/// The simulation runs a slightly lighter workload than the model
/// (members joining and leaving within one interval are never
/// admitted), so the band is a modest one.
fn assert_close_over_seeds(
    mut make: impl FnMut() -> Box<dyn GroupKeyManager>,
    predicted: f64,
    tolerance: f64,
    label: &str,
) {
    let mut worst_dev = 0.0f64;
    let mut worst_seed = SEEDS[0];
    for &seed in &SEEDS {
        let measured = simulate(make().as_mut(), seed);
        let ratio = measured / predicted;
        let dev = (ratio - 1.0).abs();
        if dev > worst_dev {
            worst_dev = dev;
            worst_seed = seed;
        }
        assert!(
            dev <= tolerance,
            "{label} @ seed {seed}: measured {measured:.0} vs model {predicted:.0} \
             (ratio {ratio:.3})"
        );
    }
    println!(
        "{label}: worst-case model/sim deviation {:.1}% (seed {worst_seed}) over {} seeds",
        100.0 * worst_dev,
        SEEDS.len()
    );
}

#[test]
fn one_keytree_cost_matches_model() {
    assert_close_over_seeds(
        || Box::new(OneTreeManager::new(4)),
        model(10).cost_one_keytree(),
        0.15,
        "one-keytree",
    );
}

#[test]
fn tt_cost_matches_model() {
    assert_close_over_seeds(
        || Box::new(TtManager::new(4, 10)),
        model(10).cost_tt(),
        0.15,
        "tt-scheme",
    );
}

#[test]
fn qt_cost_matches_model() {
    assert_close_over_seeds(
        || Box::new(QtManager::new(4, 10)),
        model(10).cost_qt(),
        0.15,
        "qt-scheme",
    );
}

#[test]
fn scheme_ordering_is_preserved() {
    // Fig. 3 at K = 10, α = 0.8: both partition schemes beat the
    // one-keytree scheme, on the executable system too — for every
    // workload seed, with the TT gain tracking the model's prediction.
    let predicted_gain = 1.0 - model(10).cost_tt() / model(10).cost_one_keytree();
    let mut worst_gap = 0.0f64;
    for &seed in &SEEDS {
        let one = simulate(&mut OneTreeManager::new(4), seed);
        let tt = simulate(&mut TtManager::new(4, 10), seed);
        let qt = simulate(&mut QtManager::new(4, 10), seed);
        assert!(
            tt < one,
            "seed {seed}: TT ({tt:.0}) should beat one-keytree ({one:.0})"
        );
        assert!(
            qt < one,
            "seed {seed}: QT ({qt:.0}) should beat one-keytree ({one:.0})"
        );
        let measured_gain = 1.0 - tt / one;
        let gap = (measured_gain - predicted_gain).abs();
        worst_gap = worst_gap.max(gap);
        assert!(
            gap < 0.08,
            "seed {seed}: TT gain measured {measured_gain:.3} vs model {predicted_gain:.3}"
        );
    }
    println!(
        "tt gain: worst-case gap to model {:.1}% over {} seeds",
        100.0 * worst_gap,
        SEEDS.len()
    );
}

#[test]
fn join_rate_matches_queueing_model() {
    // The generator reproduces the J of equations (1)–(5) under every
    // seed.
    let params = sim_params();
    let expected = params.joins_per_interval();
    let mut worst = 0.0f64;
    for &seed in &SEEDS {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut generator = MembershipGenerator::new(params, &mut rng);
        let mut joins = 0usize;
        let mut transient = 0usize;
        let rounds = 150;
        for _ in 0..rounds {
            let ev = generator.next_interval(&mut rng);
            joins += ev.joins.len();
            transient += ev.transient;
        }
        let measured = (joins + transient) as f64 / rounds as f64;
        let dev = (measured / expected - 1.0).abs();
        worst = worst.max(dev);
        assert!(
            dev < 0.1,
            "seed {seed}: arrival rate {measured:.1} vs model J {expected:.1}"
        );
    }
    println!(
        "join rate: worst-case deviation {:.1}% over {} seeds",
        100.0 * worst,
        SEEDS.len()
    );
}
