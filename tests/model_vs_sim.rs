//! Cross-validation of the paper's analytic models (what the paper's
//! figures are computed from) against the executable system (what the
//! paper did not have).
//!
//! A discrete-event simulation of the real key server — actual trees,
//! actual key wrapping, actual migrations — must land close to the
//! closed-form steady-state costs of §3.3.1, and preserve the paper's
//! scheme ordering.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_analytic::partition::PartitionParams;
use rekey_core::one_tree::OneTreeManager;
use rekey_core::partition::{QtManager, TtManager};
use rekey_core::GroupKeyManager;
use rekey_sim::driver::{run_scheme, SimConfig};
use rekey_sim::membership::{MembershipGenerator, MembershipParams};

const N: usize = 2048;
const SEED: u64 = 20030412;

fn sim_params() -> MembershipParams {
    MembershipParams {
        target_size: N,
        ..MembershipParams::paper_default()
    }
}

fn model(k: u32) -> PartitionParams {
    PartitionParams {
        group_size: N as u64,
        k,
        ..PartitionParams::paper_default()
    }
}

fn simulate(manager: &mut dyn GroupKeyManager) -> f64 {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut generator = MembershipGenerator::new(sim_params(), &mut rng);
    let config = SimConfig {
        intervals: 50,
        warmup: 15,
        ..SimConfig::quick()
    };
    run_scheme(manager, &mut generator, &config, &mut rng).mean_keys_per_interval
}

/// The simulation runs a slightly lighter workload than the model
/// (members joining and leaving within one interval are never
/// admitted), so we allow a modest tolerance band.
fn assert_close(measured: f64, predicted: f64, tolerance: f64, label: &str) {
    let ratio = measured / predicted;
    assert!(
        ((1.0 - tolerance)..(1.0 + tolerance)).contains(&ratio),
        "{label}: measured {measured:.0} vs model {predicted:.0} (ratio {ratio:.3})"
    );
}

#[test]
fn one_keytree_cost_matches_model() {
    let measured = simulate(&mut OneTreeManager::new(4));
    assert_close(measured, model(10).cost_one_keytree(), 0.15, "one-keytree");
}

#[test]
fn tt_cost_matches_model() {
    let measured = simulate(&mut TtManager::new(4, 10));
    assert_close(measured, model(10).cost_tt(), 0.15, "tt-scheme");
}

#[test]
fn qt_cost_matches_model() {
    let measured = simulate(&mut QtManager::new(4, 10));
    assert_close(measured, model(10).cost_qt(), 0.15, "qt-scheme");
}

#[test]
fn scheme_ordering_is_preserved() {
    // Fig. 3 at K = 10, α = 0.8: both partition schemes beat the
    // one-keytree scheme, on the executable system too.
    let one = simulate(&mut OneTreeManager::new(4));
    let tt = simulate(&mut TtManager::new(4, 10));
    let qt = simulate(&mut QtManager::new(4, 10));
    assert!(tt < one, "TT ({tt:.0}) should beat one-keytree ({one:.0})");
    assert!(qt < one, "QT ({qt:.0}) should beat one-keytree ({one:.0})");

    let predicted_gain = 1.0 - model(10).cost_tt() / model(10).cost_one_keytree();
    let measured_gain = 1.0 - tt / one;
    assert!(
        (measured_gain - predicted_gain).abs() < 0.08,
        "TT gain: measured {measured_gain:.3} vs model {predicted_gain:.3}"
    );
}

#[test]
fn join_rate_matches_queueing_model() {
    // The generator reproduces the J of equations (1)–(5).
    let mut rng = StdRng::seed_from_u64(SEED);
    let params = sim_params();
    let mut generator = MembershipGenerator::new(params, &mut rng);
    let expected = params.joins_per_interval();
    let mut joins = 0usize;
    let mut transient = 0usize;
    let rounds = 150;
    for _ in 0..rounds {
        let ev = generator.next_interval(&mut rng);
        joins += ev.joins.len();
        transient += ev.transient;
    }
    let measured = (joins + transient) as f64 / rounds as f64;
    assert!(
        (measured / expected - 1.0).abs() < 0.1,
        "arrival rate {measured:.1} vs model J {expected:.1}"
    );
}
