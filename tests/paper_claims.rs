//! The paper's headline numbers, asserted end-to-end from our
//! implementation of its analytic models.
//!
//! Each test names the claim and where it appears in the paper. We do
//! not demand digit-exact matches (the paper reports curve peaks read
//! from Matlab plots); we demand each claimed percentage within a
//! narrow band and each qualitative statement exactly.

use rekey_analytic::appendix_b::{ev_forest, ev_wka, ForestTree, LossMix};
use rekey_analytic::fec_model::{fec_cost_packets, FecParams};
use rekey_analytic::partition::PartitionParams;

fn fig_params(alpha: f64, k: u32) -> PartitionParams {
    PartitionParams {
        alpha,
        k,
        ..PartitionParams::paper_default()
    }
}

/// Abstract + §5: "a performance improvement of up to 31.4% … when a
/// majority fraction of members in a group have short durations"
/// (Fig. 4 peak, α = 0.9, K = 10).
#[test]
fn claim_31_4_percent_partition_peak() {
    let costs = fig_params(0.9, 10).costs();
    let best = costs.tt.min(costs.qt);
    let gain = 1.0 - best / costs.one_keytree;
    assert!(
        (gain - 0.314).abs() < 0.03,
        "peak partition gain {:.1}% vs paper's 31.4%",
        gain * 100.0
    );
}

/// §3.3.2 (a): "the TT-scheme can achieve up to 25% bandwidth
/// reduction (at K = 10) over the one-keytree scheme."
#[test]
fn claim_25_percent_tt_at_k10() {
    let costs = fig_params(0.8, 10).costs();
    let gain = 1.0 - costs.tt / costs.one_keytree;
    assert!(
        (gain - 0.25).abs() < 0.03,
        "TT gain at K=10 {:.1}% vs paper's 25%",
        gain * 100.0
    );
}

/// §3.3.2 (a): "the PT-scheme works the best, up to 40% performance
/// gain."
#[test]
fn claim_40_percent_pt() {
    let costs = fig_params(0.8, 10).costs();
    let gain = 1.0 - costs.pt / costs.one_keytree;
    assert!(
        (gain - 0.40).abs() < 0.04,
        "PT gain {:.1}% vs paper's 40%",
        gain * 100.0
    );
}

/// §3.3.2 (a): "the TT-scheme outperforms the QT-scheme for a large
/// K" — and the converse for small K (Fig. 3 crossover).
#[test]
fn claim_qt_tt_crossover_in_k() {
    let small_k = fig_params(0.8, 2).costs();
    assert!(
        small_k.qt < small_k.tt,
        "QT should win at small K: qt={:.0} tt={:.0}",
        small_k.qt,
        small_k.tt
    );
    let large_k = fig_params(0.8, 16).costs();
    assert!(
        large_k.tt < large_k.qt,
        "TT should win at large K: tt={:.0} qt={:.0}",
        large_k.tt,
        large_k.qt
    );
}

/// §3.3.2 (b): "when α is greater than 0.6, both the TT-scheme and
/// the QT-scheme outperform the one-keytree scheme … the one-keytree
/// scheme works better when α ≤ 0.4."
#[test]
fn claim_alpha_crossover() {
    for alpha in [0.7, 0.8, 0.9] {
        let c = fig_params(alpha, 10).costs();
        assert!(c.tt < c.one_keytree, "TT should win at α={alpha}");
        assert!(c.qt < c.one_keytree, "QT should win at α={alpha}");
    }
    for alpha in [0.1, 0.2, 0.3, 0.4] {
        let c = fig_params(alpha, 10).costs();
        assert!(
            c.one_keytree < c.tt && c.one_keytree < c.qt,
            "one-keytree should win at α={alpha}"
        );
    }
}

/// §3.3.2 (c): "the group size has little impact on the relative
/// performance … in average there are more than 22% bandwidth savings
/// in the default scenarios" (Fig. 5, N = 1K..256K).
#[test]
fn claim_22_percent_across_group_sizes() {
    let mut reductions = Vec::new();
    for n in [1024u64, 4096, 16384, 65536, 262144] {
        let p = PartitionParams {
            group_size: n,
            ..PartitionParams::paper_default()
        };
        let c = p.costs();
        let qt_red = 1.0 - c.qt / c.one_keytree;
        let tt_red = 1.0 - c.tt / c.one_keytree;
        reductions.push(qt_red);
        reductions.push(tt_red);
        // "Little impact": every point within Fig. 5's 0.20–0.30 band.
        assert!(
            (0.20..0.30).contains(&qt_red) && (0.20..0.30).contains(&tt_red),
            "N={n}: qt {qt_red:.3}, tt {tt_red:.3} outside Fig. 5 band"
        );
    }
    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!(avg > 0.22, "average reduction {avg:.3} below paper's 22%");
}

/// Abstract + §4.3.1 (a): the loss-homogenized scheme "can outperform
/// the one-keytree scheme by up to 12.1%" (Fig. 6, α ≈ 0.3).
#[test]
fn claim_12_1_percent_loss_homogenized() {
    let (n, l, d, ph, pl) = (65536u64, 256.0, 4u32, 0.2, 0.02);
    let mut peak: f64 = 0.0;
    for alpha in [0.1, 0.2, 0.3, 0.4, 0.5] {
        let one = ev_wka(n, l, d, &LossMix::two_point(alpha, ph, pl));
        let nh = (alpha * n as f64).round() as u64;
        let homog = ev_forest(
            &[
                ForestTree {
                    size: n - nh,
                    mix: LossMix::homogeneous(pl),
                },
                ForestTree {
                    size: nh,
                    mix: LossMix::homogeneous(ph),
                },
            ],
            l,
            d,
        );
        peak = peak.max(1.0 - homog / one);
    }
    assert!(
        (peak - 0.121).abs() < 0.03,
        "loss-homogenized peak gain {:.1}% vs paper's 12.1%",
        peak * 100.0
    );
}

/// §4.3.1 (a): "the two-random-keytree scheme works even slightly
/// worse than the one-keytree scheme", and all schemes coincide at
/// α = 0 and α = 1.
#[test]
fn claim_random_split_does_not_help() {
    let (n, l, d, ph, pl) = (65536u64, 256.0, 4u32, 0.2, 0.02);
    for alpha in [0.2, 0.5, 0.8] {
        let mix = LossMix::two_point(alpha, ph, pl);
        let one = ev_wka(n, l, d, &mix);
        let random = ev_forest(
            &[
                ForestTree {
                    size: n / 2,
                    mix: mix.clone(),
                },
                ForestTree {
                    size: n / 2,
                    mix: mix.clone(),
                },
            ],
            l,
            d,
        );
        assert!(
            random >= one && random < one * 1.05,
            "α={alpha}: random {random:.0} vs one {one:.0}"
        );
    }
    // Homogeneous extremes: the homogenized scheme degenerates to one
    // tree and costs the same.
    for (alpha, p) in [(0.0, pl), (1.0, ph)] {
        let one = ev_wka(n, l, d, &LossMix::homogeneous(p));
        let nh = (alpha * n as f64).round() as u64;
        let homog = ev_forest(
            &[
                ForestTree {
                    size: n - nh,
                    mix: LossMix::homogeneous(pl),
                },
                ForestTree {
                    size: nh,
                    mix: LossMix::homogeneous(ph),
                },
            ],
            l,
            d,
        );
        assert!(
            (homog - one).abs() / one < 1e-9,
            "α={alpha}: homogenized {homog:.1} differs from one-keytree {one:.1}"
        );
    }
}

/// §4.3.1 (b), Fig. 7: misplacement degrades the gain; for small β the
/// scheme still wins, while large β makes it slightly worse than the
/// one-keytree scheme.
#[test]
fn claim_misplacement_degrades_gracefully() {
    let (n, l, d, ph, pl, alpha) = (65536u64, 256.0, 4u32, 0.2, 0.02, 0.2);
    let n_high = (alpha * n as f64).round() as u64;
    let n_low = n - n_high;
    let one = ev_wka(n, l, d, &LossMix::two_point(alpha, ph, pl));

    let misplaced = |beta: f64| {
        // β of the high tree becomes low-loss and the same head count
        // of the low tree becomes high-loss.
        let moved = beta * n_high as f64;
        let high_tree = LossMix::two_point(1.0 - beta, ph, pl);
        let frac_high_in_low = moved / n_low as f64;
        let low_tree = LossMix::two_point(frac_high_in_low, ph, pl);
        ev_forest(
            &[
                ForestTree {
                    size: n_low,
                    mix: low_tree,
                },
                ForestTree {
                    size: n_high,
                    mix: high_tree,
                },
            ],
            l,
            d,
        )
    };

    let correct = misplaced(0.0);
    assert!(correct < one, "correctly partitioned must win");
    // Small misplacement: still better than one keytree.
    assert!(misplaced(0.1) < one, "β=0.1 should still win");
    // Cost grows with β over the paper's plotted range.
    assert!(misplaced(0.4) > misplaced(0.1));
    // Large misplacement: at β = 0.8 the scheme is no better (paper:
    // "works even slightly worse than the one-keytree scheme").
    assert!(
        misplaced(0.8) > one * 0.99,
        "β=0.8 should erase the benefit"
    );
}

/// §4.4: with proactive-FEC transport, loss homogenization gains more
/// than with WKA-BKR — "up to 25.7%" (α = 0.1, p_h = 20%, p_l = 2%).
#[test]
fn claim_fec_gain_exceeds_wka_gain() {
    let p = FecParams::default();
    let (alpha, ph, pl) = (0.1, 0.2, 0.02);
    let n = 65536.0;
    let keys = 6000.0;
    let mixed = fec_cost_packets(n as u64, keys, &LossMix::two_point(alpha, ph, pl), &p);
    let split = fec_cost_packets(
        ((1.0 - alpha) * n) as u64,
        (1.0 - alpha) * keys,
        &LossMix::homogeneous(pl),
        &p,
    ) + fec_cost_packets(
        (alpha * n) as u64,
        alpha * keys,
        &LossMix::homogeneous(ph),
        &p,
    );
    let fec_gain = 1.0 - split / mixed;

    // WKA gain at the same α for comparison.
    let one = ev_wka(n as u64, 256.0, 4, &LossMix::two_point(alpha, ph, pl));
    let nh = (alpha * n).round() as u64;
    let homog = ev_forest(
        &[
            ForestTree {
                size: n as u64 - nh,
                mix: LossMix::homogeneous(pl),
            },
            ForestTree {
                size: nh,
                mix: LossMix::homogeneous(ph),
            },
        ],
        256.0,
        4,
    );
    let wka_gain = 1.0 - homog / one;

    assert!(
        fec_gain > wka_gain,
        "FEC gain {fec_gain:.3} should exceed WKA gain {wka_gain:.3}"
    );
    assert!(
        (0.15..0.40).contains(&fec_gain),
        "FEC gain {:.1}% vs paper's 25.7%",
        fec_gain * 100.0
    );
}

/// §2.1: LKH reduces rekeying from O(N) to O(log N) — the premise of
/// everything else.
#[test]
fn claim_logarithmic_rekeying() {
    use rekey_analytic::appendix_a::ne;
    // Single departure: about d·log_d(N) keys, vs N for naive unicast.
    for &n in &[1024u64, 65536, 262144] {
        let cost = ne(n, 1.0, 4);
        let h = (n as f64).log(4.0);
        assert!(cost <= 4.0 * (h + 1.0), "N={n}: {cost:.1} not logarithmic");
        assert!(cost < n as f64 / 10.0);
    }
}
