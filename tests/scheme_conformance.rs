//! Scheme-conformance harness: every group-key manager runs the same
//! deterministic seeded join/leave script and must uphold the same
//! contract —
//!
//! - **liveness / forward / backward secrecy**: present members always
//!   hold the current DEK, departed members never do, the DEK changes
//!   every interval;
//! - **member-count bookkeeping**: `member_count` / `contains` agree
//!   with the script's ground-truth membership after every interval;
//! - **parallelism transparency**: the rekey messages are
//!   byte-identical at 1 and 8 encryption workers;
//! - **golden digests**: the sha256 of all serialized rekey messages
//!   (versioned `codec::encode_message` envelope) is pinned per
//!   scheme, so any refactor that changes a single emitted byte fails
//!   loudly. The engine/policy split was landed against these digests.
//!
//! The script is shared across schemes: identical member ids, join
//! hints, and leave picks every interval. Key material differs per
//! scheme because each manager draws differently from the shared RNG,
//! which the digests absorb (they are per-scheme constants).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::adaptive::AdaptiveManager;
use rekey_core::combined::CombinedManager;
use rekey_core::loss_forest::LossForestManager;
use rekey_core::one_tree::OneTreeManager;
use rekey_core::partition::{PtManager, QtManager, TtManager};
use rekey_core::{DurationClass, GroupKeyManager, Join};
use rekey_crypto::sha256::Sha256;
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::message::codec;
use rekey_keytree::MemberId;
use std::collections::BTreeMap;

const BOOTSTRAP: usize = 40;
const INTERVALS: usize = 12;
const JOINS_PER_INTERVAL: usize = 3;

/// Deterministic churn plan for one interval: how many members leave.
/// Interval 3, 7, 11 are pure-join (exercises the QT queue's cheap
/// join branch); the rest leave 1–3 members spread across the group
/// (old bootstrap members and young recent joiners alike, so
/// partitions, queues, and migrated members all see departures).
fn leaves_at(interval: usize) -> usize {
    if interval % 4 == 3 {
        0
    } else {
        1 + interval % 3
    }
}

fn hex(digest: &[u8]) -> String {
    digest.iter().map(|b| format!("{b:02x}")).collect()
}

/// Ground truth the script maintains independently of the manager.
struct Script {
    /// Every member ever created, with its receiver state (departed
    /// members keep processing multicasts to prove forward secrecy).
    states: BTreeMap<MemberId, GroupMember>,
    present: Vec<MemberId>,
    departed: Vec<MemberId>,
    old_deks: Vec<Key>,
    next_id: u64,
}

impl Script {
    fn new() -> Self {
        Script {
            states: BTreeMap::new(),
            present: Vec::new(),
            departed: Vec::new(),
            old_deks: Vec::new(),
            next_id: 0,
        }
    }

    fn make_joins(&mut self, n: usize, rng: &mut StdRng) -> Vec<Join> {
        (0..n)
            .map(|i| {
                let id = MemberId(self.next_id);
                self.next_id += 1;
                let ik = Key::generate(rng);
                self.states.insert(id, GroupMember::new(id, ik.clone()));
                self.present.push(id);
                // Alternate hints so oracle placement and loss classes
                // are both exercised.
                let join = Join::new(id, ik);
                if i % 2 == 0 {
                    join.with_class(DurationClass::Short).with_loss_rate(0.2)
                } else {
                    join.with_class(DurationClass::Long).with_loss_rate(0.02)
                }
            })
            .collect()
    }

    /// Picks `n` leavers spread across the present set — index stride
    /// over the id-ordered membership, so departures hit old and young
    /// members alike. Pure function of the membership, no RNG.
    fn pick_leavers(&mut self, n: usize) -> Vec<MemberId> {
        self.present.sort_unstable();
        let stride = (self.present.len() / n.max(1)).max(1);
        let picked: Vec<MemberId> = (0..n)
            .map(|i| self.present[(1 + i * stride) % self.present.len()])
            .collect();
        self.present.retain(|m| !picked.contains(m));
        self.departed.extend(&picked);
        picked
    }

    fn broadcast(&mut self, message: &rekey_keytree::message::RekeyMessage) {
        for s in self.states.values_mut() {
            let _ = s.process(message);
        }
    }

    fn check(&self, mgr: &dyn GroupKeyManager, scheme: &str) {
        assert_eq!(
            mgr.member_count(),
            self.present.len(),
            "[{scheme}] member_count disagrees with the script"
        );
        let node = mgr.dek_node();
        let dek = mgr.dek();
        for id in &self.present {
            assert!(mgr.contains(*id), "[{scheme}] lost member {id}");
            assert_eq!(
                self.states[id].key_for(node),
                Some(dek),
                "[{scheme}] member {id} cannot produce the DEK"
            );
        }
        for id in &self.departed {
            assert!(!mgr.contains(*id), "[{scheme}] kept departed {id}");
            assert_ne!(
                self.states[id].key_for(node),
                Some(dek),
                "[{scheme}] departed member {id} holds the current DEK"
            );
        }
    }
}

/// Runs the shared script against one manager and returns the
/// serialized rekey message of every interval (bootstrap included).
fn run_script(mut mgr: Box<dyn GroupKeyManager>, workers: usize) -> Vec<Vec<u8>> {
    let scheme = mgr.scheme_name();
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let mut script = Script::new();
    mgr.set_parallelism(workers);
    let mut wires = Vec::with_capacity(1 + INTERVALS);

    let joins = script.make_joins(BOOTSTRAP, &mut rng);
    let out = mgr
        .process_interval(&joins, &[], &mut rng)
        .expect("bootstrap");
    script.broadcast(&out.message);
    script.check(mgr.as_ref(), scheme);
    script.old_deks.push(mgr.dek().clone());
    wires.push(codec::encode_message(&out.message));

    for interval in 0..INTERVALS {
        let joins = script.make_joins(JOINS_PER_INTERVAL, &mut rng);
        let leavers = script.pick_leavers(leaves_at(interval));
        let out = mgr
            .process_interval(&joins, &leavers, &mut rng)
            .expect("scripted interval is consistent");
        assert_eq!(out.stats.joins, JOINS_PER_INTERVAL);
        assert_eq!(out.stats.leaves, leavers.len());
        assert_eq!(
            out.stats.message_bytes,
            out.message.byte_len(),
            "[{scheme}] reported wire size disagrees with the message"
        );
        script.broadcast(&out.message);
        script.check(mgr.as_ref(), scheme);

        // The DEK rotates every interval, and no newcomer ever saw a
        // previous one (its state was created after those were
        // multicast).
        let dek = mgr.dek().clone();
        assert!(
            !script.old_deks.contains(&dek),
            "[{scheme}] DEK repeated at interval {interval}"
        );
        script.old_deks.push(dek);
        wires.push(codec::encode_message(&out.message));
    }
    wires
}

/// Golden run digests: sha256 over the concatenated versioned
/// encodings of every interval's rekey message, per scheme. Pinned
/// from the pre-engine managers; the engine refactor reproduced them
/// byte for byte.
const GOLDEN_DIGESTS: [(&str, &str); 7] = [
    (
        "one-keytree",
        "97604917abca4ee22227541061e8ff1ab41525e36cfd08edf0b6042c8c75afc8",
    ),
    (
        "tt-scheme",
        "d272bd7e4048d739799e77270d3472190db881920a809275e7ed87b697474d40",
    ),
    (
        "qt-scheme",
        "08da5c11de01419b18200e513d784d20e4e39d446453d6fb682e747f70d1a9cc",
    ),
    (
        "pt-scheme",
        "db05208d9f8a67cdcce4acb94d308782e012945488f1a58f20621cf8e752af21",
    ),
    (
        "loss-homogenized-forest",
        "914a7346e3503abd32cff4b85a8d42b3707ec98c8a7e96b6fba1cd21ba801929",
    ),
    (
        "combined-partition-forest",
        "a07fa54cb0314090dd02653a7d3806765b4161993fafe1077e94a9b46b1f6247",
    ),
    (
        "adaptive",
        "db50b055fc82474b758e7e0e773519ee89e8985f63cd20e85ae3332576f831c1",
    ),
];

fn managers() -> Vec<Box<dyn GroupKeyManager>> {
    vec![
        Box::new(OneTreeManager::new(4)),
        Box::new(TtManager::new(4, 3)),
        Box::new(QtManager::new(4, 3)),
        Box::new(PtManager::new(4)),
        Box::new(LossForestManager::two_trees(4)),
        Box::new(CombinedManager::two_loss_classes(4, 3)),
        Box::new(AdaptiveManager::paper_default(4)),
    ]
}

fn digest_of(wires: &[Vec<u8>]) -> String {
    let mut hasher = Sha256::new();
    for wire in wires {
        hasher.update(wire);
    }
    hex(&hasher.finalize())
}

#[test]
fn all_schemes_satisfy_the_conformance_contract() {
    for mgr in managers() {
        // run_script asserts secrecy + bookkeeping internally.
        run_script(mgr, 1);
    }
}

#[test]
fn rekey_messages_are_byte_identical_across_worker_counts() {
    for (seq_mgr, par_mgr) in managers().into_iter().zip(managers()) {
        let scheme = seq_mgr.scheme_name();
        let seq = run_script(seq_mgr, 1);
        let par = run_script(par_mgr, 8);
        assert_eq!(
            seq, par,
            "[{scheme}] messages diverged between 1 and 8 workers"
        );
    }
}

#[test]
fn golden_digests_pin_every_scheme_byte_exactly() {
    let golden: BTreeMap<&str, &str> = GOLDEN_DIGESTS.into_iter().collect();
    for mgr in managers() {
        let scheme = mgr.scheme_name();
        let digest = digest_of(&run_script(mgr, 1));
        let expected = golden
            .get(scheme)
            .unwrap_or_else(|| panic!("no golden digest for scheme {scheme}"));
        assert_eq!(
            &digest.as_str(),
            expected,
            "[{scheme}] rekey output changed: the seeded run no longer emits \
             byte-identical messages. If the change is intentional and \
             behaviour-preserving arguments do not apply, re-pin the digest."
        );
    }
}
