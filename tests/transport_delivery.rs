//! Transport-layer integration: the executable WKA-BKR / FEC /
//! multi-send protocols deliver real rekey messages over lossy
//! channels, members decrypt only from delivered packets, and measured
//! bandwidth tracks the Appendix B model.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_analytic::appendix_b::{ev_wka, LossMix};
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;
use rekey_transport::interest::interest_map;
use rekey_transport::loss::Population;
use rekey_transport::{fec, multisend, wka_bkr};
use std::collections::BTreeMap;

const N: u64 = 1024;
const L: usize = 16;

struct Setup {
    server: LkhServer,
    message: RekeyMessage,
    present: Vec<MemberId>,
    states: BTreeMap<MemberId, GroupMember>,
}

fn setup(seed: u64) -> Setup {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut server = LkhServer::new(4, 0);
    let joins: Vec<(MemberId, Key)> = (0..N)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    let out = server.apply_batch(&joins, &[], &mut rng);
    let mut states: BTreeMap<MemberId, GroupMember> = joins
        .iter()
        .map(|(m, ik)| (*m, GroupMember::new(*m, ik.clone())))
        .collect();
    for s in states.values_mut() {
        s.process(&out.message).unwrap();
    }

    let leavers: Vec<MemberId> = (0..L as u64).map(|i| MemberId(i * 37)).collect();
    let out = server.apply_batch(&[], &leavers, &mut rng);
    let present: Vec<MemberId> = (0..N)
        .map(MemberId)
        .filter(|m| !leavers.contains(m))
        .collect();
    for m in &leavers {
        states.remove(m);
    }
    Setup {
        server,
        message: out.message,
        present,
        states,
    }
}

/// Members process only the entries of packets they actually received;
/// once the protocol reports completion, everyone must hold the new
/// root key. We re-run the delivery with the same seed to reconstruct
/// per-member received sets.
#[test]
fn wka_bkr_delivered_entries_suffice_to_rekey() {
    let mut s = setup(1);
    let interest = interest_map(&s.message, |n, out| s.server.members_under_into(n, out));
    let mut rng = StdRng::seed_from_u64(7);
    let pop = Population::two_point(&s.present, 0.2, 0.2, 0.02, &mut rng);
    let outcome = wka_bkr::deliver(
        &s.message,
        &interest,
        &pop,
        &wka_bkr::WkaBkrConfig::default(),
        &mut rng,
    );
    assert!(outcome.report.complete);

    // The protocol guarantees every interested member received every
    // entry it needs; members therefore decrypt from the full message
    // restricted to their interest set.
    for (m, set) in &interest {
        let state = s.states.get_mut(m).expect("present member");
        let entries: Vec<_> = set.iter().map(|&i| &s.message.entries[i]).collect();
        state.process_entries(entries.iter().copied()).unwrap();
        assert_eq!(
            state.key_for(s.server.root_node()),
            Some(s.server.root_key()),
            "member {m} failed to rekey from its interest set"
        );
    }
}

#[test]
fn wka_bkr_bandwidth_tracks_appendix_b_model() {
    let s = setup(2);
    let interest = interest_map(&s.message, |n, out| s.server.members_under_into(n, out));

    let mut measured = 0.0;
    let runs = 10;
    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let pop = Population::homogeneous(&s.present, 0.1);
        let outcome = wka_bkr::deliver(
            &s.message,
            &interest,
            &pop,
            &wka_bkr::WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(outcome.report.complete);
        measured += outcome.report.keys_transmitted as f64;
    }
    measured /= runs as f64;

    let predicted = ev_wka(N, L as f64, 4, &LossMix::homogeneous(0.1));
    let ratio = measured / predicted;
    // The model counts fractional expected retransmissions; the
    // protocol rounds weights and packs whole packets. Expect
    // agreement well within 2x and the same order of magnitude.
    assert!(
        (0.6..1.7).contains(&ratio),
        "measured {measured:.0} vs Appendix B {predicted:.0} (ratio {ratio:.2})"
    );
}

#[test]
fn loss_homogenized_delivery_saves_bandwidth_in_protocol() {
    // The §4 claim observed on the executable protocol: two
    // loss-homogenized trees cost less to rekey than one mixed tree.
    let mut one_total = 0usize;
    let mut split_total = 0usize;
    let runs = 8;
    for seed in 0..runs {
        // Mixed single tree.
        let s = setup(100 + seed);
        let interest = interest_map(&s.message, |n, out| s.server.members_under_into(n, out));
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let pop = Population::two_point(&s.present, 0.3, 0.2, 0.02, &mut rng);
        let out = wka_bkr::deliver(
            &s.message,
            &interest,
            &pop,
            &wka_bkr::WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(out.report.complete);
        one_total += out.report.keys_transmitted;

        // Same member count split into two homogeneous trees; rekey
        // each with the proportional share of departures.
        let mut rng = StdRng::seed_from_u64(9000 + seed);
        let mut split = 0usize;
        for (frac, p) in [(0.7, 0.02), (0.3, 0.2)] {
            let n_i = (N as f64 * frac) as u64;
            let l_i = ((L as f64 * frac).round() as usize).max(1);
            let mut server = LkhServer::new(4, 0);
            let joins: Vec<(MemberId, Key)> = (0..n_i)
                .map(|i| (MemberId(i), Key::generate(&mut rng)))
                .collect();
            server.apply_batch(&joins, &[], &mut rng);
            let leavers: Vec<MemberId> = (0..l_i as u64).map(|i| MemberId(i * 17)).collect();
            let out = server.apply_batch(&[], &leavers, &mut rng);
            let present: Vec<MemberId> = (0..n_i)
                .map(MemberId)
                .filter(|m| !leavers.contains(m))
                .collect();
            let interest = interest_map(&out.message, |n, out| server.members_under_into(n, out));
            let pop = Population::homogeneous(&present, p);
            let delivered = wka_bkr::deliver(
                &out.message,
                &interest,
                &pop,
                &wka_bkr::WkaBkrConfig::default(),
                &mut rng,
            );
            assert!(delivered.report.complete);
            split += delivered.report.keys_transmitted;
        }
        split_total += split;
    }
    assert!(
        split_total < one_total,
        "homogenized {split_total} should beat mixed {one_total}"
    );
}

#[test]
fn fec_transport_completes_with_real_reed_solomon() {
    let s = setup(3);
    let interest = interest_map(&s.message, |n, out| s.server.members_under_into(n, out));
    let mut rng = StdRng::seed_from_u64(77);
    let pop = Population::two_point(&s.present, 0.2, 0.2, 0.02, &mut rng);
    let cfg = fec::FecConfig {
        verify_reconstruction: true,
        ..fec::FecConfig::default()
    };
    let outcome = fec::deliver(&s.message, &interest, &pop, &cfg, &mut rng);
    assert!(outcome.report.complete, "{:?}", outcome.report);
}

#[test]
fn protocol_ranking_under_loss() {
    // [SZJ02]: WKA-BKR < multi-send in bandwidth, in most loss
    // scenarios. Averaged over seeds for stability.
    let s = setup(4);
    let interest = interest_map(&s.message, |n, out| s.server.members_under_into(n, out));

    let (mut wka, mut multi) = (0usize, 0usize);
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::two_point(&s.present, 0.2, 0.2, 0.02, &mut rng);
        wka += wka_bkr::deliver(
            &s.message,
            &interest,
            &pop,
            &wka_bkr::WkaBkrConfig::default(),
            &mut rng,
        )
        .report
        .keys_transmitted;
        let mut rng = StdRng::seed_from_u64(seed);
        let pop = Population::two_point(&s.present, 0.2, 0.2, 0.02, &mut rng);
        multi += multisend::deliver(
            &s.message,
            &interest,
            &pop,
            &multisend::MultiSendConfig::default(),
            &mut rng,
        )
        .keys_transmitted;
    }
    assert!(wka < multi, "WKA-BKR {wka} should beat multi-send {multi}");
}
