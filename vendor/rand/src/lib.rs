//! Vendored, dependency-free stand-in for the subset of the `rand`
//! crate this workspace uses. The build environment has no network
//! access, so the real crate cannot be fetched; this module provides
//! API-compatible deterministic RNGs instead.
//!
//! Implemented surface:
//!
//! - [`RngCore`], [`SeedableRng`], and the [`Rng`] extension trait
//!   (`gen`, `gen_range`, `gen_bool`, `fill`),
//! - [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64 (high
//!   quality, deterministic, *not* cryptographic; the workspace only
//!   uses RNGs for simulation workloads and test vectors),
//! - [`rngs::mock::StepRng`] — arithmetic-sequence mock RNG.
//!
//! Streams are deterministic for a given seed but intentionally do not
//! match the real `rand` crate's output.

#![forbid(unsafe_code)]

/// Core random-number-generation interface.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let word = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&word[..rest.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl RngCore for Box<dyn RngCore + '_> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A type that can be sampled uniformly from an RNG (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
                   u64 => next_u64, usize => next_u64,
                   i8 => next_u32, i16 => next_u32, i32 => next_u32,
                   i64 => next_u64, isize => next_u64);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> Standard for [u8; N] {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types usable as the bound of `gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128) as u128;
                // Multiply-shift bounded draw; bias is < 2^-64 per call,
                // irrelevant for simulation workloads.
                let draw = ((rng.next_u64() as u128 * span) >> 64) as u128;
                (low as u128 + draw) as $t
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range: empty range");
        low + f64::sample(rng) * (high - low)
    }
}

/// Extension methods over [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform value in `range` (half-open).
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fills a byte slice (alias of [`RngCore::fill_bytes`]).
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Convenience: expand a `u64` into a full seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The workspace's standard deterministic RNG: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl StdRng {
        /// Captures the full generator state as 32 little-endian
        /// bytes, for durable checkpoints that must resume the exact
        /// byte stream (see `rekey_core::persist`).
        pub fn state_bytes(&self) -> [u8; 32] {
            let mut out = [0u8; 32];
            for (i, word) in self.s.iter().enumerate() {
                out[i * 8..(i + 1) * 8].copy_from_slice(&word.to_le_bytes());
            }
            out
        }

        /// Restores a generator from [`StdRng::state_bytes`] output.
        /// Unlike `from_seed`, this is an *exact* state restore: no
        /// zero-state nudge is applied (a captured state can never be
        /// all-zero, because that is a fixed point the seeding path
        /// already avoids).
        pub fn from_state_bytes(bytes: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut w = [0u8; 8];
                w.copy_from_slice(&bytes[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(w);
            }
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                let mut sm = SplitMix64(0xdead_beef);
                for word in &mut s {
                    *word = sm.next();
                }
            }
            StdRng { s }
        }
    }

    /// Alias kept for API compatibility.
    pub type SmallRng = StdRng;

    /// Mock RNGs for deterministic bootstrap paths.
    pub mod mock {
        use super::RngCore;

        /// Returns an arithmetic sequence: `initial`, `initial + increment`, …
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            current: u64,
            increment: u64,
        }

        impl StepRng {
            /// Creates the mock RNG.
            pub fn new(initial: u64, increment: u64) -> Self {
                StepRng {
                    current: initial,
                    increment,
                }
            }
        }

        impl RngCore for StepRng {
            fn next_u32(&mut self) -> u32 {
                self.next_u64() as u32
            }

            fn next_u64(&mut self) -> u64 {
                let out = self.current;
                self.current = self.current.wrapping_add(self.increment);
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::mock::StepRng;
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn std_rng_is_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs[0], c.next_u64());
    }

    #[test]
    fn fill_bytes_covers_partial_words() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert_ne!(buf, [0u8; 13]);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
        }
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        // Mean of 1000 uniform draws is near 0.5.
        assert!((sum / 1000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn state_bytes_round_trip_resumes_exact_stream() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..37 {
            rng.next_u64();
        }
        let saved = rng.state_bytes();
        let expected: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
        let mut restored = StdRng::from_state_bytes(saved);
        let resumed: Vec<u64> = (0..16).map(|_| restored.next_u64()).collect();
        assert_eq!(expected, resumed);
        assert_eq!(rng, restored);
    }

    #[test]
    fn step_rng_steps() {
        let mut rng = StepRng::new(10, 3);
        assert_eq!(rng.next_u64(), 10);
        assert_eq!(rng.next_u64(), 13);
        assert_eq!(rng.next_u64(), 16);
    }
}
