//! Vendored, dependency-free stand-in for the `serde` trait surface
//! this workspace references. The workspace derives `Serialize` /
//! `Deserialize` on a handful of report/metrics types but never calls
//! a serializer (there is no `serde_json` in the dependency graph), so
//! marker traits with blanket implementations are sufficient for the
//! offline build. JSON artifacts (e.g. bench baselines) are emitted by
//! hand-rolled writers instead.

#![forbid(unsafe_code)]

/// Marker for serializable types. Every type qualifies; no serializer
/// exists in this build.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Every sized type qualifies; no
/// deserializer exists in this build.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
