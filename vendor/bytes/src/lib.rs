//! Vendored, dependency-free stand-in for the subset of the `bytes`
//! crate this workspace uses: the [`Buf`] / [`BufMut`] cursor traits
//! over `&[u8]` and `Vec<u8>`. Multi-byte integers use network byte
//! order (big-endian), matching the real crate.

#![forbid(unsafe_code)]

/// Read cursor over a contiguous byte buffer.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// Advances the cursor by `cnt` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `cnt > self.remaining()`.
    fn advance(&mut self, cnt: usize);

    /// Borrow of the unread bytes.
    fn chunk(&self) -> &[u8];

    /// Copies `dst.len()` bytes out, advancing the cursor.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "buffer underflow");
        *self = &self[cnt..];
    }

    fn chunk(&self) -> &[u8] {
        self
    }
}

/// Append cursor over a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_integers() {
        let mut buf = Vec::new();
        buf.put_u8(7);
        buf.put_u32(0xDEAD_BEEF);
        buf.put_u64(0x0123_4567_89AB_CDEF);
        buf.put_slice(b"xyz");

        let mut cursor = buf.as_slice();
        assert_eq!(cursor.remaining(), 1 + 4 + 8 + 3);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.get_u32(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64(), 0x0123_4567_89AB_CDEF);
        let mut tail = [0u8; 3];
        cursor.copy_to_slice(&mut tail);
        assert_eq!(&tail, b"xyz");
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "buffer underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        cursor.get_u32();
    }
}
