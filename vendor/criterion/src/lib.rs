//! Vendored, dependency-free stand-in for the subset of the
//! `criterion` crate this workspace's benches use. It times each
//! benchmark closure with `std::time::Instant` over a fixed wall-clock
//! budget and prints a one-line mean/min report — no statistics
//! machinery, no HTML reports, no CLI filtering.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost. The stub runs one setup
/// per timed routine call regardless of the hint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Throughput annotation attached to a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Per-iteration timing collector handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    budget: Duration,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            samples: Vec::new(),
            budget,
        }
    }

    /// Times `routine` repeatedly until the time budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Like [`Bencher::iter_batched`], passing the input by reference.
    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        let deadline = Instant::now() + self.budget;
        loop {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.samples.push(start.elapsed());
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{name:<44} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().expect("non-empty");
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if mean.as_nanos() > 0 => {
            let gib = b as f64 / mean.as_secs_f64() / (1024.0 * 1024.0 * 1024.0);
            format!("  {gib:8.3} GiB/s")
        }
        Some(Throughput::Elements(e)) if mean.as_nanos() > 0 => {
            format!("  {:8.1} Melem/s", e as f64 / mean.as_secs_f64() / 1e6)
        }
        _ => String::new(),
    };
    println!(
        "{name:<44} mean {:>12}  min {:>12}  ({} samples){rate}",
        fmt_duration(mean),
        fmt_duration(min),
        samples.len()
    );
}

/// The benchmark driver.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Short budget: the stub is for trend-tracking, not for
        // publication-grade statistics.
        Criterion {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        report(name.as_ref(), &b.samples, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}:");
        BenchmarkGroup {
            criterion: self,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl AsRef<str>,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher::new(self.criterion.budget);
        f(&mut b);
        report(&format!("  {}", name.as_ref()), &b.samples, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| n = n.wrapping_add(1));
        assert!(!b.samples.is_empty());
        assert!(n as usize >= b.samples.len());
    }

    #[test]
    fn iter_batched_runs_setup_per_call() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut setups = 0u64;
        b.iter_batched(
            || {
                setups += 1;
                vec![0u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(setups as usize, b.samples.len());
    }
}
