//! Vendored, dependency-free property-testing harness, API-compatible
//! with the subset of the `proptest` crate this workspace uses.
//!
//! Compared to the real crate there is no shrinking and no persistent
//! failure database: each `proptest!` test draws `cases` random inputs
//! from a generator seeded deterministically from the test's name, so
//! failures are reproducible run-to-run. That trade-off keeps the
//! harness small enough to vendor while preserving the tests' power to
//! falsify properties.

#![forbid(unsafe_code)]

use std::fmt::Debug;

/// Deterministic generator used to drive strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seeds the generator from a test identifier string.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a over the name gives a stable per-test seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Outcome of a single property-test case body.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case's assumptions (`prop_assume!`) were not met; draw a
    /// replacement input.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // The workspace exercises real cryptography in its properties;
        // 48 cases keeps the suite fast while retaining bug-finding
        // power (the real crate defaults to 256).
        ProptestConfig { cases: 48 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::ops::Range;
    use std::rc::Rc;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value: Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy returning a constant.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` adapter.
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    #[derive(Clone)]
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let pick = rng.below(self.0.len() as u64) as usize;
            self.0[pick].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    self.start + rng.below(span) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident : $idx:tt),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A: 0);
    impl_tuple_strategy!(A: 0, B: 1);
    impl_tuple_strategy!(A: 0, B: 1, C: 2);
    impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

    /// Strategy for any [`crate::Arbitrary`] type (`any::<T>()`).
    pub struct AnyStrategy<T>(pub(crate) PhantomData<T>);

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy(PhantomData)
        }
    }

    impl<T: super::Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.unit_f64()
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> strategy::AnyStrategy<T> {
    strategy::AnyStrategy(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    //! `Option` strategies.

    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy for `Option<T>`: `None` in ~25% of draws.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod sample {
    //! Sampling helpers.

    use super::{Arbitrary, TestRng};

    /// A position into a collection of then-unknown length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Resolves the index for a collection of `len` elements.
        ///
        /// # Panics
        ///
        /// Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((self.0 as u128 * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod prelude {
    //! Everything a property test needs in scope.

    /// Alias of this crate, for `prop::sample::Index`-style paths.
    pub use crate as prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{any, Arbitrary, ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests (see the crate docs for the dialect).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)));
                let mut passed = 0u32;
                let mut rejected = 0u32;
                while passed < config.cases {
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject) => {
                            rejected += 1;
                            assert!(
                                rejected < 1000 * config.cases,
                                "too many rejected cases in {}", stringify!($name));
                        }
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} falsified (case {}): {}",
                                   stringify!($name), passed, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{:?} != {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "{:?} == {:?}: {}", l, r, format!($($fmt)+));
    }};
}

/// Rejects the current case (draws a replacement) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among several strategies for the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::deterministic("ranges");
        for _ in 0..200 {
            let x = Strategy::generate(&(3usize..9), &mut rng);
            assert!((3..9).contains(&x));
        }
    }

    #[test]
    fn index_resolves_in_bounds() {
        let mut rng = crate::TestRng::deterministic("index");
        for len in [1usize, 2, 17, 1000] {
            let idx: prop::sample::Index = Arbitrary::arbitrary(&mut rng);
            assert!(idx.index(len) < len);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(any::<u8>(), 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(x in prop_oneof![
            Just(0u64),
            (10u64..20).prop_map(|v| v * 2),
        ]) {
            prop_assert!(x == 0 || (20..40).contains(&x));
        }

        #[test]
        fn assume_rejects_gracefully(a in any::<u8>(), b in any::<u8>()) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }
    }
}
