//! No-op derive macros for the vendored `serde` stub: the stub's
//! `Serialize` / `Deserialize` traits carry blanket implementations,
//! so the derives have nothing to emit.

use proc_macro::TokenStream;

/// Derives nothing; the blanket `impl<T> Serialize for T` covers it.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing; the blanket `impl<'de, T> Deserialize<'de> for T`
/// covers it.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
