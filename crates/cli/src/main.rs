//! `rekey` — command-line driver for the group key management library.
//!
//! ```text
//! rekey model     [--n 65536] [--d 4] [--k 10] [--alpha 0.8] [--tp 60]
//!                 [--ms 180] [--ml 10800]
//!     Evaluate the §3.3.1 analytic model: per-interval cost of the
//!     one-keytree / TT / QT / PT schemes.
//!
//! rekey simulate  [--scheme one|tt|qt|pt|forest|combined|adaptive]
//!                 [--n 2048] [--k 10]
//!                 [--alpha 0.8] [--intervals 40] [--warmup 15]
//!                 [--seed 42] [--verify] [--threads 1]
//!                 [--trace out.trace.json] [--metrics out.prom]
//!     Run the executable key server over a synthetic two-class
//!     workload and report measured bandwidth. `--threads` sets the
//!     worker count for the encryption phase; it changes wall-clock
//!     time only, never the emitted messages or reported metrics.
//!     `--trace` writes a Chrome `trace_event` JSON profile of the
//!     run (load it in about:tracing or Perfetto) and `--metrics`
//!     writes a Prometheus-style text dump of counters and latency
//!     histograms; both observe only, the reported bandwidth numbers
//!     are identical with or without them.
//!
//! rekey trace-check --file out.trace.json
//!     Validate a Chrome trace produced by `--trace`: JSON
//!     well-formedness, balanced begin/end events, counter shape.
//!
//! rekey recommend [--n 65536] [--d 4] [--tp 60] [--ms 180]
//!                 [--ml 10800] [--alpha 0.8] [--max-k 20]
//!     Apply the §3.4 scheme-selection rule to a duration mixture.
//!
//! rekey transport [--n 1024] [--l 16] [--alpha 0.2] [--ph 0.2]
//!                 [--pl 0.02] [--protocol wka|fec|multisend] [--seed 1]
//!     Deliver one real rekey message over simulated loss and report
//!     the bandwidth and rounds.
//!
//! rekey fuzz      [--scheme one|tt|qt|pt|forest|combined|adaptive|all]
//!                 [--seed 1 | --seed 1..=20] [--intervals 50]
//!                 [--loss lossless|bernoulli|wka] [--workers 1]
//!                 [--d 4] [--k 3]
//!     Run the seed-driven churn fuzzer: generate a replayable
//!     scenario per seed, drive real `GroupMember`s with the encoded
//!     wire bytes through the chosen delivery model, and check every
//!     interval against the shadow key-knowledge oracle (forward
//!     secrecy, ring soundness, DEK confinement, liveness). On
//!     failure the counterexample is shrunk and a replay command is
//!     printed.
//!
//! rekey workload  [--generator uniform|diurnal|flash-crowd|mobile-flap|
//!                  regional-loss|all|g1,g2,...]
//!                 [--scheme one|tt|qt|pt|forest|combined|adaptive|all|s1,s2,...]
//!                 [--seed 1] [--intervals 200]
//!                 [--loss lossless|bernoulli|wka] [--workers 1]
//!                 [--d 4] [--k 3] [--sweep] [--out BENCH_workloads.json]
//!                 [--dump-dir DIR] [--trace FILE]
//!     Run named trace-driven workloads (diurnal curves, flash crowds,
//!     mobile flap, correlated regional loss, plus the fuzzer's
//!     uniform churn) against the key schemes, with the full oracle +
//!     member-farm invariant suite live, and report bandwidth
//!     (multicast bytes/interval), rekey latency percentiles, and peak
//!     tree size per (generator, scheme) cell. `--sweep` runs every
//!     generator against every scheme, dumps one replayable trace file
//!     per generator (default `target/workloads/`, verified to decode
//!     back byte-identically), and writes the results with host
//!     context to `--out` (default `BENCH_workloads.json`). `--trace`
//!     replays a previously dumped trace file instead of generating:
//!     the file is validated (magic, version, membership consistency)
//!     and runs byte-identically to the run that dumped it.
//!
//! rekey serve     [--addr 127.0.0.1:0] [--scheme tt] [--d 4] [--k 10]
//!                 [--members 16] [--intervals 50] [--seed 42]
//!                 [--key-seed 7] [--period-ms 200] [--net-workers 2]
//!                 [--admin-addr 127.0.0.1:9100] [--smoke]
//!                 [--data-dir DIR] [--snapshot-every 8] [--churn]
//!     Run `rekeyd`, the threaded TCP key-distribution daemon:
//!     bootstrap `--members` demo members (individual keys derived
//!     from `--key-seed`), then publish one rekey epoch every
//!     `--period-ms` and fan each epoch out to every connected
//!     client. `--admin-addr` additionally serves the live admin
//!     plane on a separate port: `/metrics` (Prometheus text),
//!     `/healthz`, `/readyz`, `/vars` (JSON snapshot with quantiles),
//!     and `/flightrec` (flight-recorder JSONL). SIGTERM/SIGINT (and
//!     panics) trigger a graceful drain and dump the flight recorder
//!     to stderr. `--smoke` additionally runs every member as an
//!     in-process socket client against the daemon and verifies all
//!     of them arrive at the group DEK with byte-identical wire
//!     digests — the single-process loopback CI job. `--data-dir`
//!     makes the epoch stream durable: every interval is written to a
//!     write-ahead log (and fsynced) *before* the frame is fanned
//!     out, a CRC-checked snapshot is taken every `--snapshot-every`
//!     intervals (and at drain), and on boot the daemon recovers the
//!     snapshot + WAL tail and resumes at the logged epoch — a
//!     SIGKILLed daemon restarted on the same directory re-derives
//!     byte-identical epochs. `--churn` adds a deterministic
//!     join/leave every interval so the WAL sees real membership
//!     records.
//!
//! rekey snapshot  --data-dir DIR
//!     Inspect a durable data directory offline: snapshot epoch and
//!     size, WAL record count and epoch range, torn bytes dropped
//!     from the tail, and the resulting durable epoch — the value CI
//!     asserts is monotonic across a crash/restart cycle.
//!
//! rekey top       --addr HOST:PORT [--period-ms 1000] [--iters 0]
//!     Poll a running rekeyd's admin endpoint (`/vars`) and render a
//!     refreshing operational table: sessions, epochs/sec, fan-out
//!     and end-to-end propagation p50/p99, per-shard propagation,
//!     queue depth. `--iters N` stops after N frames (0 = forever).
//!
//! rekey metrics-check (--addr HOST:PORT | --file out.prom)
//!     Fetch `/metrics` from a live admin endpoint (or read a file)
//!     and validate it as Prometheus text exposition with the crate's
//!     own parser: metadata present, names in charset, histogram
//!     buckets cumulative and +Inf-terminated. With `--addr` it also
//!     probes `/healthz`.
//!
//! rekey client    --addr HOST:PORT [--member 0] [--key-seed 7]
//!                 [--from 1] [--idle-ms 3000]
//!     Connect a real group member to a running `rekeyd`, follow the
//!     epoch stream (reconnecting with backoff, NACKing gaps), and
//!     report the final key state when the server says goodbye or the
//!     stream goes idle.
//!
//! rekey simd
//!     Report the detected CPU SIMD features, the `REKEY_SIMD`
//!     override (if any), and the crypto-kernel backend this process
//!     selected (avx2 → sse2 → scalar).
//! ```

mod args;

use args::Args;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_analytic::partition::PartitionParams;
use rekey_core::adaptive::{recommend, MixtureEstimate};
use rekey_core::{Join, Scheme, SchemeConfig};
use rekey_crypto::sha256::Sha256;
use rekey_crypto::Key;
use rekey_keytree::message::{codec, RekeyMessage};
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;
use rekey_net::{demo_member_key, ClientConfig, NetError, RekeyClient, Rekeyd, ServerConfig};
use rekey_sim::driver::{run_scheme, SimConfig};
use rekey_sim::membership::{MembershipGenerator, MembershipParams};
use rekey_transport::interest::interest_map;
use rekey_transport::loss::Population;
use rekey_transport::{fec, multisend, wka_bkr};
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str =
    "usage: rekey <model|simulate|recommend|transport|trace-check|fuzz|workload|serve|client|top|metrics-check|snapshot|simd> [--flag value ...]
run `rekey help` or see the crate docs for the full flag list";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match args.command.as_deref() {
        Some("model") => cmd_model(&args),
        Some("simulate") => cmd_simulate(&args),
        Some("recommend") => cmd_recommend(&args),
        Some("transport") => cmd_transport(&args),
        Some("trace-check") => cmd_trace_check(&args),
        Some("fuzz") => cmd_fuzz(&args),
        Some("workload") => cmd_workload(&args),
        Some("serve") => cmd_serve(&args),
        Some("client") => cmd_client(&args),
        Some("top") => cmd_top(&args),
        Some("metrics-check") => cmd_metrics_check(&args),
        Some("snapshot") => cmd_snapshot(&args),
        Some("simd") => cmd_simd(),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

type CliResult = Result<(), Box<dyn std::error::Error>>;

/// An optional output-path flag; a bare `--flag` is an error rather
/// than a silently ignored switch.
fn path_flag(args: &Args, flag: &str) -> Result<Option<String>, args::ArgsError> {
    match args.get(flag) {
        None => Ok(None),
        Some("") => Err(args::ArgsError::MissingValue(flag.to_string())),
        Some(path) => Ok(Some(path.to_string())),
    }
}

fn model_params(args: &Args) -> Result<PartitionParams, args::ArgsError> {
    let defaults = PartitionParams::paper_default();
    Ok(PartitionParams {
        group_size: args.get_parsed_or("n", defaults.group_size)?,
        degree: args.get_parsed_or("d", defaults.degree)?,
        rekey_period: args.get_parsed_or("tp", defaults.rekey_period)?,
        k: args.get_parsed_or("k", defaults.k)?,
        mean_short: args.get_parsed_or("ms", defaults.mean_short)?,
        mean_long: args.get_parsed_or("ml", defaults.mean_long)?,
        alpha: args.get_parsed_or("alpha", defaults.alpha)?,
    })
}

fn cmd_model(args: &Args) -> CliResult {
    let p = model_params(args)?;
    let ss = p.steady_state();
    let c = p.costs();
    println!(
        "steady state: J = {:.1} joins/interval, Ns = {:.0}, Nl = {:.0}, migrations = {:.1}/interval",
        ss.joins_per_period, ss.n_s, ss.n_l, ss.l_m
    );
    println!("per-interval rekey cost (encrypted keys):");
    for (name, cost) in [
        ("one-keytree", c.one_keytree),
        ("tt-scheme", c.tt),
        ("qt-scheme", c.qt),
        ("pt-scheme", c.pt),
    ] {
        println!(
            "  {name:<12} {cost:>10.0}   ({:+.1}% vs one-keytree)",
            100.0 * (cost / c.one_keytree - 1.0)
        );
    }
    Ok(())
}

fn cmd_simulate(args: &Args) -> CliResult {
    let scheme: Scheme = args.get_or("scheme", "tt").parse()?;
    let n: usize = args.get_parsed_or("n", 2048usize)?;
    let degree: usize = args.get_parsed_or("d", 4usize)?;
    let k: u64 = args.get_parsed_or("k", 10u64)?;
    let alpha: f64 = args.get_parsed_or("alpha", 0.8f64)?;
    let seed: u64 = args.get_parsed_or("seed", 42u64)?;
    let verify: bool = args.get_bool_or("verify", false)?;
    let config = SimConfig {
        intervals: args.get_parsed_or("intervals", 40usize)?,
        warmup: args.get_parsed_or("warmup", 15usize)?,
        verify_members: verify,
        oracle_hints: scheme == Scheme::Pt,
        parallelism: args.get_parsed_or("threads", 1usize)?,
        trace: path_flag(args, "trace")?,
        metrics: path_flag(args, "metrics")?,
    };

    let mut manager = scheme.build(&SchemeConfig::new().degree(degree).s_period(k));

    let params = MembershipParams {
        target_size: n,
        alpha,
        ..MembershipParams::paper_default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut generator = MembershipGenerator::new(params, &mut rng);
    let report = run_scheme(manager.as_mut(), &mut generator, &config, &mut rng);
    println!(
        "{}: {:.0} keys/interval (std {:.0}, min {:.0}, max {:.0}) over {} intervals; final group size {}",
        manager.scheme_name(),
        report.keys_summary.mean,
        report.keys_summary.stddev,
        report.keys_summary.min,
        report.keys_summary.max,
        report.intervals.len(),
        report.final_size
    );
    if verify {
        println!("member verification: every present member held the DEK every interval");
    }
    if config.trace.is_some() || config.metrics.is_some() {
        let p = report.phases;
        println!(
            "phase breakdown: mutate {:.3}s, plan {:.3}s, execute {:.3}s",
            p.mutate_s, p.plan_s, p.execute_s
        );
        if let Some(path) = &config.trace {
            println!("trace written to {path}");
        }
        if let Some(path) = &config.metrics {
            println!("metrics written to {path}");
        }
    }
    Ok(())
}

fn cmd_trace_check(args: &Args) -> CliResult {
    let path = args
        .get("file")
        .filter(|p| !p.is_empty())
        .ok_or("trace-check requires --file <path>")?;
    let text = std::fs::read_to_string(path)?;
    let summary = rekey_obs::chrome::validate_trace(&text)?;
    println!(
        "{path}: valid trace; {} begin / {} end events across {} span names, {} counter samples",
        summary.begin_events,
        summary.end_events,
        summary.span_names.len(),
        summary.counter_events
    );
    Ok(())
}

/// Report CPU features and the selected crypto-kernel backend — the
/// fast way to confirm what `REKEY_SIMD` resolves to on a given host.
fn cmd_simd() -> CliResult {
    let feats = rekey_crypto::simd::detect();
    println!(
        "cpu features:     sse2={} ssse3={} avx2={}",
        feats.sse2, feats.ssse3, feats.avx2
    );
    match std::env::var("REKEY_SIMD") {
        Ok(v) => println!("REKEY_SIMD:       {v}"),
        Err(_) => println!("REKEY_SIMD:       (unset — auto)"),
    }
    println!("selected backend: {}", rekey_crypto::simd::active());
    Ok(())
}

fn cmd_recommend(args: &Args) -> CliResult {
    let p = model_params(args)?;
    let max_k: u32 = args.get_parsed_or("max-k", 20u32)?;
    let estimate = MixtureEstimate {
        mean_short: p.mean_short,
        mean_long: p.mean_long,
        alpha: p.alpha,
        samples: 0,
    };
    let rec = recommend(
        p.group_size,
        p.degree,
        p.rekey_period,
        Some(estimate),
        max_k,
    );
    println!(
        "recommendation: {:?}\npredicted cost {:.0} keys/interval vs one-keytree {:.0} ({:.1}% saving)",
        rec.scheme,
        rec.predicted_cost,
        rec.one_keytree_cost,
        100.0 * (1.0 - rec.predicted_cost / rec.one_keytree_cost)
    );
    Ok(())
}

/// Parses `--seed` as either a single seed (`7`) or an inclusive
/// range (`1..=20`).
fn parse_seed_range(spec: &str) -> Result<(u64, u64), Box<dyn std::error::Error>> {
    if let Some((lo, hi)) = spec.split_once("..=") {
        let lo: u64 = lo.trim().parse()?;
        let hi: u64 = hi.trim().parse()?;
        if lo > hi {
            return Err(format!("empty seed range {spec:?}").into());
        }
        Ok((lo, hi))
    } else {
        let seed: u64 = spec.trim().parse()?;
        Ok((seed, seed))
    }
}

fn cmd_fuzz(args: &Args) -> CliResult {
    use rekey_testkit::{
        factory_for, run_scenario, shrink, Delivery, GenParams, RunOptions, Scenario,
    };

    let (seed_lo, seed_hi) = parse_seed_range(&args.get_or("seed", "1"))?;
    let intervals: usize = args.get_parsed_or("intervals", 50usize)?;
    let workers: usize = args.get_parsed_or("workers", 1usize)?;
    let scheme_flag = args.get_or("scheme", "all");
    let loss = args.get_or("loss", "wka");
    let delivery =
        Delivery::parse(&loss).ok_or_else(|| format!("unknown delivery mode {loss:?}"))?;
    let params = GenParams {
        degree: args.get_parsed_or("d", 4u8)?,
        k: args.get_parsed_or("k", 3u16)?,
        ..GenParams::default()
    };

    let schemes: Vec<Scheme> = if scheme_flag == "all" {
        Scheme::ALL.to_vec()
    } else {
        vec![scheme_flag.parse()?]
    };

    let opts = RunOptions { delivery, workers };
    let mut failures = 0usize;
    for seed in seed_lo..=seed_hi {
        let scenario = Scenario::generate(seed, intervals, &params);
        for &scheme in &schemes {
            let factory = factory_for(scheme);
            match run_scenario(&factory, &scenario, &opts) {
                Ok(stats) => println!(
                    "seed {seed} {scheme}: ok — {} intervals, {} entries ({} bytes), {} members at end",
                    stats.intervals, stats.total_entries, stats.total_bytes, stats.final_members
                ),
                Err(violation) => {
                    failures += 1;
                    println!("seed {seed} {scheme}: FAIL at {violation}");
                    let report = shrink(&factory, &scenario, &opts, violation, 400);
                    println!(
                        "  shrunk to {} ops over {} intervals ({} runs): {}",
                        report.scenario.op_count(),
                        report.scenario.intervals.len(),
                        report.runs,
                        report.violation
                    );
                    println!(
                        "  replay: {}",
                        report.replay_command(scheme.name(), delivery, workers)
                    );
                }
            }
        }
    }
    if failures > 0 {
        return Err(format!("{failures} fuzz failure(s)").into());
    }
    Ok(())
}

fn hex32(bytes: &[u8; 32]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parses a `--scheme` flag that may be a single name, a comma list,
/// or `all`.
fn parse_scheme_list(spec: &str) -> Result<Vec<Scheme>, Box<dyn std::error::Error>> {
    if spec == "all" {
        return Ok(Scheme::ALL.to_vec());
    }
    spec.split(',')
        .map(|name| name.trim().parse::<Scheme>().map_err(Into::into))
        .collect()
}

/// One (generator, scheme) cell of a workload run or sweep.
struct WorkloadCell {
    generator: String,
    scheme: &'static str,
    run: rekey_testkit::WorkloadRun,
    trace_file: Option<String>,
}

fn print_workload_cell(cell: &WorkloadCell) {
    let lat = &cell.run.latency_ns;
    println!(
        "{:<14} {:<9} peak {:>6} members  {:>9.0} B/interval (max {:>7})  latency p50 {:>8}ns p99 {:>8}ns  digest {}",
        cell.generator,
        cell.scheme,
        cell.run.peak_members,
        cell.run.mean_interval_bytes,
        cell.run.max_interval_bytes,
        lat.quantile(0.5),
        lat.quantile(0.99),
        &hex32(&cell.run.stats.digest)[..16],
    );
}

/// Runs every scheme in `schemes` over one compiled workload scenario
/// and appends the measured cells.
fn run_workload_cells(
    generator: &str,
    scenario: &rekey_testkit::Scenario,
    schemes: &[Scheme],
    opts: &rekey_testkit::RunOptions,
    trace_file: Option<&str>,
    cells: &mut Vec<WorkloadCell>,
) -> CliResult {
    for &scheme in schemes {
        let factory = rekey_testkit::factory_for(scheme);
        let run = rekey_testkit::run_workload(generator, &factory, scenario, opts)
            .map_err(|v| format!("{generator}/{}: invariant violation at {v}", scheme.name()))?;
        let cell = WorkloadCell {
            generator: generator.to_string(),
            scheme: scheme.name(),
            run,
            trace_file: trace_file.map(str::to_string),
        };
        print_workload_cell(&cell);
        cells.push(cell);
    }
    Ok(())
}

/// Serializes sweep cells (plus host and run config) as
/// `BENCH_workloads.json`, in the same shape as the other `BENCH_*`
/// artifacts.
#[allow(clippy::too_many_arguments)]
fn write_workload_report(
    path: &str,
    cells: &[WorkloadCell],
    seed: u64,
    intervals: usize,
    delivery: rekey_testkit::Delivery,
    workers: usize,
    degree: u8,
    k: u16,
) -> CliResult {
    use rekey_bench::emit::{json_escape, HostContext};
    use std::fmt::Write as _;

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"workloads\",");
    HostContext::detect().push_json(&mut json, &[]);
    let _ = writeln!(
        json,
        "  \"config\": {{\"seed\": {seed}, \"intervals\": {intervals}, \"delivery\": \"{}\", \"workers\": {workers}, \"degree\": {degree}, \"k\": {k}}},",
        delivery.name()
    );
    json.push_str("  \"results\": [\n");
    for (i, cell) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        let lat = &cell.run.latency_ns;
        let trace_file = match &cell.trace_file {
            Some(f) => format!("\"{}\"", json_escape(f)),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"workload\": \"{}\", \"scheme\": \"{}\", \"intervals\": {}, \"final_members\": {}, \"peak_members\": {}, \"total_entries\": {}, \"total_bytes\": {}, \"bytes_per_interval_mean\": {:.1}, \"max_interval_bytes\": {}, \"latency_ns\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}}, \"trace_file\": {trace_file}, \"digest\": \"{}\"}}{sep}",
            json_escape(&cell.generator),
            cell.scheme,
            cell.run.stats.intervals,
            cell.run.stats.final_members,
            cell.run.peak_members,
            cell.run.stats.total_entries,
            cell.run.stats.total_bytes,
            cell.run.mean_interval_bytes,
            cell.run.max_interval_bytes,
            lat.quantile(0.5),
            lat.quantile(0.9),
            lat.quantile(0.99),
            lat.max(),
            hex32(&cell.run.stats.digest),
        );
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json)?;
    println!("wrote {path} ({} cells)", cells.len());
    Ok(())
}

fn cmd_workload(args: &Args) -> CliResult {
    use rekey_testkit::{workload_by_name, Delivery, GenParams, RunOptions, Trace, WORKLOAD_NAMES};

    let seed: u64 = args.get_parsed_or("seed", 1u64)?;
    let intervals: usize = args.get_parsed_or("intervals", 200usize)?;
    let workers: usize = args.get_parsed_or("workers", 1usize)?;
    let sweep: bool = args.get_bool_or("sweep", false)?;
    let loss = args.get_or("loss", "lossless");
    let delivery =
        Delivery::parse(&loss).ok_or_else(|| format!("unknown delivery mode {loss:?}"))?;
    let degree: u8 = args.get_parsed_or("d", 4u8)?;
    let k: u16 = args.get_parsed_or("k", 3u16)?;
    let params = GenParams {
        degree,
        k,
        ..GenParams::default()
    };
    let opts = RunOptions { delivery, workers };
    let schemes = parse_scheme_list(&args.get_or("scheme", "all"))?;
    let out = args.get_or("out", "BENCH_workloads.json");
    let mut cells: Vec<WorkloadCell> = Vec::new();

    // Replay path: the scenario comes from a dumped trace file, not a
    // generator. Hand-edited traces are rejected with a typed error
    // (truncation, bad magic/version, or membership inconsistencies
    // like a leave of an already-departed member) instead of silently
    // repaired.
    if let Some(path) = path_flag(args, "trace")? {
        let bytes = std::fs::read(&path)?;
        let trace = Trace::decode(&bytes).map_err(|e| format!("{path}: {e}"))?;
        trace
            .scenario
            .validate()
            .map_err(|e| format!("{path}: invalid scenario: {e}"))?;
        println!(
            "replaying {path}: generator {}, seed {}, {} churn intervals",
            trace.generator,
            trace.scenario.seed,
            trace.scenario.intervals.len().saturating_sub(1)
        );
        run_workload_cells(
            &trace.generator,
            &trace.scenario,
            &schemes,
            &opts,
            Some(&path),
            &mut cells,
        )?;
        if sweep {
            write_workload_report(&out, &cells, seed, intervals, delivery, workers, degree, k)?;
        }
        return Ok(());
    }

    let generator_flag = args.get_or("generator", if sweep { "all" } else { "uniform" });
    let generators: Vec<String> = if generator_flag == "all" {
        WORKLOAD_NAMES.iter().map(|n| n.to_string()).collect()
    } else {
        generator_flag
            .split(',')
            .map(|n| n.trim().to_string())
            .collect()
    };
    // A sweep always dumps the per-generator trace files so every cell
    // is replayable; ad-hoc runs dump only when asked.
    let dump_dir = match path_flag(args, "dump-dir")? {
        Some(dir) => Some(dir),
        None if sweep => Some("target/workloads".to_string()),
        None => None,
    };
    if let Some(dir) = &dump_dir {
        std::fs::create_dir_all(dir)?;
    }

    for generator in &generators {
        let mut workload = workload_by_name(generator)
            .ok_or_else(|| format!("unknown workload generator {generator:?}"))?;
        let scenario = workload.compile(seed, intervals, &params);
        let trace = Trace {
            generator: generator.clone(),
            scenario,
        };
        let trace_file = match &dump_dir {
            Some(dir) => {
                let path = format!("{dir}/{generator}-seed{seed}.trace.bin");
                let encoded = trace.encode();
                std::fs::write(&path, &encoded)?;
                // Close the loop on the spot: the dumped file must
                // decode back to the byte-identical trace.
                let reread = Trace::decode(&std::fs::read(&path)?)
                    .map_err(|e| format!("{path}: dumped trace failed to decode: {e}"))?;
                if reread.encode() != encoded {
                    return Err(format!("{path}: dumped trace did not round-trip").into());
                }
                Some(path)
            }
            None => None,
        };
        run_workload_cells(
            generator,
            &trace.scenario,
            &schemes,
            &opts,
            trace_file.as_deref(),
            &mut cells,
        )?;
    }

    if sweep {
        write_workload_report(&out, &cells, seed, intervals, delivery, workers, degree, k)?;
    }
    Ok(())
}

/// SIGTERM/SIGINT latch for `rekey serve`. The handler only flips an
/// atomic; the serve loop polls it between publishes and runs the
/// graceful drain (and flight-recorder dump) itself.
#[cfg(unix)]
mod term_signal {
    use std::sync::atomic::{AtomicBool, Ordering};

    pub static REQUESTED: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        REQUESTED.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    pub fn install() {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        // SAFETY: registers an async-signal-safe handler (one relaxed
        // atomic store, no allocation, no locks) for two standard
        // termination signals.
        unsafe {
            signal(SIGTERM, on_signal as *const () as usize);
            signal(SIGINT, on_signal as *const () as usize);
        }
    }

    pub fn requested() -> bool {
        REQUESTED.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod term_signal {
    pub fn install() {}

    pub fn requested() -> bool {
        false
    }
}

fn cmd_serve(args: &Args) -> CliResult {
    let addr = args.get_or("addr", "127.0.0.1:0");
    let scheme: Scheme = args.get_or("scheme", "tt").parse()?;
    let degree: usize = args.get_parsed_or("d", 4usize)?;
    let k: u64 = args.get_parsed_or("k", 10u64)?;
    let members: u64 = args.get_parsed_or("members", 16u64)?;
    let intervals: u64 = args.get_parsed_or("intervals", 50u64)?.max(1);
    let seed: u64 = args.get_parsed_or("seed", 42u64)?;
    let key_seed: u64 = args.get_parsed_or("key-seed", 7u64)?;
    let smoke: bool = args.get_bool_or("smoke", false)?;
    let period_ms: u64 = args.get_parsed_or("period-ms", if smoke { 2 } else { 200u64 })?;
    let net_workers: usize = args.get_parsed_or("net-workers", 2usize)?;
    let admin_addr = match path_flag(args, "admin-addr")? {
        Some(spec) => Some(spec.parse::<std::net::SocketAddr>()?),
        None => None,
    };
    let data_dir = path_flag(args, "data-dir")?;
    let snapshot_every: u64 = args.get_parsed_or("snapshot-every", 8u64)?;
    let churn: bool = args.get_bool_or("churn", false)?;
    if data_dir.is_some() && scheme == Scheme::Adaptive {
        return Err(
            "the adaptive scheme cannot serialize its state; --data-dir requires a \
                    fixed scheme"
                .into(),
        );
    }

    // The daemon records into this collector directly; installing it
    // globally as well merges the in-process smoke clients' and
    // engine's probes into the same admin-visible registry.
    let collector = std::sync::Arc::new(rekey_obs::Collector::new());
    rekey_obs::install(collector.clone());

    let config = ServerConfig {
        workers: net_workers,
        admin_addr,
        ..ServerConfig::default()
    };
    let daemon = Rekeyd::bind_with(addr.as_str(), config, collector.clone())?;
    println!(
        "rekeyd: listening on {} — scheme {scheme}, {members} members, {intervals} intervals",
        daemon.local_addr()
    );
    if let Some(admin) = daemon.admin_addr() {
        println!(
            "rekeyd: admin plane on http://{admin} (/metrics /healthz /readyz /vars /flightrec)"
        );
    }

    // On SIGTERM/SIGINT the loop below drains gracefully; on panic the
    // hook dumps the flight recorder before the process dies.
    term_signal::install();
    let flight = daemon.flight();
    {
        let flight = flight.clone();
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            eprintln!("rekeyd: panic — flight recorder follows");
            eprint!("{}", flight.dump_jsonl());
            previous(info);
        }));
    }

    let mut manager = scheme.build(&SchemeConfig::new().degree(degree).s_period(k));
    let member_keys: Vec<(MemberId, Key)> = (0..members)
        .map(|m| (MemberId(m), demo_member_key(key_seed, MemberId(m))))
        .collect();
    for (member, key) in &member_keys {
        daemon.register(*member, key.clone());
    }

    // Durable mode: recover the snapshot + WAL tail from --data-dir,
    // republish the re-derived epochs into the retransmission window
    // (reconnecting clients NACK them back), and resume the RNG and
    // interval counter exactly where the previous process stopped.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut journal = None;
    let mut start_interval = 0u64;
    if let Some(dir) = &data_dir {
        let mut j = rekey_core::Journal::new(rekey_storage::DirStorage::open(dir)?, snapshot_every);
        let recovery = j.recover(manager.as_mut())?;
        if recovery.snapshot_loaded || recovery.replayed > 0 {
            println!(
                "rekeyd: recovered epoch {} from {dir} (snapshot loaded: {}, {} WAL record(s) replayed, {} torn byte(s) dropped)",
                recovery.epoch,
                recovery.snapshot_loaded,
                recovery.replayed,
                recovery.dropped_wal_bytes
            );
        }
        for message in &recovery.messages {
            daemon.publish(message)?;
        }
        if let Some(recovered) = recovery.rng {
            rng = recovered;
        }
        start_interval = recovery.epoch;
        journal = Some(j);
    }

    // `--smoke`: every member is also an in-process socket client
    // following the daemon over real loopback TCP.
    let dek_node = manager.dek_node();
    let mut smoke_clients = Vec::new();
    if smoke {
        let addr = daemon.local_addr();
        for (member, key) in &member_keys {
            let (member, key) = (*member, key.clone());
            smoke_clients.push(std::thread::spawn(
                move || -> Result<(MemberId, u64, [u8; 32], Option<Key>), NetError> {
                    let mut client =
                        RekeyClient::new(addr, member, key, 1, ClientConfig::default());
                    client.sync_to(intervals, Duration::from_secs(60))?;
                    let dek = client.member().key_for(dek_node).cloned();
                    client.close();
                    Ok((member, client.applied(), client.digest(), dek))
                },
            ));
        }
    }

    let mut digest = Sha256::new();
    let mut total_entries = 0usize;
    let mut published = 0u64;
    for interval in start_interval..intervals {
        if term_signal::requested() {
            println!("rekeyd: termination signal after {published} epochs — draining");
            daemon.begin_shutdown();
            eprintln!("rekeyd: flight recorder follows");
            eprint!("{}", flight.dump_jsonl());
            break;
        }
        let mut joins: Vec<Join> = if interval == 0 {
            member_keys
                .iter()
                .map(|(m, key)| Join::new(*m, key.clone()))
                .collect()
        } else {
            Vec::new()
        };
        let mut leaves: Vec<MemberId> = Vec::new();
        if churn && interval > 0 {
            // Deterministic ghost-member churn: cycle extra member ids
            // (outside the demo-client range) through join/leave so the
            // WAL sees real membership records. Presence is read back
            // from the manager, so the pattern survives a restart.
            let ghost = MemberId(members + (interval % members.max(1)));
            if manager.contains(ghost) {
                leaves.push(ghost);
            } else {
                joins.push(Join::new(ghost, demo_member_key(key_seed, ghost)));
            }
        }
        // The fan-out hook: the daemon is the manager's RekeySink. In
        // durable mode the journal appends + fsyncs the epoch record
        // *before* invoking the sink — no frame a restart cannot
        // re-derive ever reaches a client.
        let mut publish_err = None;
        let mut sink = |message: &RekeyMessage| {
            if let Err(e) = daemon.publish(message) {
                publish_err = Some(e);
            }
        };
        let outcome = match journal.as_mut() {
            Some(journal) => {
                journal.durable_interval(manager.as_mut(), &joins, &leaves, &mut rng, &mut sink)?
            }
            None => manager.process_interval_into(&joins, &leaves, &mut rng, &mut sink)?,
        };
        if let Some(e) = publish_err {
            return Err(e.into());
        }
        digest.update(&codec::encode_message(&outcome.message));
        total_entries += outcome.message.encrypted_key_count();
        published += 1;
        if period_ms > 0 {
            std::thread::sleep(Duration::from_millis(period_ms));
        }
    }
    // Drain-time flush: a final snapshot subsumes the WAL, so a clean
    // restart replays nothing.
    if let Some(journal) = journal.as_mut() {
        journal.snapshot(manager.as_ref(), &rng)?;
    }
    let server_digest = digest.finalize();
    println!(
        "rekeyd: published {published} epochs ({total_entries} encrypted keys), digest {}",
        hex32(&server_digest)
    );

    let mut failures = 0usize;
    if smoke {
        for handle in smoke_clients {
            match handle.join().expect("client thread panicked") {
                Ok((member, applied, client_digest, dek)) => {
                    let digest_ok = client_digest == server_digest;
                    let dek_ok = dek.as_ref() == Some(manager.dek());
                    if !digest_ok || !dek_ok {
                        failures += 1;
                        println!(
                            "smoke: member {} FAILED (applied {applied}, digest match: {digest_ok}, dek match: {dek_ok})",
                            member.0
                        );
                    }
                }
                Err(e) => {
                    failures += 1;
                    println!("smoke: client error: {e}");
                }
            }
        }
    }

    daemon.shutdown()?;
    rekey_obs::uninstall();
    let snap = collector.snapshot();
    println!(
        "rekeyd: fanout {} bytes framed, {} bytes written, sessions opened {}, retransmits {}",
        snap.counter("net.fanout.bytes"),
        snap.counter("net.bytes_out"),
        snap.counter("net.sessions.opened"),
        snap.counter("net.retransmit.frames"),
    );
    if smoke {
        if failures > 0 {
            return Err(format!("{failures} smoke client(s) diverged").into());
        }
        println!(
            "smoke: all {members} socket clients hold the group DEK with byte-identical digests"
        );
    }
    Ok(())
}

fn cmd_client(args: &Args) -> CliResult {
    let addr = args
        .get("addr")
        .filter(|a| !a.is_empty())
        .ok_or("client requires --addr host:port")?;
    let addr: std::net::SocketAddr = addr.parse()?;
    let member = MemberId(args.get_parsed_or("member", 0u64)?);
    let key_seed: u64 = args.get_parsed_or("key-seed", 7u64)?;
    let from: u64 = args.get_parsed_or("from", 1u64)?;
    let idle_ms: u64 = args.get_parsed_or("idle-ms", 3000u64)?;

    let key = demo_member_key(key_seed, member);
    let mut client = RekeyClient::new(addr, member, key, from, ClientConfig::default());
    let slice = Duration::from_millis(250);
    let mut idle = Duration::ZERO;
    loop {
        let applied = client.poll(slice)?;
        if client.server_closed() {
            println!("client {}: server closed the stream", member.0);
            break;
        }
        if applied == 0 {
            idle += slice;
            if idle >= Duration::from_millis(idle_ms) {
                println!(
                    "client {}: stream idle for {idle_ms}ms, detaching",
                    member.0
                );
                client.close();
                break;
            }
        } else {
            idle = Duration::ZERO;
        }
    }
    println!(
        "client {}: applied {} epochs (next {}), {} reconnects, {} keys held, digest {}",
        member.0,
        client.applied(),
        client.next_epoch(),
        client.reconnects(),
        client.member().key_count(),
        hex32(&client.digest())
    );
    Ok(())
}

/// Human-friendly nanoseconds: `850ns`, `12.5µs`, `3.20ms`, `1.75s`.
fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

fn admin_addr_flag(args: &Args) -> Result<std::net::SocketAddr, Box<dyn std::error::Error>> {
    let addr = args
        .get("addr")
        .filter(|a| !a.is_empty())
        .ok_or("requires --addr host:port (the rekeyd admin address)")?;
    Ok(addr.parse()?)
}

/// One `/vars` snapshot reduced to what `top` renders.
struct TopFrame {
    live: bool,
    sessions: f64,
    epochs: f64,
    queue_depth: f64,
    /// (name, count, p50_ns, p99_ns) per histogram of interest.
    hists: Vec<(String, f64, f64, f64)>,
}

fn fetch_top_frame(addr: std::net::SocketAddr) -> Result<TopFrame, Box<dyn std::error::Error>> {
    let response = rekey_obs::admin::http_get(addr, "/vars", Duration::from_secs(2))?;
    if response.status != 200 {
        return Err(format!("/vars returned HTTP {}", response.status).into());
    }
    let doc = rekey_obs::json::parse(&response.body)?;
    let num = |v: Option<&rekey_obs::json::Value>| v.and_then(|v| v.as_num()).unwrap_or(0.0);
    let counters = doc.get("counters");
    let gauges = doc.get("gauges");
    let mut hists = Vec::new();
    if let Some(rekey_obs::json::Value::Obj(map)) = doc.get("hists") {
        for (name, hist) in map {
            if name == "net.fanout" || name.starts_with("net.propagation") {
                hists.push((
                    name.clone(),
                    num(hist.get("count")),
                    num(hist.get("p50_ns")),
                    num(hist.get("p99_ns")),
                ));
            }
        }
    }
    Ok(TopFrame {
        live: doc.get("live") == Some(&rekey_obs::json::Value::Bool(true)),
        sessions: num(gauges.and_then(|g| g.get("net.sessions.live"))),
        epochs: num(counters.and_then(|c| c.get("net.epochs_published"))),
        queue_depth: num(gauges.and_then(|g| g.get("net.queue.depth"))),
        hists,
    })
}

fn cmd_top(args: &Args) -> CliResult {
    let addr = admin_addr_flag(args)?;
    let period_ms: u64 = args.get_parsed_or("period-ms", 1000u64)?;
    let iters: u64 = args.get_parsed_or("iters", 0u64)?;

    let mut previous: Option<(std::time::Instant, f64)> = None;
    let mut frame_no = 0u64;
    loop {
        let frame = fetch_top_frame(addr)?;
        let now = std::time::Instant::now();
        let rate = match previous {
            Some((t, epochs)) => {
                let dt = now.duration_since(t).as_secs_f64();
                if dt > 0.0 {
                    (frame.epochs - epochs) / dt
                } else {
                    0.0
                }
            }
            None => 0.0,
        };
        previous = Some((now, frame.epochs));

        if frame_no > 0 {
            // Repaint in place: clear screen, home cursor.
            print!("\x1b[2J\x1b[H");
        }
        println!(
            "rekey top — {addr}  [{}]",
            if frame.live { "healthy" } else { "DRAINING" }
        );
        println!(
            "sessions {:>6}   epochs {:>8}   epochs/sec {:>8.2}   queue depth {:>5}",
            frame.sessions, frame.epochs, rate, frame.queue_depth
        );
        println!(
            "{:<28} {:>10} {:>10} {:>10}",
            "latency", "count", "p50", "p99"
        );
        for (name, count, p50, p99) in &frame.hists {
            println!(
                "{name:<28} {count:>10} {:>10} {:>10}",
                fmt_ns(*p50),
                fmt_ns(*p99)
            );
        }
        if frame.hists.is_empty() {
            println!("(no latency histograms yet — waiting for traffic)");
        }

        frame_no += 1;
        if iters > 0 && frame_no >= iters {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(period_ms.max(50)));
    }
}

fn cmd_metrics_check(args: &Args) -> CliResult {
    let file = path_flag(args, "file")?;
    let (source, text) = match file {
        Some(path) => (path.clone(), std::fs::read_to_string(&path)?),
        None => {
            let addr = admin_addr_flag(args)?;
            let health = rekey_obs::admin::http_get(addr, "/healthz", Duration::from_secs(2))?;
            println!(
                "{addr} /healthz: HTTP {} ({})",
                health.status,
                health.body.trim()
            );
            let response = rekey_obs::admin::http_get(addr, "/metrics", Duration::from_secs(2))?;
            if response.status != 200 {
                return Err(format!("/metrics returned HTTP {}", response.status).into());
            }
            (format!("{addr}/metrics"), response.body)
        }
    };
    let summary = rekey_obs::prom::validate(&text)?;
    println!(
        "{source}: valid Prometheus exposition — {} samples, {} counters, {} gauges, {} histograms",
        summary.samples,
        summary.counters.len(),
        summary.gauges.len(),
        summary.histograms.len()
    );
    Ok(())
}

/// Offline inspection of a `--data-dir`: snapshot epoch, WAL record
/// range, torn bytes, and the resulting durable epoch. CI greps the
/// `durable epoch` line to assert monotonicity across a kill/restart.
fn cmd_snapshot(args: &Args) -> CliResult {
    use rekey_core::persist::{EpochRecord, SNAPSHOT_WIRE_VERSION};
    use rekey_storage::{DirStorage, Storage};

    let dir = path_flag(args, "data-dir")?.ok_or("snapshot requires --data-dir <dir>")?;
    let mut storage = DirStorage::open(&dir)?;

    let mut snapshot_epoch: Option<u64> = None;
    match storage.load_snapshot()? {
        Some(blob) => {
            if blob.first() != Some(&SNAPSHOT_WIRE_VERSION) {
                return Err(
                    format!("{dir}: unsupported snapshot version {:?}", blob.first()).into(),
                );
            }
            let epoch_bytes: [u8; 8] = blob
                .get(1..9)
                .and_then(|b| b.try_into().ok())
                .ok_or("snapshot header truncated")?;
            let epoch = u64::from_be_bytes(epoch_bytes);
            println!("snapshot: epoch {epoch}, {} bytes", blob.len());
            snapshot_epoch = Some(epoch);
        }
        None => println!("snapshot: none"),
    }

    let replay = storage.read_wal()?;
    let mut first_epoch = None;
    let mut last_epoch = None;
    for bytes in &replay.records {
        let record =
            EpochRecord::decode(bytes).ok_or("corrupt epoch record inside a valid WAL frame")?;
        first_epoch.get_or_insert(record.epoch);
        last_epoch = Some(record.epoch);
    }
    match (first_epoch, last_epoch) {
        (Some(first), Some(last)) => println!(
            "wal: {} record(s), epochs {first}..={last}, {} torn byte(s) dropped",
            replay.records.len(),
            replay.dropped_bytes
        ),
        _ => println!(
            "wal: 0 records, {} torn byte(s) dropped",
            replay.dropped_bytes
        ),
    }

    // A crash between the snapshot write and the WAL truncation can
    // leave records the snapshot already covers; durability is the max
    // of both, exactly as recovery computes it.
    let durable = last_epoch.unwrap_or(0).max(snapshot_epoch.unwrap_or(0));
    println!("durable epoch: {durable}");
    Ok(())
}

fn cmd_transport(args: &Args) -> CliResult {
    let n: u64 = args.get_parsed_or("n", 1024u64)?;
    let l: u64 = args.get_parsed_or("l", 16u64)?;
    let alpha: f64 = args.get_parsed_or("alpha", 0.2f64)?;
    let ph: f64 = args.get_parsed_or("ph", 0.2f64)?;
    let pl: f64 = args.get_parsed_or("pl", 0.02f64)?;
    let seed: u64 = args.get_parsed_or("seed", 1u64)?;
    let protocol = args.get_or("protocol", "wka");

    let mut rng = StdRng::seed_from_u64(seed);
    let mut server = LkhServer::new(4, 0);
    let joins: Vec<(MemberId, Key)> = (0..n)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    server.apply_batch(&joins, &[], &mut rng);
    let stride = (n / l.max(1)) | 1;
    let leavers: Vec<MemberId> = (0..l).map(|i| MemberId(i * stride)).collect();
    let out = server.apply_batch(&[], &leavers, &mut rng);
    let present: Vec<MemberId> = (0..n)
        .map(MemberId)
        .filter(|m| !leavers.contains(m))
        .collect();
    let interest = interest_map(&out.message, |node, out| {
        server.members_under_into(node, out)
    });
    let pop = Population::two_point(&present, alpha, ph, pl, &mut rng);

    println!(
        "rekey message: {} encrypted keys ({} bytes) for {} receivers",
        out.message.encrypted_key_count(),
        out.message.byte_len(),
        present.len()
    );
    let report = match protocol.as_str() {
        "wka" => {
            wka_bkr::deliver(
                &out.message,
                &interest,
                &pop,
                &wka_bkr::WkaBkrConfig::default(),
                &mut rng,
            )
            .report
        }
        "fec" => {
            fec::deliver(
                &out.message,
                &interest,
                &pop,
                &fec::FecConfig::default(),
                &mut rng,
            )
            .report
        }
        "multisend" => multisend::deliver(
            &out.message,
            &interest,
            &pop,
            &multisend::MultiSendConfig::default(),
            &mut rng,
        ),
        other => return Err(format!("unknown protocol {other:?}").into()),
    };
    println!(
        "{protocol}: complete={} rounds={} packets={} keys_transmitted={}",
        report.complete, report.rounds, report.packets, report.keys_transmitted
    );
    Ok(())
}
