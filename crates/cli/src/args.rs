//! A small `--key value` argument parser (no external dependencies).

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    options: BTreeMap<String, String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A `--flag` appeared without a value.
    MissingValue(String),
    /// A value could not be parsed as the expected type.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending value.
        value: String,
    },
    /// An unexpected positional argument.
    UnexpectedPositional(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "missing value for --{flag}"),
            ArgsError::BadValue { flag, value } => {
                write!(f, "invalid value {value:?} for --{flag}")
            }
            ArgsError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument {arg:?}")
            }
        }
    }
}

impl Error for ArgsError {}

impl Args {
    /// Parses `args` (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] on a flag without a value or a stray
    /// positional after the subcommand.
    pub fn parse<I, S>(args: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                let value = iter
                    .next()
                    .ok_or_else(|| ArgsError::MissingValue(flag.to_string()))?;
                out.options.insert(flag.to_string(), value);
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                return Err(ArgsError::UnexpectedPositional(arg));
            }
        }
        Ok(out)
    }

    /// Raw string option.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or(&self, flag: &str, default: &str) -> String {
        self.get(flag).unwrap_or(default).to_string()
    }

    /// Typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] if present but unparseable.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
    ) -> Result<T, ArgsError> {
        match self.get(flag) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let args = Args::parse(["simulate", "--n", "4096", "--scheme", "tt"]).unwrap();
        assert_eq!(args.command.as_deref(), Some("simulate"));
        assert_eq!(args.get("n"), Some("4096"));
        assert_eq!(args.get_or("scheme", "one"), "tt");
        assert_eq!(args.get_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn typed_defaults() {
        let args = Args::parse(["model", "--alpha", "0.9"]).unwrap();
        assert_eq!(args.get_parsed_or("alpha", 0.8f64).unwrap(), 0.9);
        assert_eq!(args.get_parsed_or("k", 10u32).unwrap(), 10);
    }

    #[test]
    fn missing_value_rejected() {
        assert_eq!(
            Args::parse(["x", "--n"]).unwrap_err(),
            ArgsError::MissingValue("n".into())
        );
    }

    #[test]
    fn bad_value_rejected() {
        let args = Args::parse(["x", "--n", "lots"]).unwrap();
        assert!(matches!(
            args.get_parsed_or("n", 1u64),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn stray_positional_rejected() {
        assert!(matches!(
            Args::parse(["a", "b"]),
            Err(ArgsError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn empty_is_ok() {
        let args = Args::parse(Vec::<String>::new()).unwrap();
        assert!(args.command.is_none());
    }
}
