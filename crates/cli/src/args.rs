//! A small `--key value` argument parser (no external dependencies).
//!
//! Three flag forms are accepted:
//!
//! - `--key value` — the following argument is the value;
//! - `--key=value` — inline value (the value may itself start with
//!   `--`, which the two-argument form would swallow as a flag);
//! - `--key` followed by another flag or the end of the line — a bare
//!   boolean switch, read back with [`Args::get_bool_or`].

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// First positional argument.
    pub command: Option<String>,
    options: BTreeMap<String, String>,
}

/// Argument-parsing errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// A flag that requires a value was given as a bare switch.
    MissingValue(String),
    /// A value could not be parsed as the expected type.
    BadValue {
        /// The flag name.
        flag: String,
        /// The offending value.
        value: String,
    },
    /// An unexpected positional argument.
    UnexpectedPositional(String),
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "missing value for --{flag}"),
            ArgsError::BadValue { flag, value } => {
                write!(f, "invalid value {value:?} for --{flag}")
            }
            ArgsError::UnexpectedPositional(arg) => {
                write!(f, "unexpected argument {arg:?}")
            }
        }
    }
}

impl Error for ArgsError {}

impl Args {
    /// Parses `args` (without the program name).
    ///
    /// A flag followed by another flag (or by nothing) is stored as a
    /// bare boolean switch; value-expecting accessors report
    /// [`ArgsError::MissingValue`] for it.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError`] on a stray positional after the
    /// subcommand.
    pub fn parse<I, S>(args: I) -> Result<Self, ArgsError>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut out = Args::default();
        let mut iter = args.into_iter().map(Into::into).peekable();
        while let Some(arg) = iter.next() {
            if let Some(flag) = arg.strip_prefix("--") {
                if let Some((name, value)) = flag.split_once('=') {
                    out.options.insert(name.to_string(), value.to_string());
                } else if iter.peek().is_some_and(|next| !next.starts_with("--")) {
                    let value = iter.next().expect("peeked above");
                    out.options.insert(flag.to_string(), value);
                } else {
                    // Bare switch: present without a value.
                    out.options.insert(flag.to_string(), String::new());
                }
            } else if out.command.is_none() {
                out.command = Some(arg);
            } else {
                return Err(ArgsError::UnexpectedPositional(arg));
            }
        }
        Ok(out)
    }

    /// Raw string option.
    pub fn get(&self, flag: &str) -> Option<&str> {
        self.options.get(flag).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or(&self, flag: &str, default: &str) -> String {
        self.get(flag).unwrap_or(default).to_string()
    }

    /// Typed option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] if the flag was given as a
    /// bare switch, or [`ArgsError::BadValue`] if present but
    /// unparseable.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
    ) -> Result<T, ArgsError> {
        match self.get(flag) {
            None => Ok(default),
            Some("") => Err(ArgsError::MissingValue(flag.to_string())),
            Some(raw) => raw.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
            }),
        }
    }

    /// Boolean option with a default. A bare `--flag` counts as
    /// `true`; an explicit value must parse as `true` or `false`.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] on an unparseable value.
    pub fn get_bool_or(&self, flag: &str, default: bool) -> Result<bool, ArgsError> {
        match self.get(flag) {
            None => Ok(default),
            Some("") => Ok(true),
            Some(raw) => raw.parse().map_err(|_| ArgsError::BadValue {
                flag: flag.to_string(),
                value: raw.to_string(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_and_flags() {
        let args = Args::parse(["simulate", "--n", "4096", "--scheme", "tt"]).unwrap();
        assert_eq!(args.command.as_deref(), Some("simulate"));
        assert_eq!(args.get("n"), Some("4096"));
        assert_eq!(args.get_or("scheme", "one"), "tt");
        assert_eq!(args.get_or("missing", "dflt"), "dflt");
    }

    #[test]
    fn typed_defaults() {
        let args = Args::parse(["model", "--alpha", "0.9"]).unwrap();
        assert_eq!(args.get_parsed_or("alpha", 0.8f64).unwrap(), 0.9);
        assert_eq!(args.get_parsed_or("k", 10u32).unwrap(), 10);
    }

    #[test]
    fn missing_value_rejected() {
        // A bare `--n` parses as a switch, but reading it as a value
        // still reports the missing value.
        let args = Args::parse(["x", "--n"]).unwrap();
        assert_eq!(
            args.get_parsed_or("n", 1u64).unwrap_err(),
            ArgsError::MissingValue("n".into())
        );
    }

    #[test]
    fn equals_form_parses() {
        let args = Args::parse(["simulate", "--n=4096", "--scheme=tt"]).unwrap();
        assert_eq!(args.get("n"), Some("4096"));
        assert_eq!(args.get("scheme"), Some("tt"));
        assert_eq!(args.get_parsed_or("n", 1u64).unwrap(), 4096);
    }

    #[test]
    fn equals_form_value_may_contain_equals_or_dashes() {
        let args = Args::parse(["x", "--out=a=b", "--note=--literal"]).unwrap();
        assert_eq!(args.get("out"), Some("a=b"));
        assert_eq!(args.get("note"), Some("--literal"));
    }

    #[test]
    fn bare_switch_is_true() {
        let args = Args::parse(["simulate", "--verify", "--n", "64"]).unwrap();
        assert!(args.get_bool_or("verify", false).unwrap());
        assert_eq!(args.get_parsed_or("n", 1u64).unwrap(), 64);
        // Trailing bare switch too.
        let args = Args::parse(["simulate", "--verify"]).unwrap();
        assert!(args.get_bool_or("verify", false).unwrap());
    }

    #[test]
    fn explicit_bool_values() {
        let args = Args::parse(["x", "--verify", "false"]).unwrap();
        assert!(!args.get_bool_or("verify", true).unwrap());
        let args = Args::parse(["x", "--verify=true"]).unwrap();
        assert!(args.get_bool_or("verify", false).unwrap());
        let args = Args::parse(["x", "--verify", "maybe"]).unwrap();
        assert!(matches!(
            args.get_bool_or("verify", false),
            Err(ArgsError::BadValue { .. })
        ));
        assert!(args.get_bool_or("absent", true).unwrap());
    }

    #[test]
    fn bare_switch_reads_back_empty() {
        let args = Args::parse(["x", "--trace", "--metrics", "m.txt"]).unwrap();
        assert_eq!(args.get("trace"), Some(""));
        assert_eq!(args.get("metrics"), Some("m.txt"));
        assert_eq!(args.get("absent"), None);
    }

    #[test]
    fn bad_value_rejected() {
        let args = Args::parse(["x", "--n", "lots"]).unwrap();
        assert!(matches!(
            args.get_parsed_or("n", 1u64),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn stray_positional_rejected() {
        assert!(matches!(
            Args::parse(["a", "b"]),
            Err(ArgsError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn empty_is_ok() {
        let args = Args::parse(Vec::<String>::new()).unwrap();
        assert!(args.command.is_none());
    }
}
