//! The linear-queue partition used by the paper's QT-scheme (§3.2).
//!
//! In the QT-scheme the S-partition is not a tree: each short-term
//! member holds only its individual key and the group key. A join
//! therefore costs a single group-key update, while a departure costs
//! one encryption per remaining queue member (the new group key is
//! wrapped individually for each of them).
//!
//! [`KeyQueue`] tracks the members, their individual keys, their queue
//! node ids (used as `under` in rekey entries addressed to them), and
//! their join epochs so the manager can migrate members older than the
//! S-period to the L-partition.

use crate::message::codec::{get_u32, get_u64, get_u8, put_u32, put_u64};
use crate::{KeyTreeError, MemberId, NodeId};
use rekey_crypto::Key;
use std::collections::{HashMap, VecDeque};

/// Version byte leading a serialized [`KeyQueue`].
pub const QUEUE_WIRE_VERSION: u8 = 1;

/// One member's slot in the queue.
#[derive(Debug, Clone)]
pub struct QueueSlot {
    /// The member occupying this slot.
    pub member: MemberId,
    /// Pseudo-node id identifying the member's individual key in rekey
    /// entries.
    pub node: NodeId,
    /// The member's individual key.
    pub individual_key: Key,
    /// Rekey epoch at which the member joined the queue.
    pub joined_epoch: u64,
}

/// A FIFO of short-term members keyed only by their individual keys.
#[derive(Debug, Clone)]
pub struct KeyQueue {
    namespace: u32,
    next_counter: u64,
    by_member: HashMap<MemberId, QueueSlot>,
    arrival_order: VecDeque<MemberId>,
}

impl KeyQueue {
    /// Creates an empty queue drawing node ids from `namespace`.
    pub fn new(namespace: u32) -> Self {
        KeyQueue {
            namespace,
            next_counter: 0,
            by_member: HashMap::new(),
            arrival_order: VecDeque::new(),
        }
    }

    /// The namespace this queue draws its slot node ids from.
    pub fn namespace(&self) -> u32 {
        self.namespace
    }

    /// Number of members currently queued (the paper's `Ns` for the
    /// QT-scheme).
    pub fn len(&self) -> usize {
        self.by_member.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.by_member.is_empty()
    }

    /// Whether `member` is in the queue.
    pub fn contains(&self, member: MemberId) -> bool {
        self.by_member.contains_key(&member)
    }

    /// The slot of `member`, if queued.
    pub fn slot(&self, member: MemberId) -> Option<&QueueSlot> {
        self.by_member.get(&member)
    }

    /// Enqueues a member.
    ///
    /// # Errors
    ///
    /// Returns [`KeyTreeError::DuplicateMember`] if already queued.
    pub fn push(
        &mut self,
        member: MemberId,
        individual_key: Key,
        epoch: u64,
    ) -> Result<NodeId, KeyTreeError> {
        if self.contains(member) {
            return Err(KeyTreeError::DuplicateMember(member));
        }
        let node = NodeId::from_parts(self.namespace, self.next_counter);
        self.next_counter += 1;
        self.by_member.insert(
            member,
            QueueSlot {
                member,
                node,
                individual_key,
                joined_epoch: epoch,
            },
        );
        self.arrival_order.push_back(member);
        Ok(node)
    }

    /// Removes a member (departure before the S-period elapsed).
    ///
    /// # Errors
    ///
    /// Returns [`KeyTreeError::UnknownMember`] if not queued.
    pub fn remove(&mut self, member: MemberId) -> Result<QueueSlot, KeyTreeError> {
        let slot = self
            .by_member
            .remove(&member)
            .ok_or(KeyTreeError::UnknownMember(member))?;
        // Arrival order is cleaned lazily in `pop_older_than`.
        Ok(slot)
    }

    /// Removes and returns every member that joined at or before
    /// `epoch` (i.e. whose age exceeds the S-period) in arrival order —
    /// the migration batch for the L-partition.
    pub fn pop_older_than(&mut self, epoch: u64) -> Vec<QueueSlot> {
        let mut migrated = Vec::new();
        while let Some(&front) = self.arrival_order.front() {
            match self.by_member.get(&front) {
                None => {
                    // Stale entry for a member removed earlier.
                    self.arrival_order.pop_front();
                }
                Some(slot) if slot.joined_epoch <= epoch => {
                    let slot = self.by_member.remove(&front).expect("checked present");
                    self.arrival_order.pop_front();
                    migrated.push(slot);
                }
                Some(_) => break, // FIFO: the rest are younger
            }
        }
        migrated
    }

    /// Iterates over all queued members' slots in arrival order.
    ///
    /// The order is deterministic: rekey entries addressed to queue
    /// members (one per slot on a departure rekey) appear in the same
    /// order on every run with the same membership script, which is
    /// what lets seeded simulations pin byte-exact message digests.
    pub fn iter(&self) -> impl Iterator<Item = &QueueSlot> {
        self.arrival_order
            .iter()
            .filter_map(|m| self.by_member.get(m))
    }

    /// All queued member ids, in arrival order.
    pub fn members(&self) -> Vec<MemberId> {
        self.iter().map(|slot| slot.member).collect()
    }

    /// Serializes the queue onto `buf`: namespace, id counter, and the
    /// live slots in arrival order (the order [`KeyQueue::iter`]
    /// yields, which is the order rekey entries are addressed in).
    /// Stale arrival-order entries are compacted away, which never
    /// changes observable behaviour.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(QUEUE_WIRE_VERSION);
        put_u32(buf, self.namespace);
        put_u64(buf, self.next_counter);
        put_u32(buf, self.len() as u32);
        for slot in self.iter() {
            put_u64(buf, slot.member.0);
            put_u64(buf, slot.node.0);
            buf.extend_from_slice(slot.individual_key.as_bytes());
            put_u64(buf, slot.joined_epoch);
        }
    }

    /// Decodes a queue serialized by [`KeyQueue::encode_into`],
    /// advancing `buf` past it. Returns `None` on truncation, an
    /// unknown version, or a duplicate member.
    pub fn decode(buf: &mut &[u8]) -> Option<KeyQueue> {
        if get_u8(buf)? != QUEUE_WIRE_VERSION {
            return None;
        }
        let namespace = get_u32(buf)?;
        let next_counter = get_u64(buf)?;
        let len = get_u32(buf)? as usize;
        let mut queue = KeyQueue {
            namespace,
            next_counter,
            by_member: HashMap::with_capacity(len),
            arrival_order: VecDeque::with_capacity(len),
        };
        for _ in 0..len {
            let member = MemberId(get_u64(buf)?);
            let node = NodeId(get_u64(buf)?);
            let (key_bytes, rest) = buf.split_first_chunk::<32>()?;
            *buf = rest;
            let joined_epoch = get_u64(buf)?;
            let slot = QueueSlot {
                member,
                node,
                individual_key: Key::from_bytes(*key_bytes),
                joined_epoch,
            };
            if queue.by_member.insert(member, slot).is_some() {
                return None;
            }
            queue.arrival_order.push_back(member);
        }
        Some(queue)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn key(rng: &mut StdRng) -> Key {
        Key::generate(rng)
    }

    #[test]
    fn push_and_len() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut q = KeyQueue::new(5);
        let n0 = q.push(MemberId(0), key(&mut rng), 1).unwrap();
        let n1 = q.push(MemberId(1), key(&mut rng), 2).unwrap();
        assert_eq!(q.len(), 2);
        assert_ne!(n0, n1);
        assert_eq!(n0.namespace(), 5);
    }

    #[test]
    fn duplicate_push_rejected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut q = KeyQueue::new(0);
        q.push(MemberId(0), key(&mut rng), 1).unwrap();
        assert_eq!(
            q.push(MemberId(0), key(&mut rng), 2).unwrap_err(),
            KeyTreeError::DuplicateMember(MemberId(0))
        );
    }

    #[test]
    fn remove_unknown_rejected() {
        let mut q = KeyQueue::new(0);
        assert_eq!(
            q.remove(MemberId(9)).unwrap_err(),
            KeyTreeError::UnknownMember(MemberId(9))
        );
    }

    #[test]
    fn pop_older_than_respects_epochs_and_order() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut q = KeyQueue::new(0);
        for (m, e) in [(0u64, 1u64), (1, 2), (2, 5), (3, 9)] {
            q.push(MemberId(m), key(&mut rng), e).unwrap();
        }
        let migrated = q.pop_older_than(5);
        let ids: Vec<_> = migrated.iter().map(|s| s.member).collect();
        assert_eq!(ids, vec![MemberId(0), MemberId(1), MemberId(2)]);
        assert_eq!(q.len(), 1);
        assert!(q.contains(MemberId(3)));
    }

    #[test]
    fn pop_older_than_skips_removed_members() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut q = KeyQueue::new(0);
        for m in 0..4u64 {
            q.push(MemberId(m), key(&mut rng), 1).unwrap();
        }
        q.remove(MemberId(0)).unwrap();
        q.remove(MemberId(2)).unwrap();
        let migrated = q.pop_older_than(1);
        let ids: Vec<_> = migrated.iter().map(|s| s.member).collect();
        assert_eq!(ids, vec![MemberId(1), MemberId(3)]);
        assert!(q.is_empty());
    }

    #[test]
    fn iter_and_members_follow_arrival_order() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut q = KeyQueue::new(0);
        for m in [5u64, 1, 9, 3] {
            q.push(MemberId(m), key(&mut rng), 1).unwrap();
        }
        q.remove(MemberId(9)).unwrap();
        let ids: Vec<_> = q.iter().map(|s| s.member).collect();
        assert_eq!(ids, vec![MemberId(5), MemberId(1), MemberId(3)]);
        assert_eq!(q.members(), ids);
    }

    #[test]
    fn slots_keep_individual_keys() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut q = KeyQueue::new(0);
        let k = key(&mut rng);
        q.push(MemberId(0), k.clone(), 1).unwrap();
        assert_eq!(q.slot(MemberId(0)).unwrap().individual_key, k);
    }
}
