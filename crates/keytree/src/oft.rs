//! One-way function trees (OFT) \[BM00\] — full wire protocol.
//!
//! OFT is the other major logical-key-hierarchy family the paper's
//! optimizations apply to (§2.1.1). In an OFT the key of an interior
//! node is not chosen by the server but *computed* from its children:
//!
//! ```text
//! k(parent) = mix(blind(k(left)), blind(k(right)))
//! ```
//!
//! where `blind` is a one-way function (HKDF with label `oft-blind`)
//! and `mix` combines two blinded keys (HKDF over their
//! concatenation). A member holds its own leaf key plus the blinded
//! keys of the *siblings* of every node on its path, from which it
//! recomputes every path key including the root. An eviction costs
//! about `h + 1` encrypted items instead of LKH's `d·h`.
//!
//! This module implements both sides of the protocol:
//!
//! - [`OftServer`] — tree maintenance; [`OftServer::join`] /
//!   [`OftServer::leave`] emit an [`OftBroadcast`] of operations:
//!   public structural deltas ([`OftOp::Split`], [`OftOp::Promote`])
//!   plus encrypted payloads ([`OftOp::Blind`], [`OftOp::LeafRefresh`],
//!   [`OftOp::Welcome`]) wrapped with [`rekey_crypto::keywrap`];
//! - [`OftMember`] — processes broadcasts, maintaining its path
//!   levels (ancestor id, sibling id, side, sibling blind) and
//!   recomputing the group key after every change.
//!
//! As in LKH, tree *structure* (node ids, sides) is public; only key
//! material is encrypted.

use crate::{KeyTreeError, MemberId, NodeId};
use rand::RngCore;
use rekey_crypto::keywrap::{self, WrappedKey};
use rekey_crypto::{hkdf, Key};
use std::collections::HashMap;

/// Which side of its parent a node hangs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The left child slot.
    Left,
    /// The right child slot.
    Right,
}

impl Side {
    /// The opposite side.
    pub fn other(self) -> Side {
        match self {
            Side::Left => Side::Right,
            Side::Right => Side::Left,
        }
    }
}

/// Computes the one-way blind of a node key.
pub fn blind(key: &Key) -> Key {
    key.derive(b"oft-blind")
}

/// Mixes two blinded child keys into the parent key.
pub fn mix(left_blind: &Key, right_blind: &Key) -> Key {
    let mut ikm = Vec::with_capacity(64);
    ikm.extend_from_slice(left_blind.as_bytes());
    ikm.extend_from_slice(right_blind.as_bytes());
    let mut out = [0u8; 32];
    hkdf::derive(b"oft-mix", &ikm, b"parent-key", &mut out);
    Key::from_bytes(out)
}

/// One level of a member's path-state, bottom-up.
#[derive(Debug, Clone)]
pub struct PathLevel {
    /// The member's ancestor at this level (parent of the node below).
    pub ancestor: NodeId,
    /// The sibling whose blind the member holds.
    pub sibling: NodeId,
    /// Which side the *sibling* is on.
    pub sibling_side: Side,
    /// The sibling's blinded key.
    pub sibling_blind: Key,
}

/// One level of a welcome packet: sibling metadata in the clear, the
/// blind encrypted under the joining member's individual key.
#[derive(Debug, Clone)]
pub struct WelcomeLevel {
    /// The new member's ancestor at this level.
    pub ancestor: NodeId,
    /// Sibling node id.
    pub sibling: NodeId,
    /// Side the sibling is on.
    pub sibling_side: Side,
    /// `blind(k(sibling))` wrapped under the member's individual key.
    pub wrapped_blind: WrappedKey,
}

/// One operation of an OFT broadcast, applied in order.
#[derive(Debug, Clone)]
pub enum OftOp {
    /// Leaf `split_leaf` was replaced by interior `new_interior` whose
    /// children are `[split_leaf, new_leaf]` (public structure).
    Split {
        /// The leaf that was split.
        split_leaf: NodeId,
        /// The interior node created in its place.
        new_interior: NodeId,
        /// The joining member's leaf (right child).
        new_leaf: NodeId,
    },
    /// Interior `removed_parent` was deleted and its child `promoted`
    /// took its place (public structure).
    Promote {
        /// The deleted interior node.
        removed_parent: NodeId,
        /// The child that moved up.
        promoted: NodeId,
    },
    /// The (new) blinded key of `node`, encrypted under the node key
    /// of `under` — needed by every member of `under`'s subtree.
    Blind {
        /// Whose blind is transported.
        node: NodeId,
        /// Whose key encrypts it.
        under: NodeId,
        /// The encrypted blind.
        wrapped: WrappedKey,
    },
    /// A fresh leaf key for the member owning `leaf`, encrypted under
    /// that leaf's previous key.
    LeafRefresh {
        /// The refreshed leaf.
        leaf: NodeId,
        /// The new leaf key under the old one.
        wrapped: WrappedKey,
    },
    /// The joining member's bootstrap: its leaf id and key plus its
    /// initial path, all key material under its individual key.
    Welcome {
        /// The joining member.
        member: MemberId,
        /// Its new leaf.
        leaf: NodeId,
        /// Its server-chosen leaf key, under its individual key.
        wrapped_leaf_key: WrappedKey,
        /// Its path levels, blinds under its individual key.
        levels: Vec<WelcomeLevel>,
    },
}

/// The multicast message of one OFT membership operation.
#[derive(Debug, Clone, Default)]
pub struct OftBroadcast {
    /// Rekey epoch.
    pub epoch: u64,
    /// Operations, to be applied in order.
    pub ops: Vec<OftOp>,
}

impl OftBroadcast {
    /// Number of encrypted items (blinds, leaf keys) — directly
    /// comparable to LKH's encrypted-key count.
    pub fn encrypted_key_count(&self) -> usize {
        self.ops
            .iter()
            .map(|op| match op {
                OftOp::Blind { .. } | OftOp::LeafRefresh { .. } => 1,
                OftOp::Welcome { levels, .. } => 1 + levels.len(),
                OftOp::Split { .. } | OftOp::Promote { .. } => 0,
            })
            .sum()
    }
}

// ---------------------------------------------------------------------
// Member side
// ---------------------------------------------------------------------

/// Receiver-side OFT state: the leaf key and one [`PathLevel`] per
/// tree level, bottom-up.
#[derive(Debug, Clone)]
pub struct OftMember {
    id: MemberId,
    individual: Key,
    /// `None` until the member's welcome arrives.
    leaf: Option<NodeId>,
    leaf_key: Option<Key>,
    levels: Vec<PathLevel>,
}

impl OftMember {
    /// A member that has registered `individual_key` with the server
    /// but not yet joined.
    pub fn new(id: MemberId, individual_key: Key) -> Self {
        OftMember {
            id,
            individual: individual_key,
            leaf: None,
            leaf_key: None,
            levels: Vec::new(),
        }
    }

    /// This member's id.
    pub fn id(&self) -> MemberId {
        self.id
    }

    /// The member's leaf node, once joined.
    pub fn leaf(&self) -> Option<NodeId> {
        self.leaf
    }

    /// Recomputes the group key from the leaf key and sibling blinds;
    /// `None` before the welcome arrived.
    pub fn group_key(&self) -> Option<Key> {
        let mut key = self.leaf_key.clone()?;
        for level in &self.levels {
            let own = blind(&key);
            key = match level.sibling_side {
                Side::Left => mix(&level.sibling_blind, &own),
                Side::Right => mix(&own, &level.sibling_blind),
            };
        }
        Some(key)
    }

    /// The node key of the member's ancestor at `level` (level 0 =
    /// parent of the leaf).
    fn key_at(&self, level: usize) -> Option<Key> {
        let mut key = self.leaf_key.clone()?;
        for l in self.levels.iter().take(level + 1) {
            let own = blind(&key);
            key = match l.sibling_side {
                Side::Left => mix(&l.sibling_blind, &own),
                Side::Right => mix(&own, &l.sibling_blind),
            };
        }
        Some(key)
    }

    /// Processes one broadcast, returning the number of encrypted
    /// items this member decrypted.
    ///
    /// # Errors
    ///
    /// [`KeyTreeError::Crypto`] if an item addressed to this member
    /// fails authentication (corruption / forgery).
    pub fn process(&mut self, broadcast: &OftBroadcast) -> Result<usize, KeyTreeError> {
        let mut decrypted = 0;
        for op in &broadcast.ops {
            match op {
                OftOp::Split {
                    split_leaf,
                    new_interior,
                    new_leaf,
                } => {
                    if Some(*split_leaf) == self.leaf {
                        // Our leaf was split: gain a bottom level whose
                        // sibling is the new (right) leaf. The blind
                        // arrives in a following Blind op.
                        self.levels.insert(
                            0,
                            PathLevel {
                                ancestor: *new_interior,
                                sibling: *new_leaf,
                                sibling_side: Side::Right,
                                sibling_blind: Key::from_bytes([0; 32]),
                            },
                        );
                    } else {
                        // If the split leaf was our sibling at some
                        // level, the interior node takes its place.
                        for level in &mut self.levels {
                            if level.sibling == *split_leaf {
                                level.sibling = *new_interior;
                            }
                        }
                    }
                }
                OftOp::Promote {
                    removed_parent,
                    promoted,
                } => {
                    // Inside the promoted subtree: drop the level whose
                    // ancestor vanished.
                    if let Some(pos) = self
                        .levels
                        .iter()
                        .position(|l| l.ancestor == *removed_parent)
                    {
                        self.levels.remove(pos);
                    }
                    // Outside: the removed interior may have been our
                    // sibling; the promoted child replaces it.
                    for level in &mut self.levels {
                        if level.sibling == *removed_parent {
                            level.sibling = *promoted;
                        }
                    }
                }
                OftOp::Blind {
                    node,
                    under,
                    wrapped,
                } => {
                    let Some(leaf) = self.leaf else { continue };
                    // Which of our keys encrypts this? Our leaf, or an
                    // ancestor (in which case the blind belongs to the
                    // level above it).
                    let (level_idx, key) = if *under == leaf {
                        (0, self.leaf_key.clone())
                    } else {
                        match self.levels.iter().position(|l| l.ancestor == *under) {
                            Some(j) => (j + 1, self.key_at(j)),
                            None => continue, // not for us
                        }
                    };
                    let Some(key) = key else { continue };
                    if level_idx >= self.levels.len() || self.levels[level_idx].sibling != *node {
                        continue; // stale or mis-addressed
                    }
                    let new_blind = keywrap::unwrap(&key, wrapped)?;
                    self.levels[level_idx].sibling_blind = new_blind;
                    decrypted += 1;
                }
                OftOp::LeafRefresh { leaf, wrapped } => {
                    if Some(*leaf) == self.leaf {
                        let old = self.leaf_key.as_ref().expect("joined member has a key");
                        self.leaf_key = Some(keywrap::unwrap(old, wrapped)?);
                        decrypted += 1;
                    }
                }
                OftOp::Welcome {
                    member,
                    leaf,
                    wrapped_leaf_key,
                    levels,
                } => {
                    if *member != self.id {
                        continue;
                    }
                    self.leaf = Some(*leaf);
                    self.leaf_key = Some(keywrap::unwrap(&self.individual, wrapped_leaf_key)?);
                    decrypted += 1;
                    self.levels = levels
                        .iter()
                        .map(|w| {
                            let blind = keywrap::unwrap(&self.individual, &w.wrapped_blind)?;
                            decrypted += 1;
                            Ok(PathLevel {
                                ancestor: w.ancestor,
                                sibling: w.sibling,
                                sibling_side: w.sibling_side,
                                sibling_blind: blind,
                            })
                        })
                        .collect::<Result<_, KeyTreeError>>()?;
                }
            }
        }
        Ok(decrypted)
    }
}

// ---------------------------------------------------------------------
// Server side
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct OftNode {
    id: NodeId,
    parent: Option<usize>,
    /// `[left, right]` for interior nodes, empty for leaves.
    children: Vec<usize>,
    member: Option<MemberId>,
    key: Key,
    leaf_count: usize,
}

/// Server side of a one-way function tree.
#[derive(Debug, Clone)]
pub struct OftServer {
    slots: Vec<Option<OftNode>>,
    free: Vec<usize>,
    index_of: HashMap<NodeId, usize>,
    leaf_of: HashMap<MemberId, NodeId>,
    /// Arena index of the root, `None` while the group is empty.
    root: Option<usize>,
    namespace: u32,
    next_counter: u64,
    epoch: u64,
}

impl OftServer {
    /// Creates an empty OFT drawing node ids from `namespace`.
    pub fn new(namespace: u32) -> Self {
        OftServer {
            slots: Vec::new(),
            free: Vec::new(),
            index_of: HashMap::new(),
            leaf_of: HashMap::new(),
            root: None,
            namespace,
            next_counter: 0,
            epoch: 0,
        }
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = NodeId::from_parts(self.namespace, self.next_counter);
        self.next_counter += 1;
        id
    }

    fn alloc(&mut self, node: OftNode) -> usize {
        let id = node.id;
        let idx = if let Some(idx) = self.free.pop() {
            self.slots[idx] = Some(node);
            idx
        } else {
            self.slots.push(Some(node));
            self.slots.len() - 1
        };
        self.index_of.insert(id, idx);
        idx
    }

    fn dealloc(&mut self, idx: usize) {
        if let Some(node) = self.slots[idx].take() {
            self.index_of.remove(&node.id);
            self.free.push(idx);
        }
    }

    fn node(&self, idx: usize) -> &OftNode {
        self.slots[idx].as_ref().expect("dangling OFT node index")
    }

    fn node_mut(&mut self, idx: usize) -> &mut OftNode {
        self.slots[idx].as_mut().expect("dangling OFT node index")
    }

    /// Number of members.
    pub fn member_count(&self) -> usize {
        self.leaf_of.len()
    }

    /// Whether `member` is present.
    pub fn contains(&self, member: MemberId) -> bool {
        self.leaf_of.contains_key(&member)
    }

    /// The current group key, or `None` while the group is empty.
    pub fn root_key(&self) -> Option<&Key> {
        self.root.map(|idx| &self.node(idx).key)
    }

    /// Height of the tree (edges on the longest root-leaf path).
    pub fn height(&self) -> usize {
        fn depth(server: &OftServer, idx: usize) -> usize {
            server
                .node(idx)
                .children
                .iter()
                .map(|&c| 1 + depth(server, c))
                .max()
                .unwrap_or(0)
        }
        self.root.map(|r| depth(self, r)).unwrap_or(0)
    }

    /// Recomputes interior keys from `start_idx` up to the root after
    /// a blind below changed.
    fn recompute_up(&mut self, start_idx: Option<usize>) {
        let mut walk = start_idx;
        while let Some(idx) = walk {
            let n = self.node(idx);
            if n.children.len() == 2 {
                let left = blind(&self.node(n.children[0]).key);
                let right = blind(&self.node(n.children[1]).key);
                self.node_mut(idx).key = mix(&left, &right);
            }
            walk = self.node(idx).parent;
        }
    }

    /// Walks from `from_idx` to the root, emitting each changed blind
    /// to the sibling's subtree encrypted under the sibling's key.
    fn blind_updates_up<R: RngCore>(&self, from_idx: usize, rng: &mut R, ops: &mut Vec<OftOp>) {
        let mut idx = from_idx;
        while let Some(parent) = self.node(idx).parent {
            let p = self.node(parent);
            let sibling_idx = if p.children[0] == idx {
                p.children[1]
            } else {
                p.children[0]
            };
            let sibling = self.node(sibling_idx);
            ops.push(OftOp::Blind {
                node: self.node(idx).id,
                under: sibling.id,
                wrapped: keywrap::wrap(&sibling.key, &blind(&self.node(idx).key), rng),
            });
            idx = parent;
        }
    }

    /// The path levels of `member` as the server sees them (used for
    /// welcomes and for tests).
    fn path_levels(&self, leaf_idx: usize) -> Vec<(NodeId, NodeId, Side, Key)> {
        let mut out = Vec::new();
        let mut idx = leaf_idx;
        while let Some(parent) = self.node(idx).parent {
            let p = self.node(parent);
            let (sibling_idx, side) = if p.children[0] == idx {
                (p.children[1], Side::Right)
            } else {
                (p.children[0], Side::Left)
            };
            let sib = self.node(sibling_idx);
            out.push((p.id, sib.id, side, blind(&sib.key)));
            idx = parent;
        }
        out
    }

    /// Admits a member: the member must have registered
    /// `individual_key`; the server picks a fresh leaf key and welcomes
    /// the member with its path.
    ///
    /// # Errors
    ///
    /// [`KeyTreeError::DuplicateMember`] if already present.
    pub fn join<R: RngCore>(
        &mut self,
        member: MemberId,
        individual_key: &Key,
        rng: &mut R,
    ) -> Result<OftBroadcast, KeyTreeError> {
        if self.contains(member) {
            return Err(KeyTreeError::DuplicateMember(member));
        }
        self.epoch += 1;
        let leaf_id = self.fresh_id();
        let leaf_key = Key::generate(rng);
        let mut ops = Vec::new();

        let leaf_idx = match self.root {
            None => {
                let idx = self.alloc(OftNode {
                    id: leaf_id,
                    parent: None,
                    children: Vec::new(),
                    member: Some(member),
                    key: leaf_key.clone(),
                    leaf_count: 1,
                });
                self.root = Some(idx);
                idx
            }
            Some(root) => {
                // Descend into the lighter subtree until a leaf, then
                // split it.
                let mut at = root;
                while self.node(at).children.len() == 2 {
                    let n = self.node(at);
                    let (l, r) = (n.children[0], n.children[1]);
                    at = if self.node(l).leaf_count <= self.node(r).leaf_count {
                        l
                    } else {
                        r
                    };
                }
                let interior_id = self.fresh_id();
                let old_parent = self.node(at).parent;
                let interior_idx = self.alloc(OftNode {
                    id: interior_id,
                    parent: old_parent,
                    children: vec![at],
                    member: None,
                    key: Key::from_bytes([0; 32]), // recomputed below
                    leaf_count: self.node(at).leaf_count,
                });
                match old_parent {
                    Some(p) => {
                        let pos = self
                            .node(p)
                            .children
                            .iter()
                            .position(|&c| c == at)
                            .expect("child listed under parent");
                        self.node_mut(p).children[pos] = interior_idx;
                    }
                    None => self.root = Some(interior_idx),
                }
                self.node_mut(at).parent = Some(interior_idx);
                let leaf_idx = self.alloc(OftNode {
                    id: leaf_id,
                    parent: Some(interior_idx),
                    children: Vec::new(),
                    member: Some(member),
                    key: leaf_key.clone(),
                    leaf_count: 1,
                });
                self.node_mut(interior_idx).children.push(leaf_idx);
                let mut walk = Some(interior_idx);
                while let Some(idx) = walk {
                    self.node_mut(idx).leaf_count += 1;
                    walk = self.node(idx).parent;
                }
                ops.push(OftOp::Split {
                    split_leaf: self.node(at).id,
                    new_interior: interior_id,
                    new_leaf: leaf_id,
                });
                leaf_idx
            }
        };
        self.leaf_of.insert(member, leaf_id);
        self.recompute_up(self.node(leaf_idx).parent);

        // Changed blinds propagate to the other half at each level.
        self.blind_updates_up(leaf_idx, rng, &mut ops);

        // Welcome packet for the new member.
        let levels = self
            .path_levels(leaf_idx)
            .into_iter()
            .map(|(ancestor, sibling, side, blind)| WelcomeLevel {
                ancestor,
                sibling,
                sibling_side: side,
                wrapped_blind: keywrap::wrap(individual_key, &blind, rng),
            })
            .collect();
        ops.push(OftOp::Welcome {
            member,
            leaf: leaf_id,
            wrapped_leaf_key: keywrap::wrap(individual_key, &leaf_key, rng),
            levels,
        });

        Ok(OftBroadcast {
            epoch: self.epoch,
            ops,
        })
    }

    /// Evicts a member.
    ///
    /// The evicted leaf's sibling subtree is promoted; one leaf inside
    /// it is given a fresh key (communicated under that leaf's *old*
    /// key, which the evicted member never knew), and the changed
    /// blinds propagate to the root.
    ///
    /// # Errors
    ///
    /// [`KeyTreeError::UnknownMember`] if absent.
    pub fn leave<R: RngCore>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<OftBroadcast, KeyTreeError> {
        let leaf_id = self
            .leaf_of
            .remove(&member)
            .ok_or(KeyTreeError::UnknownMember(member))?;
        self.epoch += 1;
        let leaf_idx = self.index_of[&leaf_id];
        debug_assert_eq!(
            self.node(leaf_idx).member,
            Some(member),
            "leaf map out of sync"
        );

        let Some(parent_idx) = self.node(leaf_idx).parent else {
            // Last member: the tree becomes empty.
            self.dealloc(leaf_idx);
            self.root = None;
            return Ok(OftBroadcast {
                epoch: self.epoch,
                ops: Vec::new(),
            });
        };

        // Promote the sibling into the parent's place.
        let p = self.node(parent_idx);
        let removed_parent_id = p.id;
        let sibling_idx = if p.children[0] == leaf_idx {
            p.children[1]
        } else {
            p.children[0]
        };
        let promoted_id = self.node(sibling_idx).id;
        let grand = p.parent;
        self.node_mut(sibling_idx).parent = grand;
        match grand {
            Some(g) => {
                let pos = self
                    .node(g)
                    .children
                    .iter()
                    .position(|&c| c == parent_idx)
                    .expect("parent listed under grandparent");
                self.node_mut(g).children[pos] = sibling_idx;
            }
            None => self.root = Some(sibling_idx),
        }
        self.dealloc(leaf_idx);
        self.dealloc(parent_idx);
        let mut walk = grand;
        while let Some(idx) = walk {
            self.node_mut(idx).leaf_count -= 1;
            walk = self.node(idx).parent;
        }

        let mut ops = vec![OftOp::Promote {
            removed_parent: removed_parent_id,
            promoted: promoted_id,
        }];

        // Refresh one leaf inside the promoted subtree so every key the
        // evicted member could compute goes stale.
        let mut refresh_idx = sibling_idx;
        while self.node(refresh_idx).children.len() == 2 {
            refresh_idx = self.node(refresh_idx).children[0];
        }
        let old_leaf_key = self.node(refresh_idx).key.clone();
        let new_leaf_key = Key::generate(rng);
        ops.push(OftOp::LeafRefresh {
            leaf: self.node(refresh_idx).id,
            wrapped: keywrap::wrap(&old_leaf_key, &new_leaf_key, rng),
        });
        self.node_mut(refresh_idx).key = new_leaf_key;
        self.recompute_up(self.node(refresh_idx).parent);

        // Changed blinds propagate up.
        self.blind_updates_up(refresh_idx, rng, &mut ops);
        Ok(OftBroadcast {
            epoch: self.epoch,
            ops,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::collections::BTreeMap;

    struct Group {
        server: OftServer,
        members: BTreeMap<MemberId, OftMember>,
        rng: StdRng,
    }

    impl Group {
        fn new(n: u64, seed: u64) -> Self {
            let mut g = Group {
                server: OftServer::new(9),
                members: BTreeMap::new(),
                rng: StdRng::seed_from_u64(seed),
            };
            for i in 0..n {
                g.join(MemberId(i));
            }
            g
        }

        fn join(&mut self, id: MemberId) {
            let ik = Key::generate(&mut self.rng);
            let broadcast = self.server.join(id, &ik, &mut self.rng).unwrap();
            self.members.insert(id, OftMember::new(id, ik));
            for m in self.members.values_mut() {
                m.process(&broadcast).unwrap();
            }
        }

        fn leave(&mut self, id: MemberId) -> (OftMember, OftBroadcast) {
            let evicted = self.members.remove(&id).expect("member present");
            let broadcast = self.server.leave(id, &mut self.rng).unwrap();
            for m in self.members.values_mut() {
                m.process(&broadcast).unwrap();
            }
            (evicted, broadcast)
        }

        fn assert_synchronized(&self) {
            let root = self.server.root_key().unwrap();
            for (id, m) in &self.members {
                assert_eq!(
                    m.group_key().as_ref(),
                    Some(root),
                    "member {id} out of sync"
                );
            }
        }
    }

    #[test]
    fn members_follow_joins() {
        let g = Group::new(13, 1);
        g.assert_synchronized();
    }

    #[test]
    fn members_follow_leaves() {
        let mut g = Group::new(16, 2);
        for id in [3u64, 7, 0, 12] {
            g.leave(MemberId(id));
            g.assert_synchronized();
        }
        assert_eq!(g.server.member_count(), 12);
    }

    #[test]
    fn evicted_member_locked_out_even_processing_later_broadcasts() {
        let mut g = Group::new(16, 3);
        let (mut evicted, broadcast) = g.leave(MemberId(5));
        // The evicted member sees the eviction broadcast and every
        // later broadcast, and still cannot compute the group key.
        let _ = evicted.process(&broadcast);
        assert_ne!(
            evicted.group_key().as_ref(),
            Some(g.server.root_key().unwrap()),
            "forward secrecy violated at eviction"
        );
        for round in 0..4u64 {
            g.join(MemberId(100 + round));
            let (_, b) = g.leave(MemberId(round));
            let _ = evicted.process(&b);
            assert_ne!(
                evicted.group_key().as_ref(),
                Some(g.server.root_key().unwrap()),
                "forward secrecy violated at round {round}"
            );
            g.assert_synchronized();
        }
    }

    #[test]
    fn newcomer_cannot_compute_old_root() {
        let mut g = Group::new(8, 4);
        let old_root = g.server.root_key().unwrap().clone();
        g.join(MemberId(100));
        let new_root = g.server.root_key().unwrap();
        assert_ne!(&old_root, new_root, "join must change the group key");
        let newcomer = &g.members[&MemberId(100)];
        assert_eq!(newcomer.group_key().as_ref(), Some(new_root));
        assert_ne!(newcomer.group_key().as_ref(), Some(&old_root));
    }

    #[test]
    fn eviction_cost_is_about_height_plus_one() {
        let mut g = Group::new(64, 5);
        let h = g.server.height();
        let (_, broadcast) = g.leave(MemberId(20));
        let cost = broadcast.encrypted_key_count();
        assert!(
            cost <= h + 1,
            "OFT eviction cost {cost} exceeds h+1 = {}",
            h + 1
        );
        assert!(cost >= 2);
    }

    #[test]
    fn tree_stays_balanced() {
        let g = Group::new(128, 6);
        assert!(g.server.height() <= 9, "height {}", g.server.height());
    }

    #[test]
    fn heavy_churn_stays_consistent() {
        let mut g = Group::new(32, 7);
        for (round, next) in (0..20u64).zip(1000u64..) {
            g.join(MemberId(next));
            let victim = *g
                .members
                .keys()
                .nth((round as usize * 5) % g.members.len())
                .unwrap();
            g.leave(victim);
            g.assert_synchronized();
        }
        assert_eq!(g.server.member_count(), 32);
    }

    #[test]
    fn last_member_leaves_empty_tree() {
        let mut g = Group::new(1, 8);
        g.leave(MemberId(0));
        assert_eq!(g.server.member_count(), 0);
        assert!(g.server.root_key().is_none());
    }

    #[test]
    fn duplicate_join_rejected() {
        let mut g = Group::new(2, 9);
        let ik = Key::generate(&mut g.rng);
        assert!(matches!(
            g.server.join(MemberId(0), &ik, &mut g.rng),
            Err(KeyTreeError::DuplicateMember(_))
        ));
    }

    #[test]
    fn unknown_leave_rejected() {
        let mut g = Group::new(2, 10);
        assert!(matches!(
            g.server.leave(MemberId(55), &mut g.rng),
            Err(KeyTreeError::UnknownMember(_))
        ));
    }

    #[test]
    fn broadcast_costs_match_oft_promise() {
        // Joins cost ~2h (blind updates + welcome), evictions ~h+1 —
        // both logarithmic.
        let mut g = Group::new(256, 11);
        let h = g.server.height() as f64;
        let ik = Key::generate(&mut g.rng);
        let b = g.server.join(MemberId(999), &ik, &mut g.rng).unwrap();
        assert!(
            (b.encrypted_key_count() as f64) <= 2.0 * h + 3.0,
            "join cost {} vs 2h = {}",
            b.encrypted_key_count(),
            2.0 * h
        );
    }

    #[test]
    fn welcome_is_only_readable_by_its_member() {
        let mut g = Group::new(4, 12);
        // Member 0's state before member 100 joins.
        let before = g.members[&MemberId(0)].clone();
        g.join(MemberId(100));
        // Member 0 processed the broadcast; its levels changed only via
        // public structure + blinds, and it did not absorb the
        // newcomer's welcome.
        let after = &g.members[&MemberId(0)];
        assert_eq!(after.leaf(), before.leaf());
        g.assert_synchronized();
    }
}
