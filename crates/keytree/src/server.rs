//! Key-server side of LKH: turning membership changes into rekey
//! messages.
//!
//! [`LkhServer`] owns a [`crate::tree::KeyTree`] and implements
//! *periodic batch rekeying* (\[SKJ00, YLZL01\]): all joins and leaves
//! of a rekey interval are applied together, the union of affected
//! paths is refreshed once, and a single [`RekeyMessage`] is emitted.
//!
//! Two wrapping strategies are used, following the paper:
//!
//! - **Mixed or leave batches** use group-oriented rekeying: every
//!   refreshed key is encrypted under the current key of each of its
//!   children (`d` encryptions per updated key — the cost model of
//!   Appendix A). This is the only safe strategy once any member has
//!   departed, since departed members know the old path keys.
//! - **Pure join batches** use the cheaper join procedure of §2.1:
//!   every refreshed key is encrypted once under its *own previous
//!   version* (all existing members can decrypt that) plus once under
//!   the individual key of each joining member beneath it.

use crate::message::{RekeyEntry, RekeyMessage};
use crate::tree::KeyTree;
use crate::{KeyTreeError, MemberId, NodeId};
use rand::RngCore;
use rekey_crypto::{keywrap, Key};
use std::collections::{BTreeMap, BTreeSet};

/// Statistics about one batched rekey operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Members added in this batch.
    pub joins: usize,
    /// Members removed in this batch.
    pub leaves: usize,
    /// Key nodes whose keys were refreshed.
    pub refreshed_keys: usize,
    /// Encrypted keys emitted — the paper's bandwidth metric.
    pub encrypted_keys: usize,
}

/// Result of applying one batch of membership changes.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The multicast rekey message for this epoch.
    pub message: RekeyMessage,
    /// Leaf node assigned to each member that joined in this batch.
    pub joined_leaves: Vec<(MemberId, NodeId)>,
    /// Statistics for this batch.
    pub stats: BatchStats,
}

/// The key server for one logical key tree.
#[derive(Debug, Clone)]
pub struct LkhServer {
    tree: KeyTree,
    epoch: u64,
}

impl LkhServer {
    /// Creates a server managing an empty key tree of the given degree,
    /// drawing node ids from `namespace`.
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2`.
    pub fn new(degree: usize, namespace: u32) -> Self {
        // A deterministic bootstrap RNG only seeds the initial (empty)
        // root key, which is replaced on the first batch; all rekeying
        // randomness comes from the caller's RNG.
        let mut boot = rand::rngs::mock::StepRng::new(0x5eed, 0x9e3779b97f4a7c15);
        LkhServer {
            tree: KeyTree::new(degree, namespace, &mut boot),
            epoch: 0,
        }
    }

    /// Read access to the underlying tree.
    pub fn tree(&self) -> &KeyTree {
        &self.tree
    }

    /// The current rekey epoch (number of batches applied).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Id of the tree root node (stable).
    pub fn root_node(&self) -> NodeId {
        self.tree.root_id()
    }

    /// The current root (subgroup) key.
    pub fn root_key(&self) -> &Key {
        self.tree.root_key()
    }

    /// Current version of the root key.
    pub fn root_version(&self) -> u64 {
        self.tree.root_version()
    }

    /// Number of members in the tree.
    pub fn member_count(&self) -> usize {
        self.tree.member_count()
    }

    /// Whether `member` is currently in the tree.
    pub fn contains(&self, member: MemberId) -> bool {
        self.tree.contains(member)
    }

    /// Members under `node` (the audience of an entry wrapped under
    /// that node's key).
    pub fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        self.tree.members_under(node)
    }

    /// Applies a batch of joins and leaves and returns the rekey
    /// message.
    ///
    /// # Errors
    ///
    /// [`KeyTreeError::DuplicateMember`] / [`KeyTreeError::UnknownMember`]
    /// if the batch references members inconsistently; the tree is left
    /// with all changes up to the offending one applied, so callers
    /// should treat this as a programming error.
    pub fn try_apply_batch<R: RngCore>(
        &mut self,
        joins: &[(MemberId, Key)],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, KeyTreeError> {
        self.epoch += 1;
        let mut dirty: BTreeSet<NodeId> = BTreeSet::new();
        // Remember pre-refresh versions for the pure-join fast path.
        let mut old_versions: BTreeMap<NodeId, (u64, Key)> = BTreeMap::new();

        // Slots vacated by departures are re-used for joiners
        // ([YLZL01] batch rekeying): with J = L the join paths then
        // coincide with the leave paths and the batch costs Ne(N, L).
        let mut vacancies: std::collections::VecDeque<NodeId> = std::collections::VecDeque::new();
        for &member in leaves {
            let removed_dirty = self.tree.remove_member(member)?;
            if let Some(&parent) = removed_dirty.first() {
                vacancies.push_back(parent);
            }
            dirty.extend(removed_dirty);
        }

        let mut joined_leaves = Vec::with_capacity(joins.len());
        let mut created: BTreeSet<NodeId> = BTreeSet::new();
        for (member, individual_key) in joins {
            let mut outcome = None;
            while let Some(slot) = vacancies.pop_front() {
                if let Some(at_slot) =
                    self.tree
                        .insert_member_at(*member, individual_key.clone(), slot)?
                {
                    outcome = Some(at_slot);
                    break;
                }
            }
            let outcome = match outcome {
                Some(o) => o,
                None => self
                    .tree
                    .insert_member(*member, individual_key.clone(), rng)?,
            };
            joined_leaves.push((*member, outcome.leaf));
            dirty.extend(outcome.dirty_path);
            if let Some(node) = outcome.created_interior {
                created.insert(node);
            }
        }

        // Drop nodes that later structural repair deleted.
        dirty.retain(|node| self.tree.key_of(*node).is_some());

        // Snapshot old keys, then refresh.
        for node in &dirty {
            let (key, version) = self.tree.key_of(*node).expect("dirty node is alive");
            old_versions.insert(*node, (version, key.clone()));
        }
        for node in &dirty {
            self.tree.refresh_key(*node, rng);
        }

        let mut entries = Vec::new();
        let pure_join = leaves.is_empty();
        if pure_join {
            self.emit_join_entries(
                &dirty,
                &created,
                &old_versions,
                &joined_leaves,
                rng,
                &mut entries,
            );
        } else {
            self.emit_group_oriented_entries(&dirty, rng, &mut entries);
        }

        // Deepest targets first => members decrypt in one pass.
        entries.sort_by_key(|e| std::cmp::Reverse(e.target_depth));

        let stats = BatchStats {
            joins: joins.len(),
            leaves: leaves.len(),
            refreshed_keys: dirty.len(),
            encrypted_keys: entries.len(),
        };
        Ok(BatchOutcome {
            message: RekeyMessage {
                epoch: self.epoch,
                entries,
            },
            joined_leaves,
            stats,
        })
    }

    /// Infallible wrapper around [`LkhServer::try_apply_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the batch adds a member already present or removes a
    /// member not present.
    pub fn apply_batch<R: RngCore>(
        &mut self,
        joins: &[(MemberId, Key)],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> BatchOutcome {
        self.try_apply_batch(joins, leaves, rng)
            .expect("inconsistent membership batch")
    }

    /// Admits a single member immediately (non-batched join).
    ///
    /// # Panics
    ///
    /// Panics if the member is already present.
    pub fn join<R: RngCore>(
        &mut self,
        member: MemberId,
        individual_key: Key,
        rng: &mut R,
    ) -> RekeyMessage {
        self.apply_batch(&[(member, individual_key)], &[], rng).message
    }

    /// Evicts a single member immediately (non-batched leave).
    ///
    /// # Errors
    ///
    /// [`KeyTreeError::UnknownMember`] if the member is not present.
    pub fn leave<R: RngCore>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyMessage, KeyTreeError> {
        Ok(self.try_apply_batch(&[], &[member], rng)?.message)
    }

    /// Refreshes only the root key, encrypting the new root key under
    /// the previous root key (1 entry). Safe only when no member has
    /// departed since the previous root key was issued — used by the
    /// QT-scheme's join phase (§3.2 phase 1).
    pub fn rekey_root_only<R: RngCore>(&mut self, rng: &mut R) -> RekeyMessage {
        self.epoch += 1;
        let root = self.tree.root_id();
        let (old_key, old_version) = {
            let (k, v) = self.tree.key_of(root).expect("root always exists");
            (k.clone(), v)
        };
        let new_version = self.tree.refresh_key(root, rng);
        let wrapped = keywrap::wrap(&old_key, self.tree.root_key(), rng);
        RekeyMessage {
            epoch: self.epoch,
            entries: vec![RekeyEntry {
                target: root,
                target_version: new_version,
                under: root,
                under_version: old_version,
                under_is_leaf: false,
                recipient: None,
                audience: self.tree.member_count() as u32,
                target_depth: 0,
                wrapped,
            }],
        }
    }

    /// Produces the entries delivering this tree's *current* root key
    /// to a set of foreign key holders — used by managers to wrap a
    /// group DEK under partition roots, or to deliver the root to
    /// queue members. Exposed for composition; most callers want
    /// [`LkhServer::apply_batch`].
    #[allow(clippy::too_many_arguments)]
    pub fn wrap_root_under<R: RngCore>(
        &self,
        under: NodeId,
        under_version: u64,
        under_key: &Key,
        under_is_leaf: bool,
        recipient: Option<MemberId>,
        audience: u32,
        rng: &mut R,
    ) -> RekeyEntry {
        RekeyEntry {
            target: self.tree.root_id(),
            target_version: self.tree.root_version(),
            under,
            under_version,
            under_is_leaf,
            recipient,
            audience,
            target_depth: 0,
            wrapped: keywrap::wrap(under_key, self.tree.root_key(), rng),
        }
    }

    fn emit_group_oriented_entries<R: RngCore>(
        &self,
        dirty: &BTreeSet<NodeId>,
        rng: &mut R,
        entries: &mut Vec<RekeyEntry>,
    ) {
        for &node in dirty {
            let (new_key, new_version) = {
                let (k, v) = self.tree.key_of(node).expect("dirty node is alive");
                (k.clone(), v)
            };
            let depth = self.tree.depth_of(node).expect("dirty node is alive") as u32;
            let children = self.tree.children_info(node).expect("dirty node is alive");
            for child in children {
                entries.push(RekeyEntry {
                    target: node,
                    target_version: new_version,
                    under: child.id,
                    under_version: child.version,
                    under_is_leaf: child.is_leaf,
                    recipient: child.member,
                    audience: child.audience as u32,
                    target_depth: depth,
                    wrapped: keywrap::wrap(child.key, &new_key, rng),
                });
            }
        }
    }

    fn emit_join_entries<R: RngCore>(
        &self,
        dirty: &BTreeSet<NodeId>,
        created: &BTreeSet<NodeId>,
        old_versions: &BTreeMap<NodeId, (u64, Key)>,
        joined_leaves: &[(MemberId, NodeId)],
        rng: &mut R,
        entries: &mut Vec<RekeyEntry>,
    ) {
        // Paths of the new members, leaf-side first.
        let new_leaf_keys: BTreeMap<NodeId, Key> = joined_leaves
            .iter()
            .map(|(_, leaf)| {
                let (k, _) = self.tree.key_of(*leaf).expect("fresh leaf is alive");
                (*leaf, k.clone())
            })
            .collect();

        for &node in dirty {
            let (new_key, new_version) = {
                let (k, v) = self.tree.key_of(node).expect("dirty node is alive");
                (k.clone(), v)
            };
            let depth = self.tree.depth_of(node).expect("dirty node is alive") as u32;
            let audience = self.tree.leaf_count_under(node) as u32;

            // One entry under the node's own previous key: every
            // existing member below already holds it. A brand-new node
            // (created by a leaf split) has no previous holders and
            // skips this entry.
            if let Some((old_version, old_key)) = old_versions.get(&node) {
                if *old_version < new_version && !created.contains(&node) {
                    entries.push(RekeyEntry {
                        target: node,
                        target_version: new_version,
                        under: node,
                        under_version: *old_version,
                        under_is_leaf: false,
                        recipient: None,
                        audience,
                        target_depth: depth,
                        wrapped: keywrap::wrap(old_key, &new_key, rng),
                    });
                }
            }

            // One entry per joining member whose path contains `node`.
            for (member, leaf) in joined_leaves {
                let path = self.tree.path_of(*member).expect("member just joined");
                if path.contains(&node) {
                    entries.push(RekeyEntry {
                        target: node,
                        target_version: new_version,
                        under: *leaf,
                        under_version: 0,
                        under_is_leaf: true,
                        recipient: Some(*member),
                        audience: 1,
                        target_depth: depth,
                        wrapped: keywrap::wrap(&new_leaf_keys[leaf], &new_key, rng),
                    });
                }
            }
        }

        // Interior nodes freshly created by leaf splits may have
        // pre-existing members below (the split leaf); deliver the new
        // node's key to them under their existing child keys.
        for &node in created {
                let (new_key, new_version) = {
                    let (k, v) = self.tree.key_of(node).expect("dirty node is alive");
                    (k.clone(), v)
                };
                let depth = self.tree.depth_of(node).expect("dirty node is alive") as u32;
                let children = self.tree.children_info(node).expect("dirty node is alive");
                let new_leaves: BTreeSet<NodeId> =
                    joined_leaves.iter().map(|(_, l)| *l).collect();
                for child in children {
                    if new_leaves.contains(&child.id) {
                        continue; // already covered by per-joiner entries
                    }
                    entries.push(RekeyEntry {
                        target: node,
                        target_version: new_version,
                        under: child.id,
                        under_version: child.version,
                        under_is_leaf: child.is_leaf,
                        recipient: child.member,
                        audience: child.audience as u32,
                        target_depth: depth,
                        wrapped: keywrap::wrap(child.key, &new_key, rng),
                    });
                }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::GroupMember;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    /// Builds a server with `n` members, returning the member states
    /// fully synchronized with the server.
    fn build_group(degree: usize, n: u64) -> (LkhServer, Vec<GroupMember>, StdRng) {
        let mut rng = rng();
        let mut server = LkhServer::new(degree, 0);
        let joins: Vec<(MemberId, Key)> = (0..n)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        let outcome = server.apply_batch(&joins, &[], &mut rng);
        let mut members: Vec<GroupMember> = joins
            .iter()
            .map(|(id, ik)| GroupMember::new(*id, ik.clone()))
            .collect();
        for m in &mut members {
            m.process(&outcome.message).unwrap();
        }
        (server, members, rng)
    }

    fn assert_all_have_root(server: &LkhServer, members: &[GroupMember], skip: &[MemberId]) {
        for m in members {
            if skip.contains(&m.id()) {
                continue;
            }
            assert_eq!(
                m.key_for(server.root_node()),
                Some(server.root_key()),
                "member {} lost the group key",
                m.id()
            );
        }
    }

    #[test]
    fn batch_join_synchronizes_everyone() {
        let (server, members, _) = build_group(4, 37);
        assert_eq!(server.member_count(), 37);
        assert_all_have_root(&server, &members, &[]);
    }

    #[test]
    fn batch_leave_rekeys_survivors() {
        let (mut server, mut members, mut rng) = build_group(4, 20);
        let leavers = [MemberId(3), MemberId(7), MemberId(11)];
        let outcome = server.apply_batch(&[], &leavers, &mut rng);
        for m in &mut members {
            if !leavers.contains(&m.id()) {
                m.process(&outcome.message).unwrap();
            }
        }
        assert_all_have_root(&server, &members, &leavers);
    }

    #[test]
    fn departed_member_cannot_follow_rekey() {
        let (mut server, mut members, mut rng) = build_group(4, 16);
        let outcome = server.apply_batch(&[], &[MemberId(5)], &mut rng);
        // The departed member processes the message anyway.
        let evicted = &mut members[5];
        evicted.process(&outcome.message).unwrap();
        assert_ne!(
            evicted.key_for(server.root_node()),
            Some(server.root_key()),
            "forward secrecy violated"
        );
    }

    #[test]
    fn new_member_cannot_learn_old_root() {
        let (mut server, _, mut rng) = build_group(4, 16);
        let old_root = server.root_key().clone();
        let ik = Key::generate(&mut rng);
        let msg = server.join(MemberId(99), ik.clone(), &mut rng);
        let mut newbie = GroupMember::new(MemberId(99), ik);
        newbie.process(&msg).unwrap();
        assert_eq!(newbie.key_for(server.root_node()), Some(server.root_key()));
        assert_ne!(
            newbie.key_for(server.root_node()),
            Some(&old_root),
            "backward secrecy violated"
        );
    }

    #[test]
    fn mixed_batch_joins_and_leaves() {
        let (mut server, mut members, mut rng) = build_group(3, 30);
        let joins: Vec<(MemberId, Key)> = (100..110)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        let leavers: Vec<MemberId> = (0..10).map(MemberId).collect();
        let outcome = server.apply_batch(&joins, &leavers, &mut rng);
        assert_eq!(server.member_count(), 30);

        for m in &mut members {
            if !leavers.contains(&m.id()) {
                m.process(&outcome.message).unwrap();
            }
        }
        let mut newbies: Vec<GroupMember> = joins
            .iter()
            .map(|(id, ik)| GroupMember::new(*id, ik.clone()))
            .collect();
        for m in &mut newbies {
            m.process(&outcome.message).unwrap();
        }
        assert_all_have_root(&server, &members, &leavers);
        assert_all_have_root(&server, &newbies, &[]);
    }

    #[test]
    fn pure_join_batch_is_cheaper_than_group_oriented() {
        // A join-only batch should cost ~2 entries per refreshed key
        // (self + joiner) rather than d entries.
        let (mut server, _, mut rng) = build_group(4, 64);
        let ik = Key::generate(&mut rng);
        let outcome = server.apply_batch(&[(MemberId(999), ik)], &[], &mut rng);
        let refreshed = outcome.stats.refreshed_keys;
        assert!(
            outcome.stats.encrypted_keys <= 2 * refreshed + 2,
            "join cost {} too high for {} refreshed keys",
            outcome.stats.encrypted_keys,
            refreshed
        );
    }

    #[test]
    fn leave_cost_is_about_d_log_n() {
        let (mut server, _, mut rng) = build_group(4, 256);
        let msg = server.leave(MemberId(17), &mut rng).unwrap();
        // d * log_d(N) = 4 * 4 = 16; allow slack for imbalance.
        let n = msg.encrypted_key_count();
        assert!((4..=24).contains(&n), "leave cost {n} out of range");
    }

    #[test]
    fn epoch_increments_per_batch() {
        let (mut server, _, mut rng) = build_group(4, 4);
        let e0 = server.epoch();
        server.apply_batch(&[], &[MemberId(0)], &mut rng);
        assert_eq!(server.epoch(), e0 + 1);
    }

    #[test]
    fn rekey_root_only_reaches_existing_members() {
        let (mut server, mut members, mut rng) = build_group(4, 8);
        let msg = server.rekey_root_only(&mut rng);
        assert_eq!(msg.encrypted_key_count(), 1);
        for m in &mut members {
            m.process(&msg).unwrap();
        }
        assert_all_have_root(&server, &members, &[]);
    }

    #[test]
    fn entries_sorted_deepest_first() {
        let (mut server, _, mut rng) = build_group(4, 64);
        let outcome = server.apply_batch(&[], &[MemberId(0), MemberId(32)], &mut rng);
        let depths: Vec<u32> = outcome
            .message
            .entries
            .iter()
            .map(|e| e.target_depth)
            .collect();
        let mut sorted = depths.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(depths, sorted);
    }

    #[test]
    fn try_apply_batch_rejects_unknown_leaver() {
        let (mut server, _, mut rng) = build_group(4, 4);
        let err = server
            .try_apply_batch(&[], &[MemberId(777)], &mut rng)
            .unwrap_err();
        assert_eq!(err, KeyTreeError::UnknownMember(MemberId(777)));
    }

    #[test]
    fn audience_matches_subtree_sizes() {
        let (mut server, _, mut rng) = build_group(4, 64);
        let outcome = server.apply_batch(&[], &[MemberId(1)], &mut rng);
        for entry in &outcome.message.entries {
            let actual = server.members_under(entry.under).len();
            assert_eq!(entry.audience as usize, actual, "entry under {}", entry.under);
        }
    }
}
