//! Key-server side of LKH: turning membership changes into rekey
//! messages.
//!
//! [`LkhServer`] owns a [`crate::tree::KeyTree`] and implements
//! *periodic batch rekeying* (\[SKJ00, YLZL01\]): all joins and leaves
//! of a rekey interval are applied together, the union of affected
//! paths is refreshed once, and a single [`RekeyMessage`] is emitted.
//!
//! Two wrapping strategies are used, following the paper:
//!
//! - **Mixed or leave batches** use group-oriented rekeying: every
//!   refreshed key is encrypted under the current key of each of its
//!   children (`d` encryptions per updated key — the cost model of
//!   Appendix A). This is the only safe strategy once any member has
//!   departed, since departed members know the old path keys.
//! - **Pure join batches** use the cheaper join procedure of §2.1:
//!   every refreshed key is encrypted once under its *own previous
//!   version* (all existing members can decrypt that) plus once under
//!   the individual key of each joining member beneath it.
//!
//! # Performance architecture
//!
//! A batch is processed in three phases:
//!
//! 1. **Mutation** (sequential): the tree structure is updated and
//!    fresh keys are generated for every dirty node. This phase owns
//!    the caller's RNG and is inherently ordered.
//! 2. **Planning** (sequential): every encryption the batch needs is
//!    recorded as a planned wrap — KEK, payload, per-entry metadata
//!    and a nonce pre-drawn from the caller's RNG in plan order. All
//!    buffers live in a reusable scratch arena, so steady-state
//!    batches perform no per-epoch heap allocation beyond the output
//!    message itself.
//! 3. **Execution** (parallel): the planned wraps are pure functions
//!    of their inputs, so they are fanned out across a scoped worker
//!    pool ([`LkhServer::set_parallelism`]) with results written into
//!    pre-indexed slots. The output is **byte-identical** to the
//!    sequential build for every worker count, because all ordering
//!    and randomness was fixed during planning.
//!
//! Each phase runs under a `rekey_obs` span (`rekey.mutate`,
//! `rekey.plan`, `rekey.execute`, plus one `rekey.execute.worker` span
//! per pool worker and a `rekey.batch` umbrella), so per-phase wall
//! clock shows up in traces whenever a recorder is installed — and
//! costs one atomic load per phase when none is.

use crate::message::codec::{get_u64, get_u8, put_u64};
use crate::message::{RekeyEntry, RekeyMessage};
use crate::tree::KeyTree;
use crate::{KeyTreeError, MemberId, NodeId};
use rand::RngCore;
use rekey_crypto::keywrap::{self, WrapKek, WrappedKey, NONCE_LEN};
use rekey_crypto::Key;
use std::collections::{HashMap, VecDeque};

/// Below this many planned encryptions a batch is executed inline:
/// thread spawn/join overhead would dominate the crypto work.
const PARALLEL_MIN_JOBS: usize = 64;

/// Statistics about one batched rekey operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Members added in this batch.
    pub joins: usize,
    /// Members removed in this batch.
    pub leaves: usize,
    /// Key nodes whose keys were refreshed.
    pub refreshed_keys: usize,
    /// Encrypted keys emitted — the paper's bandwidth metric.
    pub encrypted_keys: usize,
}

/// Result of applying one batch of membership changes.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// The multicast rekey message for this epoch.
    pub message: RekeyMessage,
    /// Leaf node assigned to each member that joined in this batch.
    pub joined_leaves: Vec<(MemberId, NodeId)>,
    /// Statistics for this batch.
    pub stats: BatchStats,
}

/// Proof that a batch was planned on a server, returned by
/// [`LkhServer::plan_batch`] and consumed by
/// [`LkhServer::execute_planned`].
///
/// Splitting planning from execution lets a multi-tree engine plan
/// every tree sequentially (planning draws from the shared RNG, so its
/// order is semantically significant) and then execute all trees'
/// plans in parallel (execution is pure). The token owns this batch's
/// leaf assignments and churn counts; the encryption plan itself stays
/// in the server's scratch arena.
#[derive(Debug)]
#[must_use = "a planned batch produces no message until executed"]
pub struct PlannedBatch {
    joined_leaves: Vec<(MemberId, NodeId)>,
    joins: usize,
    leaves: usize,
}

/// Everything a [`RekeyEntry`] carries except the ciphertext.
#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    target: NodeId,
    target_version: u64,
    under: NodeId,
    under_version: u64,
    under_is_leaf: bool,
    recipient: Option<MemberId>,
    audience: u32,
    target_depth: u32,
}

/// One planned key encryption: a pure function of its fields (plus the
/// batch's shared KEK arena), ready to execute on any worker. The
/// payload key is held inline (32-byte copy) so workers never chase
/// pointers into the tree; the KEK is an index into
/// [`RekeyScratch::keks`], where its derived sub-keys and scheduled MAC
/// state live once per (node, version) rather than once per entry —
/// all sibling entries of a node and all entries along a joiner's path
/// share one setup.
#[derive(Debug, Clone)]
struct PlannedWrap {
    kek_slot: usize,
    payload: Key,
    nonce: [u8; NONCE_LEN],
    meta: EntryMeta,
}

impl PlannedWrap {
    fn execute(&self, keks: &[WrapKek]) -> WrappedKey {
        keks[self.kek_slot].wrap_with_nonce(&self.payload, self.nonce)
    }

    fn into_entry(self, wrapped: WrappedKey) -> RekeyEntry {
        RekeyEntry {
            target: self.meta.target,
            target_version: self.meta.target_version,
            under: self.meta.under,
            under_version: self.meta.under_version,
            under_is_leaf: self.meta.under_is_leaf,
            recipient: self.meta.recipient,
            audience: self.meta.audience,
            target_depth: self.meta.target_depth,
            wrapped,
        }
    }
}

/// Reusable per-batch working memory for the rekey engine.
///
/// Every buffer is cleared (capacity retained) at the start of a batch,
/// so a warmed-up server performs no per-epoch heap allocation in the
/// planning phase; the only allocation per batch is the output
/// [`RekeyMessage`] handed to the caller.
#[derive(Debug, Clone, Default)]
pub struct RekeyScratch {
    /// Dirty node ids, sorted ascending and deduplicated.
    dirty: Vec<NodeId>,
    /// Pre-refresh `(node, version, key)` snapshots, sorted by node —
    /// populated only for pure-join batches (the only mode that wraps
    /// under previous keys).
    old_versions: Vec<(NodeId, u64, Key)>,
    /// Tree slots vacated by this batch's departures.
    vacancies: VecDeque<NodeId>,
    /// Interior nodes created by leaf splits in this batch.
    created: Vec<NodeId>,
    /// Flattened leaf-to-root paths of this batch's joiners.
    path_nodes: Vec<NodeId>,
    /// `(offset, len)` spans into `path_nodes`, parallel to the
    /// batch's `joined_leaves`.
    path_spans: Vec<(usize, usize)>,
    /// The encryption plan for the current batch.
    plan: Vec<PlannedWrap>,
    /// Per-plan-slot results written by the worker pool.
    wrapped: Vec<Option<WrappedKey>>,
    /// Prepared KEKs (derived sub-keys + scheduled MAC state), one per
    /// distinct wrapping key of the batch; [`PlannedWrap::kek_slot`]
    /// indexes here.
    keks: Vec<WrapKek>,
    /// Dedup map for `keks`: the `(node, key version)` identity of a
    /// wrapping key → its slot.
    kek_slots: HashMap<(NodeId, u64), usize>,
}

impl RekeyScratch {
    fn begin_batch(&mut self) {
        self.dirty.clear();
        self.old_versions.clear();
        self.vacancies.clear();
        self.created.clear();
        self.path_nodes.clear();
        self.path_spans.clear();
        self.plan.clear();
        self.wrapped.clear();
        self.keks.clear();
        self.kek_slots.clear();
    }

    fn old_version_of(&self, node: NodeId) -> Option<&(NodeId, u64, Key)> {
        self.old_versions
            .binary_search_by_key(&node, |&(n, _, _)| n)
            .ok()
            .map(|i| &self.old_versions[i])
    }
}

/// Slot of the prepared [`WrapKek`] for the wrapping key identified by
/// `(under, version)`, running the (HKDF + HMAC-schedule) setup only on
/// the first entry planned under it. A free function over the two
/// scratch fields so planning loops can call it while iterating other
/// scratch buffers.
fn kek_slot_for(
    keks: &mut Vec<WrapKek>,
    slots: &mut HashMap<(NodeId, u64), usize>,
    under: NodeId,
    version: u64,
    key: &Key,
) -> usize {
    *slots.entry((under, version)).or_insert_with(|| {
        keks.push(WrapKek::new(key));
        keks.len() - 1
    })
}

/// The key server for one logical key tree.
#[derive(Debug, Clone)]
pub struct LkhServer {
    tree: KeyTree,
    epoch: u64,
    parallelism: usize,
    scratch: RekeyScratch,
}

/// Version byte leading a serialized [`LkhServer`].
pub const SERVER_WIRE_VERSION: u8 = 1;

impl LkhServer {
    /// Creates a server managing an empty key tree of the given degree,
    /// drawing node ids from `namespace`.
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2`.
    pub fn new(degree: usize, namespace: u32) -> Self {
        // A deterministic bootstrap RNG only seeds the initial (empty)
        // root key, which is replaced on the first batch; all rekeying
        // randomness comes from the caller's RNG.
        let mut boot = rand::rngs::mock::StepRng::new(0x5eed, 0x9e3779b97f4a7c15);
        LkhServer {
            tree: KeyTree::new(degree, namespace, &mut boot),
            epoch: 0,
            parallelism: 1,
            scratch: RekeyScratch::default(),
        }
    }

    /// Serializes the server's durable state — epoch plus the full
    /// logical tree — onto `buf` (see [`KeyTree::encode_into`]).
    ///
    /// Parallelism and the scratch arena are runtime tuning, not
    /// state: a decoded server at any worker count emits the same
    /// bytes, so neither is serialized.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(SERVER_WIRE_VERSION);
        put_u64(buf, self.epoch);
        self.tree.encode_into(buf);
    }

    /// Decodes a server serialized by [`LkhServer::encode_into`],
    /// advancing `buf` past it. Returns `None` on truncation, an
    /// unknown version, or an invalid embedded tree.
    pub fn decode(buf: &mut &[u8]) -> Option<LkhServer> {
        if get_u8(buf)? != SERVER_WIRE_VERSION {
            return None;
        }
        let epoch = get_u64(buf)?;
        let tree = KeyTree::decode(buf)?;
        Some(LkhServer {
            tree,
            epoch,
            parallelism: 1,
            scratch: RekeyScratch::default(),
        })
    }

    /// Sets the worker count for the encryption phase of batch
    /// rekeying (`0` is treated as `1`). The emitted message is
    /// byte-identical for every setting; workers only change wall-clock
    /// time. Returns `self` for builder-style chaining.
    pub fn set_parallelism(&mut self, workers: usize) -> &mut Self {
        self.parallelism = workers.max(1);
        self
    }

    /// Current worker count for the encryption phase.
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Read access to the underlying tree.
    pub fn tree(&self) -> &KeyTree {
        &self.tree
    }

    /// The current rekey epoch (number of batches applied).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Id of the tree root node (stable).
    pub fn root_node(&self) -> NodeId {
        self.tree.root_id()
    }

    /// The current root (subgroup) key.
    pub fn root_key(&self) -> &Key {
        self.tree.root_key()
    }

    /// Current version of the root key.
    pub fn root_version(&self) -> u64 {
        self.tree.root_version()
    }

    /// Number of members in the tree.
    pub fn member_count(&self) -> usize {
        self.tree.member_count()
    }

    /// Whether `member` is currently in the tree.
    pub fn contains(&self, member: MemberId) -> bool {
        self.tree.contains(member)
    }

    /// Members under `node` (the audience of an entry wrapped under
    /// that node's key).
    pub fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        self.tree.members_under(node)
    }

    /// Buffer-reusing variant of [`LkhServer::members_under`]: appends
    /// to `out` instead of allocating.
    pub fn members_under_into(&self, node: NodeId, out: &mut Vec<MemberId>) {
        self.tree.members_under_into(node, out);
    }

    /// Number of encryptions currently planned in the scratch arena
    /// (non-zero only between [`LkhServer::plan_batch`] and
    /// [`LkhServer::execute_planned`]). Multi-tree engines use this to
    /// decide whether cross-tree fan-out is worth spawning threads.
    pub fn planned_encryptions(&self) -> usize {
        self.scratch.plan.len()
    }

    /// Applies a batch of joins and leaves and returns the rekey
    /// message.
    ///
    /// # Errors
    ///
    /// [`KeyTreeError::DuplicateMember`] / [`KeyTreeError::UnknownMember`]
    /// if the batch references members inconsistently; the tree is left
    /// with all changes up to the offending one applied, so callers
    /// should treat this as a programming error.
    pub fn try_apply_batch<R: RngCore>(
        &mut self,
        joins: &[(MemberId, Key)],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> Result<BatchOutcome, KeyTreeError> {
        let _batch_span = rekey_obs::span!("rekey.batch");
        let planned = self.plan_batch(joins, leaves, rng)?;
        Ok(self.execute_planned(planned))
    }

    /// Phases 1–2 of batch rekeying: mutates the tree and plans every
    /// encryption, drawing all randomness (fresh keys, nonces) from
    /// `rng` in a fixed order. The returned token is passed to
    /// [`LkhServer::execute_planned`] to produce the message.
    ///
    /// Callers composing several trees (see `rekey_core`'s engine)
    /// plan all trees sequentially against the shared RNG, then
    /// execute the plans in parallel — [`LkhServer::execute_planned`]
    /// draws no randomness, so cross-tree execution order cannot
    /// change a single output byte.
    ///
    /// # Errors
    ///
    /// Same contract as [`LkhServer::try_apply_batch`].
    pub fn plan_batch<R: RngCore>(
        &mut self,
        joins: &[(MemberId, Key)],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> Result<PlannedBatch, KeyTreeError> {
        self.epoch += 1;
        self.scratch.begin_batch();

        // ---- Phase 1: tree mutation + fresh key generation --------
        let joined_leaves = {
            let _span = rekey_obs::span!("rekey.mutate");
            self.mutate_tree(joins, leaves, rng)?
        };

        // ---- Phase 2: plan every encryption this batch needs ------
        {
            let _span = rekey_obs::span!("rekey.plan");
            let pure_join = leaves.is_empty();
            if pure_join {
                self.snapshot_old_versions();
            }
            for &node in &self.scratch.dirty {
                self.tree.refresh_key(node, rng);
            }
            if pure_join {
                self.plan_join_entries(&joined_leaves);
            } else {
                self.plan_group_oriented_entries();
            }
            // Deepest targets first => members decrypt in one pass.
            // The sort is stable, so entries for one node keep their
            // relative order.
            self.scratch
                .plan
                .sort_by_key(|job| std::cmp::Reverse(job.meta.target_depth));
            // Nonces are drawn sequentially in final plan order: the
            // execution phase is then a pure data-parallel map,
            // identical for every worker count.
            for job in &mut self.scratch.plan {
                rng.fill_bytes(&mut job.nonce);
            }
        }

        Ok(PlannedBatch {
            joined_leaves,
            joins: joins.len(),
            leaves: leaves.len(),
        })
    }

    /// Phase 3 of batch rekeying: executes a plan produced by
    /// [`LkhServer::plan_batch`] on the worker pool and assembles the
    /// rekey message. Pure — no randomness, no tree mutation — so
    /// composed trees may execute concurrently.
    pub fn execute_planned(&mut self, planned: PlannedBatch) -> BatchOutcome {
        let entries = {
            let _span = rekey_obs::span!("rekey.execute");
            self.execute_plan()
        };
        rekey_obs::count("rekey.encrypted_keys", entries.len() as u64);

        let stats = BatchStats {
            joins: planned.joins,
            leaves: planned.leaves,
            refreshed_keys: self.scratch.dirty.len(),
            encrypted_keys: entries.len(),
        };
        BatchOutcome {
            message: RekeyMessage {
                epoch: self.epoch,
                entries,
            },
            joined_leaves: planned.joined_leaves,
            stats,
        }
    }

    /// Phase 1: applies the membership changes to the tree, recording
    /// dirty nodes, vacancies, and created interiors in the scratch
    /// arena. Returns the leaf assignments of this batch's joiners.
    fn mutate_tree<R: RngCore>(
        &mut self,
        joins: &[(MemberId, Key)],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> Result<Vec<(MemberId, NodeId)>, KeyTreeError> {
        let scratch = &mut self.scratch;

        // Slots vacated by departures are re-used for joiners
        // ([YLZL01] batch rekeying): with J = L the join paths then
        // coincide with the leave paths and the batch costs Ne(N, L).
        for &member in leaves {
            let removed_dirty = self.tree.remove_member(member)?;
            if let Some(&parent) = removed_dirty.first() {
                scratch.vacancies.push_back(parent);
            }
            scratch.dirty.extend(removed_dirty);
        }

        let mut joined_leaves = Vec::with_capacity(joins.len());
        for (member, individual_key) in joins {
            let mut outcome = None;
            while let Some(slot) = scratch.vacancies.pop_front() {
                if let Some(at_slot) =
                    self.tree
                        .insert_member_at(*member, individual_key.clone(), slot)?
                {
                    outcome = Some(at_slot);
                    break;
                }
            }
            let outcome = match outcome {
                Some(o) => o,
                None => self
                    .tree
                    .insert_member(*member, individual_key.clone(), rng)?,
            };
            joined_leaves.push((*member, outcome.leaf));
            scratch.dirty.extend(outcome.dirty_path);
            if let Some(node) = outcome.created_interior {
                scratch.created.push(node);
            }
        }

        // Dedup and drop nodes that later structural repair deleted;
        // ascending order fixes the plan's (and thus the message's)
        // canonical node order.
        scratch.dirty.sort_unstable();
        scratch.dirty.dedup();
        let tree = &self.tree;
        scratch.dirty.retain(|node| tree.key_of(*node).is_some());
        Ok(joined_leaves)
    }

    /// Snapshots `(version, key)` of every dirty node before refresh.
    /// Only pure-join batches wrap anything under a previous key, so
    /// mixed/leave batches skip this copy entirely.
    fn snapshot_old_versions(&mut self) {
        let scratch = &mut self.scratch;
        scratch.old_versions.reserve(scratch.dirty.len());
        for &node in &scratch.dirty {
            let (key, version) = self.tree.key_of(node).expect("dirty node is alive");
            // `dirty` is sorted, so `old_versions` is born sorted.
            scratch.old_versions.push((node, version, key.clone()));
        }
    }

    /// Plans group-oriented rekeying (mixed or leave batches): every
    /// refreshed key is encrypted under the current key of each of its
    /// children.
    fn plan_group_oriented_entries(&mut self) {
        let scratch = &mut self.scratch;
        let tree = &self.tree;
        for &node in &scratch.dirty {
            let (new_key, new_version) = tree.key_of(node).expect("dirty node is alive");
            let depth = tree.depth_of(node).expect("dirty node is alive") as u32;
            for child in tree.children_of(node).expect("dirty node is alive") {
                let kek_slot = kek_slot_for(
                    &mut scratch.keks,
                    &mut scratch.kek_slots,
                    child.id,
                    child.version,
                    child.key,
                );
                scratch.plan.push(PlannedWrap {
                    kek_slot,
                    payload: new_key.clone(),
                    nonce: [0; NONCE_LEN],
                    meta: EntryMeta {
                        target: node,
                        target_version: new_version,
                        under: child.id,
                        under_version: child.version,
                        under_is_leaf: child.is_leaf,
                        recipient: child.member,
                        audience: child.audience as u32,
                        target_depth: depth,
                    },
                });
            }
        }
    }

    /// Plans the §2.1 join procedure (pure-join batches): each
    /// refreshed key is encrypted under its own previous version plus
    /// under the individual key of each joiner beneath it.
    fn plan_join_entries(&mut self, joined_leaves: &[(MemberId, NodeId)]) {
        let scratch = &mut self.scratch;
        let tree = &self.tree;

        // Paths of the new members, computed once into the arena.
        for (member, _) in joined_leaves {
            let start = scratch.path_nodes.len();
            tree.path_of_into(*member, &mut scratch.path_nodes)
                .expect("member just joined");
            scratch
                .path_spans
                .push((start, scratch.path_nodes.len() - start));
        }

        for &node in &scratch.dirty {
            let (new_key, new_version) = tree.key_of(node).expect("dirty node is alive");
            let depth = tree.depth_of(node).expect("dirty node is alive") as u32;
            let audience = tree.leaf_count_under(node) as u32;

            // One entry under the node's own previous key: every
            // existing member below already holds it. A brand-new node
            // (created by a leaf split) has no previous holders and
            // skips this entry.
            let old = scratch
                .old_version_of(node)
                .map(|&(_, v, ref k)| (v, k.clone()));
            if let Some((old_version, old_key)) = old {
                if old_version < new_version && !scratch.created.contains(&node) {
                    let kek_slot = kek_slot_for(
                        &mut scratch.keks,
                        &mut scratch.kek_slots,
                        node,
                        old_version,
                        &old_key,
                    );
                    scratch.plan.push(PlannedWrap {
                        kek_slot,
                        payload: new_key.clone(),
                        nonce: [0; NONCE_LEN],
                        meta: EntryMeta {
                            target: node,
                            target_version: new_version,
                            under: node,
                            under_version: old_version,
                            under_is_leaf: false,
                            recipient: None,
                            audience,
                            target_depth: depth,
                        },
                    });
                }
            }

            // One entry per joining member whose path contains `node`.
            for ((member, leaf), &(start, len)) in joined_leaves.iter().zip(&scratch.path_spans) {
                if scratch.path_nodes[start..start + len].contains(&node) {
                    let (leaf_key, _) = tree.key_of(*leaf).expect("fresh leaf is alive");
                    let kek_slot = kek_slot_for(
                        &mut scratch.keks,
                        &mut scratch.kek_slots,
                        *leaf,
                        0,
                        leaf_key,
                    );
                    scratch.plan.push(PlannedWrap {
                        kek_slot,
                        payload: new_key.clone(),
                        nonce: [0; NONCE_LEN],
                        meta: EntryMeta {
                            target: node,
                            target_version: new_version,
                            under: *leaf,
                            under_version: 0,
                            under_is_leaf: true,
                            recipient: Some(*member),
                            audience: 1,
                            target_depth: depth,
                        },
                    });
                }
            }
        }

        // Interior nodes freshly created by leaf splits may have
        // pre-existing members below (the split leaf); deliver the new
        // node's key to them under their existing child keys.
        for &node in &scratch.created {
            let (new_key, new_version) = tree.key_of(node).expect("created node is alive");
            let depth = tree.depth_of(node).expect("created node is alive") as u32;
            for child in tree.children_of(node).expect("created node is alive") {
                if joined_leaves.iter().any(|&(_, l)| l == child.id) {
                    continue; // already covered by per-joiner entries
                }
                let kek_slot = kek_slot_for(
                    &mut scratch.keks,
                    &mut scratch.kek_slots,
                    child.id,
                    child.version,
                    child.key,
                );
                scratch.plan.push(PlannedWrap {
                    kek_slot,
                    payload: new_key.clone(),
                    nonce: [0; NONCE_LEN],
                    meta: EntryMeta {
                        target: node,
                        target_version: new_version,
                        under: child.id,
                        under_version: child.version,
                        under_is_leaf: child.is_leaf,
                        recipient: child.member,
                        audience: child.audience as u32,
                        target_depth: depth,
                    },
                });
            }
        }
    }

    /// Phase 3: turns the plan into the output entries, fanning the
    /// encryption work across up to `parallelism` scoped workers.
    /// Output order (and bytes) is fixed by the plan regardless of the
    /// worker count.
    fn execute_plan(&mut self) -> Vec<RekeyEntry> {
        let scratch = &mut self.scratch;
        let jobs = scratch.plan.len();
        let workers = self.parallelism.min(jobs.max(1));

        if workers <= 1 || jobs < PARALLEL_MIN_JOBS {
            let keks = &scratch.keks;
            return scratch
                .plan
                .drain(..)
                .map(|job| {
                    let wrapped = job.execute(keks);
                    job.into_entry(wrapped)
                })
                .collect();
        }

        scratch.wrapped.resize(jobs, None);
        let chunk = jobs.div_ceil(workers);
        let plan = &scratch.plan;
        let keks = &scratch.keks;
        std::thread::scope(|scope| {
            for (in_chunk, out_chunk) in plan.chunks(chunk).zip(scratch.wrapped.chunks_mut(chunk)) {
                scope.spawn(move || {
                    let _span = rekey_obs::span!("rekey.execute.worker");
                    for (job, slot) in in_chunk.iter().zip(out_chunk) {
                        *slot = Some(job.execute(keks));
                    }
                });
            }
        });
        scratch
            .plan
            .drain(..)
            .zip(scratch.wrapped.drain(..))
            .map(|(job, wrapped)| job.into_entry(wrapped.expect("worker filled its slots")))
            .collect()
    }

    /// Infallible wrapper around [`LkhServer::try_apply_batch`].
    ///
    /// # Panics
    ///
    /// Panics if the batch adds a member already present or removes a
    /// member not present.
    pub fn apply_batch<R: RngCore>(
        &mut self,
        joins: &[(MemberId, Key)],
        leaves: &[MemberId],
        rng: &mut R,
    ) -> BatchOutcome {
        self.try_apply_batch(joins, leaves, rng)
            .expect("inconsistent membership batch")
    }

    /// Admits a single member immediately (non-batched join).
    ///
    /// # Panics
    ///
    /// Panics if the member is already present.
    pub fn join<R: RngCore>(
        &mut self,
        member: MemberId,
        individual_key: Key,
        rng: &mut R,
    ) -> RekeyMessage {
        self.apply_batch(&[(member, individual_key)], &[], rng)
            .message
    }

    /// Evicts a single member immediately (non-batched leave).
    ///
    /// # Errors
    ///
    /// [`KeyTreeError::UnknownMember`] if the member is not present.
    pub fn leave<R: RngCore>(
        &mut self,
        member: MemberId,
        rng: &mut R,
    ) -> Result<RekeyMessage, KeyTreeError> {
        Ok(self.try_apply_batch(&[], &[member], rng)?.message)
    }

    /// Refreshes only the root key, encrypting the new root key under
    /// the previous root key (1 entry). Safe only when no member has
    /// departed since the previous root key was issued — used by the
    /// QT-scheme's join phase (§3.2 phase 1).
    pub fn rekey_root_only<R: RngCore>(&mut self, rng: &mut R) -> RekeyMessage {
        self.epoch += 1;
        let root = self.tree.root_id();
        let (old_key, old_version) = {
            let (k, v) = self.tree.key_of(root).expect("root always exists");
            (k.clone(), v)
        };
        let new_version = self.tree.refresh_key(root, rng);
        let wrapped = keywrap::wrap(&old_key, self.tree.root_key(), rng);
        RekeyMessage {
            epoch: self.epoch,
            entries: vec![RekeyEntry {
                target: root,
                target_version: new_version,
                under: root,
                under_version: old_version,
                under_is_leaf: false,
                recipient: None,
                audience: self.tree.member_count() as u32,
                target_depth: 0,
                wrapped,
            }],
        }
    }

    /// Produces the entries delivering this tree's *current* root key
    /// to a set of foreign key holders — used by managers to wrap a
    /// group DEK under partition roots, or to deliver the root to
    /// queue members. Exposed for composition; most callers want
    /// [`LkhServer::apply_batch`].
    #[allow(clippy::too_many_arguments)]
    pub fn wrap_root_under<R: RngCore>(
        &self,
        under: NodeId,
        under_version: u64,
        under_key: &Key,
        under_is_leaf: bool,
        recipient: Option<MemberId>,
        audience: u32,
        rng: &mut R,
    ) -> RekeyEntry {
        RekeyEntry {
            target: self.tree.root_id(),
            target_version: self.tree.root_version(),
            under,
            under_version,
            under_is_leaf,
            recipient,
            audience,
            target_depth: 0,
            wrapped: keywrap::wrap(under_key, self.tree.root_key(), rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::GroupMember;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1234)
    }

    /// Builds a server with `n` members, returning the member states
    /// fully synchronized with the server.
    fn build_group(degree: usize, n: u64) -> (LkhServer, Vec<GroupMember>, StdRng) {
        let mut rng = rng();
        let mut server = LkhServer::new(degree, 0);
        let joins: Vec<(MemberId, Key)> = (0..n)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        let outcome = server.apply_batch(&joins, &[], &mut rng);
        let mut members: Vec<GroupMember> = joins
            .iter()
            .map(|(id, ik)| GroupMember::new(*id, ik.clone()))
            .collect();
        for m in &mut members {
            m.process(&outcome.message).unwrap();
        }
        (server, members, rng)
    }

    fn assert_all_have_root(server: &LkhServer, members: &[GroupMember], skip: &[MemberId]) {
        for m in members {
            if skip.contains(&m.id()) {
                continue;
            }
            assert_eq!(
                m.key_for(server.root_node()),
                Some(server.root_key()),
                "member {} lost the group key",
                m.id()
            );
        }
    }

    #[test]
    fn batch_join_synchronizes_everyone() {
        let (server, members, _) = build_group(4, 37);
        assert_eq!(server.member_count(), 37);
        assert_all_have_root(&server, &members, &[]);
    }

    #[test]
    fn batch_leave_rekeys_survivors() {
        let (mut server, mut members, mut rng) = build_group(4, 20);
        let leavers = [MemberId(3), MemberId(7), MemberId(11)];
        let outcome = server.apply_batch(&[], &leavers, &mut rng);
        for m in &mut members {
            if !leavers.contains(&m.id()) {
                m.process(&outcome.message).unwrap();
            }
        }
        assert_all_have_root(&server, &members, &leavers);
    }

    #[test]
    fn departed_member_cannot_follow_rekey() {
        let (mut server, mut members, mut rng) = build_group(4, 16);
        let outcome = server.apply_batch(&[], &[MemberId(5)], &mut rng);
        // The departed member processes the message anyway.
        let evicted = &mut members[5];
        evicted.process(&outcome.message).unwrap();
        assert_ne!(
            evicted.key_for(server.root_node()),
            Some(server.root_key()),
            "forward secrecy violated"
        );
    }

    #[test]
    fn new_member_cannot_learn_old_root() {
        let (mut server, _, mut rng) = build_group(4, 16);
        let old_root = server.root_key().clone();
        let ik = Key::generate(&mut rng);
        let msg = server.join(MemberId(99), ik.clone(), &mut rng);
        let mut newbie = GroupMember::new(MemberId(99), ik);
        newbie.process(&msg).unwrap();
        assert_eq!(newbie.key_for(server.root_node()), Some(server.root_key()));
        assert_ne!(
            newbie.key_for(server.root_node()),
            Some(&old_root),
            "backward secrecy violated"
        );
    }

    #[test]
    fn mixed_batch_joins_and_leaves() {
        let (mut server, mut members, mut rng) = build_group(3, 30);
        let joins: Vec<(MemberId, Key)> = (100..110)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        let leavers: Vec<MemberId> = (0..10).map(MemberId).collect();
        let outcome = server.apply_batch(&joins, &leavers, &mut rng);
        assert_eq!(server.member_count(), 30);

        for m in &mut members {
            if !leavers.contains(&m.id()) {
                m.process(&outcome.message).unwrap();
            }
        }
        let mut newbies: Vec<GroupMember> = joins
            .iter()
            .map(|(id, ik)| GroupMember::new(*id, ik.clone()))
            .collect();
        for m in &mut newbies {
            m.process(&outcome.message).unwrap();
        }
        assert_all_have_root(&server, &members, &leavers);
        assert_all_have_root(&server, &newbies, &[]);
    }

    #[test]
    fn pure_join_batch_is_cheaper_than_group_oriented() {
        // A join-only batch should cost ~2 entries per refreshed key
        // (self + joiner) rather than d entries.
        let (mut server, _, mut rng) = build_group(4, 64);
        let ik = Key::generate(&mut rng);
        let outcome = server.apply_batch(&[(MemberId(999), ik)], &[], &mut rng);
        let refreshed = outcome.stats.refreshed_keys;
        assert!(
            outcome.stats.encrypted_keys <= 2 * refreshed + 2,
            "join cost {} too high for {} refreshed keys",
            outcome.stats.encrypted_keys,
            refreshed
        );
    }

    #[test]
    fn leave_cost_is_about_d_log_n() {
        let (mut server, _, mut rng) = build_group(4, 256);
        let msg = server.leave(MemberId(17), &mut rng).unwrap();
        // d * log_d(N) = 4 * 4 = 16; allow slack for imbalance.
        let n = msg.encrypted_key_count();
        assert!((4..=24).contains(&n), "leave cost {n} out of range");
    }

    #[test]
    fn epoch_increments_per_batch() {
        let (mut server, _, mut rng) = build_group(4, 4);
        let e0 = server.epoch();
        server.apply_batch(&[], &[MemberId(0)], &mut rng);
        assert_eq!(server.epoch(), e0 + 1);
    }

    #[test]
    fn rekey_root_only_reaches_existing_members() {
        let (mut server, mut members, mut rng) = build_group(4, 8);
        let msg = server.rekey_root_only(&mut rng);
        assert_eq!(msg.encrypted_key_count(), 1);
        for m in &mut members {
            m.process(&msg).unwrap();
        }
        assert_all_have_root(&server, &members, &[]);
    }

    #[test]
    fn entries_sorted_deepest_first() {
        let (mut server, _, mut rng) = build_group(4, 64);
        let outcome = server.apply_batch(&[], &[MemberId(0), MemberId(32)], &mut rng);
        let depths: Vec<u32> = outcome
            .message
            .entries
            .iter()
            .map(|e| e.target_depth)
            .collect();
        let mut sorted = depths.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(depths, sorted);
    }

    #[test]
    fn try_apply_batch_rejects_unknown_leaver() {
        let (mut server, _, mut rng) = build_group(4, 4);
        let err = server
            .try_apply_batch(&[], &[MemberId(777)], &mut rng)
            .unwrap_err();
        assert_eq!(err, KeyTreeError::UnknownMember(MemberId(777)));
    }

    #[test]
    fn audience_matches_subtree_sizes() {
        let (mut server, _, mut rng) = build_group(4, 64);
        let outcome = server.apply_batch(&[], &[MemberId(1)], &mut rng);
        for entry in &outcome.message.entries {
            let actual = server.members_under(entry.under).len();
            assert_eq!(
                entry.audience as usize, actual,
                "entry under {}",
                entry.under
            );
        }
    }

    /// The tentpole guarantee: for the same seed and batch, every
    /// worker count yields a byte-identical message (mixed batch large
    /// enough to cross the parallel threshold).
    #[test]
    fn parallel_output_is_byte_identical() {
        let build_msg = |workers: usize| {
            let mut rng = StdRng::seed_from_u64(77);
            let mut server = LkhServer::new(4, 0);
            server.set_parallelism(workers);
            let joins: Vec<(MemberId, Key)> = (0..512)
                .map(|i| (MemberId(i), Key::generate(&mut rng)))
                .collect();
            server.apply_batch(&joins, &[], &mut rng);
            let leavers: Vec<MemberId> = (0..64).map(|i| MemberId(i * 7)).collect();
            let out = server.apply_batch(&[], &leavers, &mut rng);
            (out.message, out.stats)
        };
        let (seq_msg, seq_stats) = build_msg(1);
        for workers in [2, 4, 8] {
            let (par_msg, par_stats) = build_msg(workers);
            assert_eq!(seq_msg, par_msg, "divergence at {workers} workers");
            assert_eq!(seq_stats, par_stats);
        }
    }

    /// Scratch reuse across epochs must not leak state between batches.
    #[test]
    fn scratch_reuse_is_stateless_across_batches() {
        let (mut server, mut members, mut rng) = build_group(4, 40);
        for round in 0..6u64 {
            let joins: Vec<(MemberId, Key)> = (0..3)
                .map(|i| (MemberId(1000 + round * 10 + i), Key::generate(&mut rng)))
                .collect();
            let leavers = [MemberId(round), MemberId(20 + round)];
            let outcome = server.apply_batch(&joins, &leavers, &mut rng);
            for m in &mut members {
                if server.contains(m.id()) {
                    m.process(&outcome.message).unwrap();
                }
            }
            for (id, ik) in &joins {
                let mut newbie = GroupMember::new(*id, ik.clone());
                newbie.process(&outcome.message).unwrap();
                members.push(newbie);
            }
            let present: Vec<MemberId> = members
                .iter()
                .map(|m| m.id())
                .filter(|id| !server.contains(*id))
                .collect();
            assert_all_have_root(&server, &members, &present);
        }
    }
}
