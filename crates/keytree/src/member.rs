//! Receiver-side state: a group member's key ring.
//!
//! A [`GroupMember`] holds its individual key (shared with the key
//! server at registration) and every tree key it has learned from
//! rekey messages — which, by construction of the server's messages,
//! is exactly the keys on its leaf-to-root path(s), plus the group
//! data-encryption key when a manager distributes one.
//!
//! Processing is a single forward pass thanks to the
//! deepest-target-first entry order; see [`crate::message`].

use crate::message::{RekeyEntry, RekeyMessage};
use crate::{KeyTreeError, MemberId, NodeId};
use rekey_crypto::{keywrap, Key};
use std::collections::HashMap;

/// The key ring and message-processing logic of one group member.
#[derive(Debug, Clone)]
pub struct GroupMember {
    id: MemberId,
    individual: Key,
    keys: HashMap<NodeId, (u64, Key)>,
    processed_entries: u64,
    decrypted_entries: u64,
}

impl GroupMember {
    /// Creates a member that holds only its individual key, as
    /// established with the key server at registration time.
    pub fn new(id: MemberId, individual_key: Key) -> Self {
        GroupMember {
            id,
            individual: individual_key,
            keys: HashMap::new(),
            processed_entries: 0,
            decrypted_entries: 0,
        }
    }

    /// This member's id.
    pub fn id(&self) -> MemberId {
        self.id
    }

    /// The member's individual key (shared only with the key server).
    pub fn individual_key(&self) -> &Key {
        &self.individual
    }

    /// The current key this member holds for `node`, if any.
    pub fn key_for(&self, node: NodeId) -> Option<&Key> {
        self.keys.get(&node).map(|(_, k)| k)
    }

    /// The version of the key this member holds for `node`, if any.
    pub fn version_for(&self, node: NodeId) -> Option<u64> {
        self.keys.get(&node).map(|(v, _)| *v)
    }

    /// Number of distinct tree keys currently held (excluding the
    /// individual key).
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// Total entries seen / successfully decrypted, for diagnostics.
    pub fn stats(&self) -> (u64, u64) {
        (self.processed_entries, self.decrypted_entries)
    }

    /// Iterates over every `(node, version)` pair currently held
    /// (excluding the individual key), in unspecified order. Test
    /// harnesses compare this ring against an independent oracle of
    /// the keys this member is *entitled* to.
    pub fn held_keys(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.keys.iter().map(|(&n, &(v, _))| (n, v))
    }

    fn try_entry(&mut self, entry: &RekeyEntry) -> Result<bool, KeyTreeError> {
        // A key we already hold at the required version? Never let a
        // replayed or reordered entry roll a held key *back*: an entry
        // only installs its target when it advances (or first
        // establishes) the version we hold for that node.
        if let Some((version, key)) = self.keys.get(&entry.under) {
            if *version == entry.under_version {
                let held = self.keys.get(&entry.target).map(|(v, _)| *v);
                if held.is_some_and(|v| v >= entry.target_version) {
                    return Ok(false);
                }
                let key = key.clone();
                let new_key = keywrap::unwrap(&key, &entry.wrapped)?;
                self.keys
                    .insert(entry.target, (entry.target_version, new_key));
                return Ok(true);
            }
        }
        // An entry addressed directly to our individual key? The leaf
        // node id is assigned by the server, so we learn it here. The
        // recipient id lets us skip (costly) decryption attempts on
        // entries addressed to other members.
        if entry.under_is_leaf
            && entry.recipient == Some(self.id)
            && !self.keys.contains_key(&entry.under)
        {
            let new_key = keywrap::unwrap(&self.individual, &entry.wrapped)?;
            self.keys
                .insert(entry.under, (entry.under_version, self.individual.clone()));
            let held = self.keys.get(&entry.target).map(|(v, _)| *v);
            if held.is_none_or(|v| v < entry.target_version) {
                self.keys
                    .insert(entry.target, (entry.target_version, new_key));
            }
            return Ok(true);
        }
        Ok(false)
    }

    /// Processes a rekey message, updating every key addressed to this
    /// member. Entries not addressed to this member are skipped — the
    /// *sparseness property* of rekey payloads (§2.2 of the paper).
    ///
    /// Returns the number of entries this member decrypted.
    ///
    /// # Errors
    ///
    /// Returns [`KeyTreeError::Crypto`] if an entry addressed to a key
    /// this member holds fails authentication (corrupted or forged
    /// message).
    pub fn process(&mut self, message: &RekeyMessage) -> Result<usize, KeyTreeError> {
        let mut decrypted = 0;
        for entry in &message.entries {
            self.processed_entries += 1;
            if self.try_entry(entry)? {
                decrypted += 1;
                self.decrypted_entries += 1;
            }
        }
        Ok(decrypted)
    }

    /// Processes only the given entries (used when the transport layer
    /// delivers a subset of packets).
    ///
    /// # Errors
    ///
    /// Same as [`GroupMember::process`].
    pub fn process_entries<'a, I>(&mut self, entries: I) -> Result<usize, KeyTreeError>
    where
        I: IntoIterator<Item = &'a RekeyEntry>,
    {
        let mut decrypted = 0;
        for entry in entries {
            self.processed_entries += 1;
            if self.try_entry(entry)? {
                decrypted += 1;
                self.decrypted_entries += 1;
            }
        }
        Ok(decrypted)
    }

    /// Forgets a key (e.g. after a manager signals that a node was
    /// retired). Primarily useful to bound memory in long simulations.
    pub fn forget(&mut self, node: NodeId) {
        self.keys.remove(&node);
    }

    /// Whether this member can decrypt at least one entry of the
    /// message — i.e. whether the message is "of interest" to it.
    pub fn is_interested(&self, message: &RekeyMessage) -> bool {
        message.entries.iter().any(|e| {
            self.keys
                .get(&e.under)
                .is_some_and(|(v, _)| *v == e.under_version)
                || (e.under_is_leaf && e.recipient == Some(self.id))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::LkhServer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn member_learns_path_keys_on_join() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut server = LkhServer::new(3, 0);
        let ik = Key::generate(&mut rng);
        let msg = server.join(MemberId(1), ik.clone(), &mut rng);
        let mut m = GroupMember::new(MemberId(1), ik);
        let n = m.process(&msg).unwrap();
        assert!(n >= 1);
        assert_eq!(m.key_for(server.root_node()), Some(server.root_key()));
    }

    #[test]
    fn uninterested_member_decrypts_nothing() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut server = LkhServer::new(3, 0);
        let ik = Key::generate(&mut rng);
        let msg = server.join(MemberId(1), ik, &mut rng);
        // A member with a different individual key decrypts nothing.
        let mut stranger = GroupMember::new(MemberId(2), Key::generate(&mut rng));
        assert_eq!(stranger.process(&msg).unwrap(), 0);
        assert_eq!(stranger.key_count(), 0);
    }

    #[test]
    fn forget_drops_a_key() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut server = LkhServer::new(3, 0);
        let ik = Key::generate(&mut rng);
        let msg = server.join(MemberId(1), ik.clone(), &mut rng);
        let mut m = GroupMember::new(MemberId(1), ik);
        m.process(&msg).unwrap();
        let root = server.root_node();
        assert!(m.key_for(root).is_some());
        m.forget(root);
        assert!(m.key_for(root).is_none());
    }

    #[test]
    fn interest_respects_recipient_addressing() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut server = LkhServer::new(3, 0);
        let ik = Key::generate(&mut rng);
        let msg = server.join(MemberId(1), ik.clone(), &mut rng);
        // The addressee is interested; a stranger with a different id
        // and key is not.
        let m = GroupMember::new(MemberId(1), ik);
        assert!(m.is_interested(&msg));
        let stranger = GroupMember::new(MemberId(2), Key::generate(&mut rng));
        assert!(!stranger.is_interested(&msg));
    }

    #[test]
    fn version_tracking_follows_rekeys() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut server = LkhServer::new(3, 0);
        let ik1 = Key::generate(&mut rng);
        let msg = server.join(MemberId(1), ik1.clone(), &mut rng);
        let mut m = GroupMember::new(MemberId(1), ik1);
        m.process(&msg).unwrap();
        let root = server.root_node();
        let v1 = m.version_for(root).unwrap();

        let msg = server.join(MemberId(2), Key::generate(&mut rng), &mut rng);
        m.process(&msg).unwrap();
        let v2 = m.version_for(root).unwrap();
        assert!(v2 > v1, "root version must advance: {v1} -> {v2}");
    }

    #[test]
    fn stats_track_entries() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut server = LkhServer::new(3, 0);
        let ik = Key::generate(&mut rng);
        let msg = server.join(MemberId(1), ik.clone(), &mut rng);
        let mut m = GroupMember::new(MemberId(1), ik);
        m.process(&msg).unwrap();
        let (seen, got) = m.stats();
        assert_eq!(seen as usize, msg.encrypted_key_count());
        assert!(got >= 1);
    }
}
