//! Group-oriented rekey messages (\[WGL98\]).
//!
//! A [`RekeyMessage`] is the unit a key server multicasts after a
//! (batched) membership change: a sequence of [`RekeyEntry`] items,
//! each carrying one updated key encrypted under one key its intended
//! audience already holds. Entries are ordered deepest-target-first so
//! that a member can process a message in a single pass (a parent's
//! new key is wrapped under a child's *new* key, whose entry appears
//! earlier).
//!
//! Each entry also carries metadata the reliable-transport layer needs
//! (\[SZJ02\]'s weighted key assignment): the number of members
//! interested in the entry (`audience`) and the depth of the target
//! key, which together determine how valuable the entry is.

use crate::{MemberId, NodeId};
use rekey_crypto::keywrap::{WrappedKey, WRAPPED_LEN};

pub mod codec;

pub use codec::ENTRY_HEADER_LEN;

/// One encrypted key in a rekey message: `{target}` encrypted under
/// the current key of `under`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RekeyEntry {
    /// The node whose new key this entry transports.
    pub target: NodeId,
    /// Version of the new key.
    pub target_version: u64,
    /// The node whose key encrypts this entry.
    pub under: NodeId,
    /// Version of the encrypting key the recipient must hold.
    pub under_version: u64,
    /// Whether `under` is a leaf (individual member key); members use
    /// this to recognise entries addressed directly to them.
    pub under_is_leaf: bool,
    /// For leaf-addressed entries, the member the entry is meant for —
    /// lets receivers skip decryption attempts on entries addressed to
    /// other members' individual keys.
    pub recipient: Option<MemberId>,
    /// Number of members that need this entry (the leaves under
    /// `under` at the time the message was built).
    pub audience: u32,
    /// Depth of `target` in its tree (root = 0). Deeper entries are
    /// needed by fewer members.
    pub target_depth: u32,
    /// The wrapped key material.
    pub wrapped: WrappedKey,
}

impl RekeyEntry {
    /// Serialized size of this entry in bytes.
    pub fn byte_len(&self) -> usize {
        ENTRY_HEADER_LEN + WRAPPED_LEN
    }
}

/// A multicast rekey message for one rekey event.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RekeyMessage {
    /// Monotone rekey epoch (one per batch interval).
    pub epoch: u64,
    /// Encrypted keys, ordered deepest-target-first.
    pub entries: Vec<RekeyEntry>,
}

impl RekeyMessage {
    /// Creates an empty message for `epoch`.
    pub fn new(epoch: u64) -> Self {
        RekeyMessage {
            epoch,
            entries: Vec::new(),
        }
    }

    /// Number of encrypted keys — the paper's key-server cost metric.
    pub fn encrypted_key_count(&self) -> usize {
        self.entries.len()
    }

    /// Total payload size in bytes.
    pub fn byte_len(&self) -> usize {
        self.entries.iter().map(RekeyEntry::byte_len).sum()
    }

    /// Whether the message carries no entries (no key changed).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Appends all entries of `other` after the entries of `self`.
    ///
    /// Used by group-key managers that compose several trees (e.g. the
    /// two-partition schemes): sub-tree messages come first, then the
    /// entries distributing the group DEK under the new sub-tree roots.
    /// Order is preserved, keeping the single-pass decryption property
    /// as long as `other`'s entries are only encrypted under keys
    /// established by `self` or already held.
    pub fn merge(&mut self, other: RekeyMessage) {
        self.entries.extend(other.entries);
    }

    /// Iterates over entries together with their index (used by
    /// transport packetization).
    pub fn iter(&self) -> impl Iterator<Item = (usize, &RekeyEntry)> {
        self.entries.iter().enumerate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_crypto::{keywrap, Key};

    fn entry(depth: u32) -> RekeyEntry {
        let kek = Key::from_bytes([1; 32]);
        let payload = Key::from_bytes([2; 32]);
        RekeyEntry {
            target: NodeId::from_parts(0, 1),
            target_version: 1,
            under: NodeId::from_parts(0, 2),
            under_version: 0,
            under_is_leaf: false,
            recipient: None,
            audience: 5,
            target_depth: depth,
            wrapped: keywrap::wrap_with_nonce(&kek, &payload, [0; 12]),
        }
    }

    #[test]
    fn counts_and_sizes() {
        let mut msg = RekeyMessage::new(3);
        assert!(msg.is_empty());
        msg.entries.push(entry(0));
        msg.entries.push(entry(1));
        assert_eq!(msg.encrypted_key_count(), 2);
        assert_eq!(msg.byte_len(), 2 * (ENTRY_HEADER_LEN + WRAPPED_LEN));
    }

    #[test]
    fn merge_preserves_order() {
        let mut a = RekeyMessage::new(1);
        a.entries.push(entry(2));
        let mut b = RekeyMessage::new(1);
        b.entries.push(entry(0));
        a.merge(b);
        assert_eq!(a.entries[0].target_depth, 2);
        assert_eq!(a.entries[1].target_depth, 0);
    }
}
