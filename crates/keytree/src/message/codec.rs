//! Versioned wire codec for rekey messages — the single source of
//! truth for the entry byte layout.
//!
//! Historically the entry format lived in `rekey_transport::packet`
//! while [`super::RekeyEntry::byte_len`] mirrored it through a
//! hand-synced `ENTRY_HEADER_LEN` constant ("kept in sync with the
//! transport crate's encoder"). This module replaces that pact: the
//! layout is defined once, next to the types it serializes, and the
//! transport crate delegates here.
//!
//! Two envelopes wrap sequences of entries, both led by a
//! [`WIRE_VERSION`] byte so the format can evolve without silent
//! misparses:
//!
//! - **block** (`version ‖ count:u32 ‖ entries`) — a packet-sized run
//!   of entries, used by `rekey_transport::packet::Packet::to_bytes`,
//! - **message** (`version ‖ epoch:u64 ‖ count:u32 ‖ entries`) — a
//!   whole [`RekeyMessage`], used for storage, digests, and replay.
//!
//! All integers are big-endian. One serialized entry is
//! [`ENTRY_WIRE_LEN`] bytes: an [`ENTRY_HEADER_LEN`]-byte metadata
//! header followed by the [`WRAPPED_LEN`]-byte wrapped key.

use super::{RekeyEntry, RekeyMessage};
use crate::{MemberId, NodeId};
use rekey_crypto::keywrap::{WrappedKey, WRAPPED_LEN};

/// Format version emitted by every encoder in this module. Decoders
/// reject anything else.
pub const WIRE_VERSION: u8 = 1;

/// Fixed per-entry metadata overhead on the wire: two node ids, two
/// versions, leaf flag, recipient flag + id, audience, depth — in
/// bytes.
pub const ENTRY_HEADER_LEN: usize = 8 + 8 + 8 + 8 + 1 + 1 + 8 + 4 + 4;

/// Serialized entry size: metadata header plus the wrapped key.
pub const ENTRY_WIRE_LEN: usize = ENTRY_HEADER_LEN + WRAPPED_LEN;

/// Envelope overhead of an entry block: version byte + entry count.
pub const BLOCK_HEADER_LEN: usize = 1 + 4;

/// Envelope overhead of a whole message: version byte + epoch + entry
/// count.
pub const MESSAGE_HEADER_LEN: usize = 1 + 8 + 4;

/// Appends a big-endian `u64` (shared by the durable-state codecs).
#[inline]
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Appends a big-endian `u32`.
#[inline]
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_be_bytes());
}

/// Reads a big-endian `u64`, advancing `buf`; `None` on truncation.
#[inline]
pub fn get_u64(buf: &mut &[u8]) -> Option<u64> {
    let (head, rest) = buf.split_first_chunk::<8>()?;
    *buf = rest;
    Some(u64::from_be_bytes(*head))
}

/// Reads a big-endian `u32`, advancing `buf`; `None` on truncation.
#[inline]
pub fn get_u32(buf: &mut &[u8]) -> Option<u32> {
    let (head, rest) = buf.split_first_chunk::<4>()?;
    *buf = rest;
    Some(u32::from_be_bytes(*head))
}

/// Reads one byte, advancing `buf`; `None` on truncation.
#[inline]
pub fn get_u8(buf: &mut &[u8]) -> Option<u8> {
    let (&head, rest) = buf.split_first()?;
    *buf = rest;
    Some(head)
}

/// Serializes one rekey entry into `buf` (no envelope).
pub fn encode_entry(entry: &RekeyEntry, buf: &mut Vec<u8>) {
    buf.reserve(ENTRY_WIRE_LEN);
    put_u64(buf, entry.target.0);
    put_u64(buf, entry.target_version);
    put_u64(buf, entry.under.0);
    put_u64(buf, entry.under_version);
    buf.push(u8::from(entry.under_is_leaf));
    buf.push(u8::from(entry.recipient.is_some()));
    put_u64(buf, entry.recipient.map(|m| m.0).unwrap_or(0));
    put_u32(buf, entry.audience);
    put_u32(buf, entry.target_depth);
    buf.extend_from_slice(&entry.wrapped.to_bytes());
}

/// Deserializes one rekey entry from `buf`, advancing it past the
/// consumed bytes.
///
/// Returns `None` on truncated or malformed input.
pub fn decode_entry(buf: &mut &[u8]) -> Option<RekeyEntry> {
    if buf.len() < ENTRY_WIRE_LEN {
        return None;
    }
    let target = NodeId(get_u64(buf)?);
    let target_version = get_u64(buf)?;
    let under = NodeId(get_u64(buf)?);
    let under_version = get_u64(buf)?;
    let under_is_leaf = get_u8(buf)? != 0;
    let has_recipient = get_u8(buf)? != 0;
    let recipient_raw = get_u64(buf)?;
    let recipient = has_recipient.then_some(MemberId(recipient_raw));
    let audience = get_u32(buf)?;
    let target_depth = get_u32(buf)?;
    let (wrapped_bytes, rest) = buf.split_first_chunk::<WRAPPED_LEN>()?;
    *buf = rest;
    let wrapped = WrappedKey::from_bytes(wrapped_bytes).ok()?;
    Some(RekeyEntry {
        target,
        target_version,
        under,
        under_version,
        under_is_leaf,
        recipient,
        audience,
        target_depth,
        wrapped,
    })
}

/// Serializes a block of entries into `buf`: version byte, entry
/// count, entries.
///
/// # Panics
///
/// Panics if the block holds more than `u32::MAX` entries.
pub fn encode_block<'a, I>(entries: I, buf: &mut Vec<u8>)
where
    I: IntoIterator<Item = &'a RekeyEntry>,
    I::IntoIter: ExactSizeIterator,
{
    let entries = entries.into_iter();
    buf.reserve(BLOCK_HEADER_LEN + entries.len() * ENTRY_WIRE_LEN);
    buf.push(WIRE_VERSION);
    put_u32(
        buf,
        u32::try_from(entries.len()).expect("block entry count fits u32"),
    );
    for entry in entries {
        encode_entry(entry, buf);
    }
}

/// Deserializes a block written by [`encode_block`], advancing `buf`
/// past the consumed bytes.
///
/// Returns `None` on a version mismatch, truncation, or a malformed
/// entry.
pub fn decode_block(buf: &mut &[u8]) -> Option<Vec<RekeyEntry>> {
    if get_u8(buf)? != WIRE_VERSION {
        return None;
    }
    let count = get_u32(buf)? as usize;
    let mut entries = Vec::with_capacity(count.min(buf.len() / ENTRY_WIRE_LEN + 1));
    for _ in 0..count {
        entries.push(decode_entry(buf)?);
    }
    Some(entries)
}

/// Serializes a whole message: version byte, epoch, entry count,
/// entries.
pub fn encode_message(message: &RekeyMessage) -> Vec<u8> {
    let mut buf = Vec::with_capacity(MESSAGE_HEADER_LEN + message.entries.len() * ENTRY_WIRE_LEN);
    buf.push(WIRE_VERSION);
    put_u64(&mut buf, message.epoch);
    put_u32(
        &mut buf,
        u32::try_from(message.entries.len()).expect("message entry count fits u32"),
    );
    for entry in &message.entries {
        encode_entry(entry, &mut buf);
    }
    buf
}

/// Deserializes a message written by [`encode_message`].
///
/// Returns `None` on a version mismatch, truncation, trailing bytes,
/// or a malformed entry.
pub fn decode_message(bytes: &[u8]) -> Option<RekeyMessage> {
    let mut buf = bytes;
    if get_u8(&mut buf)? != WIRE_VERSION {
        return None;
    }
    let epoch = get_u64(&mut buf)?;
    let count = get_u32(&mut buf)? as usize;
    let mut entries = Vec::with_capacity(count.min(buf.len() / ENTRY_WIRE_LEN + 1));
    for _ in 0..count {
        entries.push(decode_entry(&mut buf)?);
    }
    buf.is_empty().then_some(RekeyMessage { epoch, entries })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rekey_crypto::{keywrap, Key};

    fn entry(i: u64) -> RekeyEntry {
        let kek = Key::from_bytes([i as u8; 32]);
        let payload = Key::from_bytes([0xA5; 32]);
        RekeyEntry {
            target: NodeId::from_parts(1, i),
            target_version: i * 3,
            under: NodeId::from_parts(2, i + 1),
            under_version: i,
            under_is_leaf: i.is_multiple_of(2),
            recipient: (i.is_multiple_of(3)).then_some(MemberId(i)),
            audience: i as u32 + 1,
            target_depth: i as u32 % 7,
            wrapped: keywrap::wrap_with_nonce(&kek, &payload, [i as u8; 12]),
        }
    }

    #[test]
    fn entry_roundtrip_and_len() {
        for i in 0..8 {
            let e = entry(i);
            let mut buf = Vec::new();
            encode_entry(&e, &mut buf);
            assert_eq!(buf.len(), ENTRY_WIRE_LEN);
            let mut slice = buf.as_slice();
            assert_eq!(decode_entry(&mut slice), Some(e));
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn message_roundtrip() {
        let msg = RekeyMessage {
            epoch: 42,
            entries: (0..5).map(entry).collect(),
        };
        let bytes = encode_message(&msg);
        assert_eq!(bytes.len(), MESSAGE_HEADER_LEN + 5 * ENTRY_WIRE_LEN);
        assert_eq!(decode_message(&bytes), Some(msg));
    }

    #[test]
    fn block_roundtrip() {
        let entries: Vec<RekeyEntry> = (0..4).map(entry).collect();
        let mut buf = Vec::new();
        encode_block(&entries, &mut buf);
        let mut slice = buf.as_slice();
        assert_eq!(decode_block(&mut slice), Some(entries));
        assert!(slice.is_empty());
    }

    #[test]
    fn bad_version_rejected() {
        let msg = RekeyMessage {
            epoch: 1,
            entries: vec![entry(0)],
        };
        let mut bytes = encode_message(&msg);
        bytes[0] = WIRE_VERSION.wrapping_add(1);
        assert_eq!(decode_message(&bytes), None);
        let mut block = Vec::new();
        encode_block(&msg.entries, &mut block);
        block[0] = 0xFF;
        assert_eq!(decode_block(&mut block.as_slice()), None);
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let msg = RekeyMessage {
            epoch: 7,
            entries: (0..3).map(entry).collect(),
        };
        let bytes = encode_message(&msg);
        for cut in 0..bytes.len() {
            assert_eq!(decode_message(&bytes[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage is rejected too.
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(decode_message(&padded), None);
    }
}
