//! Identifier newtypes shared across the workspace.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a group member (receiver).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct MemberId(pub u64);

impl fmt::Display for MemberId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

impl From<u64> for MemberId {
    fn from(v: u64) -> Self {
        MemberId(v)
    }
}

/// Identifies a key node (a key slot in a logical key tree, a queue
/// slot, or a manager-level key such as the group DEK).
///
/// Node ids are globally unique and never reused. The top 24 bits are
/// a *namespace* distinguishing independent trees managed by one
/// group-key manager (e.g. the S-partition, the L-partition, and the
/// DEK), so their rekey messages can be merged without collisions.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Builds a node id from a namespace and a per-namespace counter.
    ///
    /// # Panics
    ///
    /// Panics if `counter` overflows the 40-bit per-namespace space —
    /// unreachable in practice (>10^12 nodes).
    pub fn from_parts(namespace: u32, counter: u64) -> Self {
        assert!(counter < (1u64 << 40), "node counter overflow");
        NodeId(((namespace as u64) << 40) | counter)
    }

    /// The namespace this node id belongs to.
    pub fn namespace(self) -> u32 {
        (self.0 >> 40) as u32
    }

    /// The per-namespace counter component.
    pub fn counter(self) -> u64 {
        self.0 & ((1u64 << 40) - 1)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k{}.{}", self.namespace(), self.counter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip() {
        let id = NodeId::from_parts(7, 42);
        assert_eq!(id.namespace(), 7);
        assert_eq!(id.counter(), 42);
    }

    #[test]
    fn node_ids_distinct_across_namespaces() {
        assert_ne!(NodeId::from_parts(0, 1), NodeId::from_parts(1, 1));
    }

    #[test]
    #[should_panic(expected = "node counter overflow")]
    fn node_id_counter_overflow_panics() {
        NodeId::from_parts(0, 1u64 << 40);
    }

    #[test]
    fn display_forms() {
        assert_eq!(MemberId(3).to_string(), "u3");
        assert_eq!(NodeId::from_parts(1, 2).to_string(), "k1.2");
    }
}
