//! The logical key tree data structure.
//!
//! A [`KeyTree`] is a d-ary tree of key nodes maintained by the key
//! server. The root holds the (sub)group key, interior nodes hold
//! auxiliary key-encryption keys, and each leaf holds the individual
//! key shared between one member and the server (Fig. 1 of the paper).
//!
//! The tree keeps itself balanced on insertion by always descending
//! into the lightest subtree, and repairs itself on removal by
//! promoting single children of non-root interior nodes. Structure
//! mutation is separated from rekeying: mutating operations return the
//! list of surviving *dirty* ancestors whose keys must be refreshed;
//! [`crate::server::LkhServer`] turns those into rekey messages.

use crate::message::codec::{get_u32, get_u64, get_u8, put_u32, put_u64};
use crate::{KeyTreeError, MemberId, NodeId};
use rand::RngCore;
use rekey_crypto::Key;
use std::collections::HashMap;

/// Version byte leading a serialized [`KeyTree`].
pub const TREE_WIRE_VERSION: u8 = 1;

/// One node of the key tree.
#[derive(Debug, Clone)]
struct Node {
    id: NodeId,
    parent: Option<usize>,
    children: Vec<usize>,
    /// `Some` exactly for leaves.
    member: Option<MemberId>,
    key: Key,
    version: u64,
    /// Number of leaves in this node's subtree (1 for a leaf).
    leaf_count: usize,
}

/// A balanced d-ary logical key tree.
///
/// The root node always exists (it is created with the tree and its
/// [`NodeId`] never changes), even while the tree holds no members;
/// this lets a group-key manager wrap a data-encryption key under the
/// subtree root unconditionally.
#[derive(Debug, Clone)]
pub struct KeyTree {
    degree: usize,
    namespace: u32,
    slots: Vec<Option<Node>>,
    free: Vec<usize>,
    index_of: HashMap<NodeId, usize>,
    leaf_of: HashMap<MemberId, NodeId>,
    root: usize,
    next_counter: u64,
}

impl KeyTree {
    /// Creates an empty tree of the given degree whose node ids live in
    /// `namespace`.
    ///
    /// # Panics
    ///
    /// Panics if `degree < 2`.
    pub fn new<R: RngCore>(degree: usize, namespace: u32, rng: &mut R) -> Self {
        assert!(degree >= 2, "key tree degree must be at least 2");
        let mut tree = KeyTree {
            degree,
            namespace,
            slots: Vec::new(),
            free: Vec::new(),
            index_of: HashMap::new(),
            leaf_of: HashMap::new(),
            root: 0,
            next_counter: 0,
        };
        let root_id = tree.fresh_id();
        tree.root = tree.alloc(Node {
            id: root_id,
            parent: None,
            children: Vec::new(),
            member: None,
            key: Key::generate(rng),
            version: 0,
            leaf_count: 0,
        });
        tree
    }

    fn fresh_id(&mut self) -> NodeId {
        let id = NodeId::from_parts(self.namespace, self.next_counter);
        self.next_counter += 1;
        id
    }

    fn alloc(&mut self, node: Node) -> usize {
        let id = node.id;
        let idx = if let Some(idx) = self.free.pop() {
            self.slots[idx] = Some(node);
            idx
        } else {
            self.slots.push(Some(node));
            self.slots.len() - 1
        };
        self.index_of.insert(id, idx);
        idx
    }

    fn dealloc(&mut self, idx: usize) {
        if let Some(node) = self.slots[idx].take() {
            self.index_of.remove(&node.id);
            self.free.push(idx);
        }
    }

    fn node(&self, idx: usize) -> &Node {
        self.slots[idx].as_ref().expect("dangling node index")
    }

    fn node_mut(&mut self, idx: usize) -> &mut Node {
        self.slots[idx].as_mut().expect("dangling node index")
    }

    /// The tree degree d.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The namespace node ids are drawn from.
    pub fn namespace(&self) -> u32 {
        self.namespace
    }

    /// Id of the root node (stable for the lifetime of the tree).
    pub fn root_id(&self) -> NodeId {
        self.node(self.root).id
    }

    /// Current root (subgroup) key.
    pub fn root_key(&self) -> &Key {
        &self.node(self.root).key
    }

    /// Current version of the root key.
    pub fn root_version(&self) -> u64 {
        self.node(self.root).version
    }

    /// Number of members (leaves).
    pub fn member_count(&self) -> usize {
        self.leaf_of.len()
    }

    /// Whether `member` is in this tree.
    pub fn contains(&self, member: MemberId) -> bool {
        self.leaf_of.contains_key(&member)
    }

    /// Total number of live key nodes (including the root and leaves).
    pub fn node_count(&self) -> usize {
        self.index_of.len()
    }

    /// Height of the tree: number of edges on the longest root-to-leaf
    /// path (0 for an empty tree).
    pub fn height(&self) -> usize {
        fn depth_of(tree: &KeyTree, idx: usize) -> usize {
            tree.node(idx)
                .children
                .iter()
                .map(|&c| 1 + depth_of(tree, c))
                .max()
                .unwrap_or(0)
        }
        depth_of(self, self.root)
    }

    /// Key and version currently stored at `node`, if it exists.
    pub fn key_of(&self, node: NodeId) -> Option<(&Key, u64)> {
        let idx = *self.index_of.get(&node)?;
        let n = self.node(idx);
        Some((&n.key, n.version))
    }

    /// The member's leaf node id.
    pub fn leaf_of(&self, member: MemberId) -> Option<NodeId> {
        self.leaf_of.get(&member).copied()
    }

    /// Depth of `node` (root = 0), if it exists.
    pub fn depth_of(&self, node: NodeId) -> Option<usize> {
        let mut idx = *self.index_of.get(&node)?;
        let mut depth = 0;
        while let Some(parent) = self.node(idx).parent {
            idx = parent;
            depth += 1;
        }
        Some(depth)
    }

    /// Node ids on the path from the member's leaf (exclusive) to the
    /// root (inclusive) — exactly the auxiliary keys the member holds
    /// in addition to its individual key.
    pub fn path_of(&self, member: MemberId) -> Result<Vec<NodeId>, KeyTreeError> {
        let mut path = Vec::new();
        self.path_of_into(member, &mut path)?;
        Ok(path)
    }

    /// All members in the subtree rooted at `node` (empty if the node
    /// does not exist).
    pub fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        let mut members = Vec::new();
        self.members_under_into(node, &mut members);
        members
    }

    /// Appends all members in the subtree rooted at `node` to `out`
    /// (nothing if the node does not exist). Buffer-reusing variant of
    /// [`KeyTree::members_under`] for hot loops that query many nodes:
    /// the caller clears and reuses one `Vec` instead of allocating a
    /// fresh one per node.
    pub fn members_under_into(&self, node: NodeId, out: &mut Vec<MemberId>) {
        let Some(&start) = self.index_of.get(&node) else {
            return;
        };
        let mut stack = vec![start];
        while let Some(idx) = stack.pop() {
            let n = self.node(idx);
            if let Some(m) = n.member {
                out.push(m);
            }
            stack.extend(&n.children);
        }
    }

    /// Number of members under `node` in O(1) (0 if it doesn't exist).
    pub fn leaf_count_under(&self, node: NodeId) -> usize {
        self.index_of
            .get(&node)
            .map(|&idx| self.node(idx).leaf_count)
            .unwrap_or(0)
    }

    /// Iterates over all members currently in the tree.
    pub fn members(&self) -> impl Iterator<Item = MemberId> + '_ {
        self.leaf_of.keys().copied()
    }

    /// Iterates over the children of `node` with their current keys,
    /// versions, and subtree member counts, or `None` if the node does
    /// not exist. Allocation-free: the rekey engine walks every dirty
    /// node's children once per batch.
    pub(crate) fn children_of(
        &self,
        node: NodeId,
    ) -> Option<impl Iterator<Item = ChildInfo<'_>> + '_> {
        let &idx = self.index_of.get(&node)?;
        Some(self.node(idx).children.iter().map(move |&c| {
            let child = self.node(c);
            ChildInfo {
                id: child.id,
                key: &child.key,
                version: child.version,
                audience: child.leaf_count,
                is_leaf: child.member.is_some(),
                member: child.member,
            }
        }))
    }

    /// Appends the node ids on the path from the member's leaf
    /// (exclusive) to the root (inclusive) onto `out` — the
    /// allocation-free core of [`KeyTree::path_of`].
    pub(crate) fn path_of_into(
        &self,
        member: MemberId,
        out: &mut Vec<NodeId>,
    ) -> Result<(), KeyTreeError> {
        let leaf = self
            .leaf_of(member)
            .ok_or(KeyTreeError::UnknownMember(member))?;
        let mut idx = self.index_of[&leaf];
        while let Some(parent) = self.node(idx).parent {
            idx = parent;
            out.push(self.node(idx).id);
        }
        Ok(())
    }

    /// Installs a fresh random key at `node`, bumping its version.
    /// Returns the new version.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not exist (callers refresh only nodes
    /// they just observed alive).
    pub fn refresh_key<R: RngCore>(&mut self, node: NodeId, rng: &mut R) -> u64 {
        let idx = self.index_of[&node];
        let key = Key::generate(rng);
        let n = self.node_mut(idx);
        n.key = key;
        n.version += 1;
        n.version
    }

    /// Inserts a new member leaf holding `individual_key`.
    ///
    /// Returns the insertion outcome: the new leaf's node id, the list
    /// of surviving ancestors (from attach point up to the root) whose
    /// keys must be refreshed to preserve backward confidentiality, and
    /// the interior node created if a leaf had to be split.
    ///
    /// # Errors
    ///
    /// Returns [`KeyTreeError::DuplicateMember`] if the member is
    /// already in the tree.
    pub fn insert_member<R: RngCore>(
        &mut self,
        member: MemberId,
        individual_key: Key,
        rng: &mut R,
    ) -> Result<InsertOutcome, KeyTreeError> {
        if self.contains(member) {
            return Err(KeyTreeError::DuplicateMember(member));
        }

        // Descend into the lightest subtree until we find spare
        // capacity or a leaf to split.
        let mut at = self.root;
        loop {
            let n = self.node(at);
            if n.member.is_some() {
                break; // leaf: split below
            }
            if n.children.len() < self.degree {
                break; // interior node with spare capacity
            }
            at = *n
                .children
                .iter()
                .min_by_key(|&&c| self.node(c).leaf_count)
                .expect("full interior node has children");
        }

        let leaf_id = self.fresh_id();
        let leaf_key_version = 0;
        let attach_parent;
        let mut created_interior = None;
        if self.node(at).member.is_some() {
            // Split leaf `at`: interpose a new interior node holding
            // [old leaf, new leaf].
            let interior_id = self.fresh_id();
            let old_parent = self.node(at).parent.expect("root is never a leaf");
            let interior_idx = self.alloc(Node {
                id: interior_id,
                parent: Some(old_parent),
                children: vec![at],
                member: None,
                key: Key::generate(rng),
                version: 0,
                leaf_count: self.node(at).leaf_count,
            });
            let pos = self
                .node(old_parent)
                .children
                .iter()
                .position(|&c| c == at)
                .expect("child listed under parent");
            self.node_mut(old_parent).children[pos] = interior_idx;
            self.node_mut(at).parent = Some(interior_idx);
            attach_parent = interior_idx;
            created_interior = Some(interior_id);
        } else {
            attach_parent = at;
        }

        let leaf_idx = self.alloc(Node {
            id: leaf_id,
            parent: Some(attach_parent),
            children: Vec::new(),
            member: Some(member),
            key: individual_key,
            version: leaf_key_version,
            leaf_count: 1,
        });
        self.node_mut(attach_parent).children.push(leaf_idx);
        self.leaf_of.insert(member, leaf_id);

        // Update subtree leaf counts and collect the dirty path.
        let mut dirty = Vec::new();
        let mut walk = Some(attach_parent);
        while let Some(idx) = walk {
            self.node_mut(idx).leaf_count += 1;
            dirty.push(self.node(idx).id);
            walk = self.node(idx).parent;
        }
        Ok(InsertOutcome {
            leaf: leaf_id,
            dirty_path: dirty,
            created_interior,
        })
    }

    /// Attaches a new member leaf directly under `parent` if that node
    /// is still alive, interior, and has spare capacity — used by
    /// batched rekeying to re-use the slots vacated by departures
    /// (\[YLZL01\]), which keeps the batch cost at `Ne(N, L)` when
    /// `J = L`.
    ///
    /// Returns `Ok(None)` when the slot is unusable (caller falls back
    /// to [`KeyTree::insert_member`]).
    ///
    /// # Errors
    ///
    /// Returns [`KeyTreeError::DuplicateMember`] if the member is
    /// already in the tree.
    pub fn insert_member_at(
        &mut self,
        member: MemberId,
        individual_key: Key,
        parent: NodeId,
    ) -> Result<Option<InsertOutcome>, KeyTreeError> {
        if self.contains(member) {
            return Err(KeyTreeError::DuplicateMember(member));
        }
        let Some(&parent_idx) = self.index_of.get(&parent) else {
            return Ok(None);
        };
        {
            let p = self.node(parent_idx);
            if p.member.is_some() || p.children.len() >= self.degree {
                return Ok(None);
            }
        }
        let leaf_id = self.fresh_id();
        let leaf_idx = self.alloc(Node {
            id: leaf_id,
            parent: Some(parent_idx),
            children: Vec::new(),
            member: Some(member),
            key: individual_key,
            version: 0,
            leaf_count: 1,
        });
        self.node_mut(parent_idx).children.push(leaf_idx);
        self.leaf_of.insert(member, leaf_id);

        let mut dirty = Vec::new();
        let mut walk = Some(parent_idx);
        while let Some(idx) = walk {
            self.node_mut(idx).leaf_count += 1;
            dirty.push(self.node(idx).id);
            walk = self.node(idx).parent;
        }
        Ok(Some(InsertOutcome {
            leaf: leaf_id,
            dirty_path: dirty,
            created_interior: None,
        }))
    }

    /// Removes a member's leaf.
    ///
    /// Returns the list of surviving ancestors whose keys must be
    /// refreshed to preserve forward confidentiality (every key the
    /// departed member knew that is still in use).
    ///
    /// # Errors
    ///
    /// Returns [`KeyTreeError::UnknownMember`] if the member is not in
    /// the tree.
    pub fn remove_member(&mut self, member: MemberId) -> Result<Vec<NodeId>, KeyTreeError> {
        let leaf_id = self
            .leaf_of
            .remove(&member)
            .ok_or(KeyTreeError::UnknownMember(member))?;
        let leaf_idx = self.index_of[&leaf_id];
        let parent_idx = self.node(leaf_idx).parent.expect("leaf has a parent");

        // Detach and free the leaf.
        let pos = self
            .node(parent_idx)
            .children
            .iter()
            .position(|&c| c == leaf_idx)
            .expect("leaf listed under parent");
        self.node_mut(parent_idx).children.remove(pos);
        self.dealloc(leaf_idx);

        // Decrement leaf counts up to the root.
        let mut walk = Some(parent_idx);
        while let Some(idx) = walk {
            self.node_mut(idx).leaf_count -= 1;
            walk = self.node(idx).parent;
        }

        // Repair: a non-root interior node with a single child is
        // redundant; promote the child into its place.
        let mut dirty_start = parent_idx;
        let parent = self.node(parent_idx);
        if let (Some(grand), 1) = (parent.parent, parent.children.len()) {
            let only_child = parent.children[0];
            let pos = self
                .node(grand)
                .children
                .iter()
                .position(|&c| c == parent_idx)
                .expect("parent listed under grandparent");
            self.node_mut(grand).children[pos] = only_child;
            self.node_mut(only_child).parent = Some(grand);
            self.dealloc(parent_idx);
            dirty_start = grand;
        }

        let mut dirty = Vec::new();
        let mut walk = Some(dirty_start);
        while let Some(idx) = walk {
            dirty.push(self.node(idx).id);
            walk = self.node(idx).parent;
        }
        Ok(dirty)
    }

    /// Serializes the tree's *logical* state onto `buf`: degree,
    /// namespace, id counter, and every live node (id, member, key,
    /// version) in breadth-first order with per-parent child order
    /// preserved.
    ///
    /// Child order is semantically significant — insertion descends
    /// into the first lightest subtree and batch planning walks
    /// children in order, so a decoded tree reproduces the original's
    /// future behaviour byte for byte. Physical slot indices and the
    /// free list are *not* serialized; they never influence decisions.
    ///
    /// The format follows the `message::codec` conventions: a leading
    /// version byte ([`TREE_WIRE_VERSION`]) and big-endian integers.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.push(TREE_WIRE_VERSION);
        put_u32(buf, self.degree as u32);
        put_u32(buf, self.namespace);
        put_u64(buf, self.next_counter);
        put_u32(buf, self.node_count() as u32);
        // Breadth-first walk; each record names its parent by the
        // parent's position in this stream (u32::MAX for the root).
        let mut order: Vec<usize> = Vec::with_capacity(self.node_count());
        let mut pos_of: HashMap<usize, u32> = HashMap::with_capacity(self.node_count());
        order.push(self.root);
        pos_of.insert(self.root, 0);
        let mut at = 0;
        while at < order.len() {
            let idx = order[at];
            let n = self.node(idx);
            let parent_pos = n.parent.map(|p| pos_of[&p]).unwrap_or(u32::MAX);
            put_u64(buf, n.id.0);
            put_u32(buf, parent_pos);
            match n.member {
                Some(m) => {
                    buf.push(1);
                    put_u64(buf, m.0);
                }
                None => buf.push(0),
            }
            buf.extend_from_slice(n.key.as_bytes());
            put_u64(buf, n.version);
            for &c in &n.children {
                pos_of.insert(c, order.len() as u32);
                order.push(c);
            }
            at += 1;
        }
    }

    /// Decodes a tree serialized by [`KeyTree::encode_into`],
    /// advancing `buf` past it. Returns `None` on truncation, an
    /// unknown version, or a structurally invalid node table (bad
    /// parent reference, duplicate id/member, leaf with children,
    /// root marked as a leaf).
    pub fn decode(buf: &mut &[u8]) -> Option<KeyTree> {
        if get_u8(buf)? != TREE_WIRE_VERSION {
            return None;
        }
        let degree = get_u32(buf)? as usize;
        if degree < 2 {
            return None;
        }
        let namespace = get_u32(buf)?;
        let next_counter = get_u64(buf)?;
        let count = get_u32(buf)? as usize;
        if count == 0 {
            return None;
        }
        let mut tree = KeyTree {
            degree,
            namespace,
            slots: Vec::with_capacity(count),
            free: Vec::new(),
            index_of: HashMap::with_capacity(count),
            leaf_of: HashMap::new(),
            root: 0,
            next_counter,
        };
        for i in 0..count {
            let id = NodeId(get_u64(buf)?);
            let parent_pos = get_u32(buf)?;
            let parent = if parent_pos == u32::MAX {
                // Only the first record may be the root.
                if i != 0 {
                    return None;
                }
                None
            } else {
                // Breadth-first order: parents strictly precede their
                // children in the stream.
                if parent_pos as usize >= i {
                    return None;
                }
                Some(parent_pos as usize)
            };
            let member = match get_u8(buf)? {
                0 => None,
                1 => Some(MemberId(get_u64(buf)?)),
                _ => return None,
            };
            if i == 0 && member.is_some() {
                return None; // the root is never a leaf
            }
            let (key_bytes, rest) = buf.split_first_chunk::<32>()?;
            *buf = rest;
            let version = get_u64(buf)?;
            if tree.index_of.insert(id, i).is_some() {
                return None;
            }
            if let Some(m) = member {
                if tree.leaf_of.insert(m, id).is_some() {
                    return None;
                }
            }
            if let Some(p) = parent {
                let parent_node = tree.slots[p].as_mut()?;
                if parent_node.member.is_some() {
                    return None; // leaves have no children
                }
                parent_node.children.push(i);
            }
            tree.slots.push(Some(Node {
                id,
                parent,
                children: Vec::new(),
                member,
                key: Key::from_bytes(*key_bytes),
                version,
                leaf_count: usize::from(member.is_some()),
            }));
        }
        // Children appear after their parents, so one reverse sweep
        // settles every subtree leaf count.
        for i in (1..count).rev() {
            let (leaves, parent) = {
                let n = tree.slots[i].as_ref()?;
                (n.leaf_count, n.parent?)
            };
            tree.slots[parent].as_mut()?.leaf_count += leaves;
        }
        Some(tree)
    }

    /// Verifies internal structural invariants; used by tests.
    ///
    /// # Panics
    ///
    /// Panics (with a description) if any invariant is violated.
    pub fn check_invariants(&self) {
        assert!(self.node(self.root).parent.is_none(), "root has a parent");
        assert!(
            self.node(self.root).member.is_none(),
            "root must not be a leaf"
        );
        let mut seen_members = 0usize;
        let mut stack = vec![self.root];
        while let Some(idx) = stack.pop() {
            let n = self.node(idx);
            assert_eq!(
                self.index_of.get(&n.id),
                Some(&idx),
                "id index out of sync for {}",
                n.id
            );
            if let Some(m) = n.member {
                assert!(n.children.is_empty(), "leaf {m} has children");
                assert_eq!(n.leaf_count, 1, "leaf {m} leaf_count");
                assert_eq!(self.leaf_of.get(&m), Some(&n.id), "leaf map out of sync");
                seen_members += 1;
            } else {
                assert!(
                    n.children.len() <= self.degree,
                    "node {} exceeds degree",
                    n.id
                );
                if idx != self.root {
                    assert!(
                        n.children.len() >= 2,
                        "non-root interior node {} has {} children",
                        n.id,
                        n.children.len()
                    );
                }
                let sum: usize = n.children.iter().map(|&c| self.node(c).leaf_count).sum();
                assert_eq!(n.leaf_count, sum, "leaf_count mismatch at {}", n.id);
                for &c in &n.children {
                    assert_eq!(
                        self.node(c).parent,
                        Some(idx),
                        "child/parent link broken at {}",
                        n.id
                    );
                    stack.push(c);
                }
            }
        }
        assert_eq!(seen_members, self.leaf_of.len(), "member count mismatch");
    }
}

/// Result of [`KeyTree::insert_member`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Node id of the member's new leaf.
    pub leaf: NodeId,
    /// Surviving ancestors of the new leaf (attach point first, root
    /// last) whose keys must be refreshed.
    pub dirty_path: Vec<NodeId>,
    /// Interior node created if insertion split a leaf.
    pub created_interior: Option<NodeId>,
}

/// Per-child view used by the server when emitting rekey entries.
#[derive(Debug)]
pub(crate) struct ChildInfo<'a> {
    pub id: NodeId,
    pub key: &'a Key,
    pub version: u64,
    pub audience: usize,
    pub is_leaf: bool,
    pub member: Option<MemberId>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    fn build(degree: usize, n: u64) -> (KeyTree, StdRng) {
        let mut rng = rng();
        let mut tree = KeyTree::new(degree, 0, &mut rng);
        for i in 0..n {
            let key = Key::generate(&mut rng);
            tree.insert_member(MemberId(i), key, &mut rng).unwrap();
        }
        (tree, rng)
    }

    #[test]
    fn empty_tree_has_root_and_no_members() {
        let mut rng = rng();
        let tree = KeyTree::new(4, 3, &mut rng);
        assert_eq!(tree.member_count(), 0);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.height(), 0);
        assert_eq!(tree.root_id().namespace(), 3);
        tree.check_invariants();
    }

    #[test]
    fn insert_grows_balanced() {
        let (tree, _) = build(4, 64);
        tree.check_invariants();
        assert_eq!(tree.member_count(), 64);
        // 64 members in a degree-4 tree fits in height 3.
        assert!(tree.height() <= 4, "height {} too large", tree.height());
    }

    #[test]
    fn insert_reports_dirty_path_to_root() {
        let (mut tree, mut rng) = build(3, 9);
        let outcome = tree
            .insert_member(MemberId(100), Key::generate(&mut rng), &mut rng)
            .unwrap();
        assert_eq!(*outcome.dirty_path.last().unwrap(), tree.root_id());
        // The dirty list is exactly the new member's path.
        let path = tree.path_of(MemberId(100)).unwrap();
        assert_eq!(outcome.dirty_path, path);
        assert_eq!(tree.leaf_of(MemberId(100)), Some(outcome.leaf));
    }

    #[test]
    fn insert_reports_created_interior_on_split() {
        // Fill the root of a degree-2 tree, then the next insert must
        // split a leaf and report the created interior node.
        let (mut tree, mut rng) = build(2, 2);
        let outcome = tree
            .insert_member(MemberId(50), Key::generate(&mut rng), &mut rng)
            .unwrap();
        let created = outcome.created_interior.expect("split expected");
        assert!(tree.key_of(created).is_some());
        assert!(outcome.dirty_path.contains(&created));
        tree.check_invariants();
    }

    #[test]
    fn duplicate_insert_rejected() {
        let (mut tree, mut rng) = build(4, 4);
        let err = tree
            .insert_member(MemberId(0), Key::generate(&mut rng), &mut rng)
            .unwrap_err();
        assert_eq!(err, KeyTreeError::DuplicateMember(MemberId(0)));
    }

    #[test]
    fn remove_unknown_rejected() {
        let (mut tree, _) = build(4, 4);
        let err = tree.remove_member(MemberId(77)).unwrap_err();
        assert_eq!(err, KeyTreeError::UnknownMember(MemberId(77)));
    }

    #[test]
    fn remove_repairs_structure() {
        let (mut tree, _) = build(4, 64);
        for i in 0..32 {
            tree.remove_member(MemberId(i)).unwrap();
            tree.check_invariants();
        }
        assert_eq!(tree.member_count(), 32);
    }

    #[test]
    fn remove_all_members_leaves_empty_root() {
        let (mut tree, _) = build(3, 10);
        for i in 0..10 {
            tree.remove_member(MemberId(i)).unwrap();
        }
        assert_eq!(tree.member_count(), 0);
        assert_eq!(tree.node_count(), 1);
        tree.check_invariants();
    }

    #[test]
    fn dirty_path_excludes_promoted_nodes() {
        // Build a minimal tree where removal triggers promotion, and
        // verify every reported dirty node is still alive.
        let (mut tree, _) = build(2, 5);
        for i in 0..4 {
            let dirty = tree.remove_member(MemberId(i)).unwrap();
            for node in dirty {
                assert!(tree.key_of(node).is_some(), "dirty node {node} is dead");
            }
            tree.check_invariants();
        }
    }

    #[test]
    fn refresh_key_bumps_version_and_changes_key() {
        let (mut tree, mut rng) = build(4, 4);
        let root = tree.root_id();
        let before = tree.root_key().clone();
        let v0 = tree.root_version();
        let v1 = tree.refresh_key(root, &mut rng);
        assert_eq!(v1, v0 + 1);
        assert_ne!(tree.root_key(), &before);
    }

    #[test]
    fn members_under_root_is_everyone() {
        let (tree, _) = build(4, 20);
        let mut all = tree.members_under(tree.root_id());
        all.sort();
        let expected: Vec<_> = (0..20).map(MemberId).collect();
        assert_eq!(all, expected);
        assert_eq!(tree.leaf_count_under(tree.root_id()), 20);
    }

    #[test]
    fn path_keys_exist() {
        let (tree, _) = build(4, 30);
        let path = tree.path_of(MemberId(7)).unwrap();
        assert!(!path.is_empty());
        for node in &path {
            assert!(tree.key_of(*node).is_some());
        }
        assert_eq!(*path.last().unwrap(), tree.root_id());
    }

    #[test]
    fn height_logarithmic_after_churn() {
        use std::collections::VecDeque;
        let (mut tree, mut rng) = build(4, 256);
        let mut present: VecDeque<MemberId> = (0..256).map(MemberId).collect();
        let mut next_id = 1000u64;
        // Churn: each round evict the 128 oldest members and admit
        // 128 fresh ones.
        for _ in 0..4 {
            for _ in 0..128 {
                let m = present.pop_front().unwrap();
                tree.remove_member(m).unwrap();
            }
            for _ in 0..128 {
                let m = MemberId(next_id);
                next_id += 1;
                tree.insert_member(m, Key::generate(&mut rng), &mut rng)
                    .unwrap();
                present.push_back(m);
            }
            tree.check_invariants();
        }
        assert_eq!(tree.member_count(), 256);
        // log4(256) = 4; allow slack for churn-induced imbalance.
        assert!(tree.height() <= 8, "height {} too large", tree.height());
    }

    #[test]
    fn insert_at_reuses_vacated_slot() {
        let (mut tree, mut rng) = build(4, 64);
        let parent = tree.path_of(MemberId(10)).unwrap()[0];
        let dirty = tree.remove_member(MemberId(10)).unwrap();
        assert_eq!(dirty[0], parent);
        let outcome = tree
            .insert_member_at(MemberId(999), Key::generate(&mut rng), parent)
            .unwrap()
            .expect("slot usable");
        // The joiner's dirty path equals the leaver's dirty path.
        assert_eq!(outcome.dirty_path, dirty);
        assert!(outcome.created_interior.is_none());
        tree.check_invariants();
    }

    #[test]
    fn insert_at_rejects_full_or_dead_slots() {
        let (mut tree, mut rng) = build(4, 64);
        // A full interior node is unusable.
        let full_parent = tree.path_of(MemberId(0)).unwrap()[0];
        assert!(tree
            .insert_member_at(MemberId(999), Key::generate(&mut rng), full_parent)
            .unwrap()
            .is_none());
        // A dead node is unusable.
        let dead = NodeId::from_parts(0, 9999);
        assert!(tree
            .insert_member_at(MemberId(999), Key::generate(&mut rng), dead)
            .unwrap()
            .is_none());
        // A leaf is unusable.
        let leaf = tree.leaf_of(MemberId(1)).unwrap();
        assert!(tree
            .insert_member_at(MemberId(999), Key::generate(&mut rng), leaf)
            .unwrap()
            .is_none());
        // Duplicate members are rejected outright.
        assert!(matches!(
            tree.insert_member_at(MemberId(1), Key::generate(&mut rng), full_parent),
            Err(KeyTreeError::DuplicateMember(_))
        ));
    }

    #[test]
    fn depth_of_root_is_zero() {
        let (tree, _) = build(4, 10);
        assert_eq!(tree.depth_of(tree.root_id()), Some(0));
        let leaf = tree.leaf_of(MemberId(0)).unwrap();
        assert!(tree.depth_of(leaf).unwrap() >= 1);
    }
}
