//! Logical key hierarchies (LKH) for scalable secure-multicast group
//! rekeying.
//!
//! This crate implements the substrate that the paper *"Performance
//! Optimizations for Group Key Management Schemes for Secure
//! Multicast"* (Zhu, Setia, Jajodia; ICDCS 2003) builds on:
//!
//! - [`tree::KeyTree`] — a balanced d-ary logical key tree whose root
//!   is a (sub)group key, whose leaves are individual member keys, and
//!   whose interior nodes are auxiliary key-encryption keys,
//! - [`server::LkhServer`] — the key-server side: single and
//!   **periodic batched** rekeying (\[SKJ00, YLZL01\]) producing
//!   group-oriented rekey messages (\[WGL98\]),
//! - [`member::GroupMember`] — the receiver side: processes rekey
//!   messages, maintaining exactly the keys on its leaf-to-root path,
//! - [`queue::KeyQueue`] — the linear-queue partition used by the
//!   paper's QT-scheme for short-duration members,
//! - [`oft`] — one-way function trees \[BM00\], the alternative
//!   hierarchy the paper notes its optimizations also apply to.
//!
//! # Example
//!
//! A key server admits three members, rekeys a batch with one
//! departure, and a remaining member recovers the new group key:
//!
//! ```
//! use rekey_keytree::{server::LkhServer, member::GroupMember, MemberId};
//! use rekey_crypto::Key;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let mut server = LkhServer::new(4, 0);
//!
//! let iks: Vec<Key> = (0..3).map(|_| Key::generate(&mut rng)).collect();
//! let joins: Vec<_> = (0..3u64)
//!     .map(|id| (MemberId(id), iks[id as usize].clone()))
//!     .collect();
//! let outcome = server.apply_batch(&joins, &[], &mut rng);
//!
//! let mut alice = GroupMember::new(MemberId(2), iks[2].clone());
//! alice.process(&outcome.message)?;
//!
//! // Member 0 departs; Alice follows the rekey.
//! let outcome = server.apply_batch(&[], &[MemberId(0)], &mut rng);
//! alice.process(&outcome.message)?;
//! assert_eq!(alice.key_for(server.root_node()), Some(server.root_key()));
//! # Ok::<(), rekey_keytree::KeyTreeError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod member;
pub mod message;
pub mod oft;
pub mod queue;
pub mod server;
pub mod tree;

mod ids;

pub use ids::{MemberId, NodeId};

use std::error::Error;
use std::fmt;

/// Errors produced by key-tree operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KeyTreeError {
    /// The member is not present in the tree / queue.
    UnknownMember(MemberId),
    /// The member is already present.
    DuplicateMember(MemberId),
    /// A rekey entry could not be decrypted with the keys held.
    Crypto(rekey_crypto::CryptoError),
    /// A rekey message referenced a key (node, version) the member
    /// does not hold; the message stream is out of sync.
    MissingKey {
        /// Node whose key was required.
        node: NodeId,
        /// Version that was required.
        version: u64,
    },
}

impl fmt::Display for KeyTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyTreeError::UnknownMember(m) => write!(f, "unknown member {m}"),
            KeyTreeError::DuplicateMember(m) => write!(f, "member {m} already present"),
            KeyTreeError::Crypto(e) => write!(f, "cryptographic failure: {e}"),
            KeyTreeError::MissingKey { node, version } => {
                write!(f, "missing key for node {node} version {version}")
            }
        }
    }
}

impl Error for KeyTreeError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KeyTreeError::Crypto(e) => Some(e),
            _ => None,
        }
    }
}

impl From<rekey_crypto::CryptoError> for KeyTreeError {
    fn from(e: rekey_crypto::CryptoError) -> Self {
        KeyTreeError::Crypto(e)
    }
}
