//! Property-based tests: structural invariants and end-to-end secrecy
//! under random operation sequences.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::server::LkhServer;
use rekey_keytree::tree::KeyTree;
use rekey_keytree::MemberId;

/// A randomized membership script: joins (true) and leaves (false,
/// removing the oldest present member).
fn script() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tree maintains its structural invariants under arbitrary
    /// join/leave interleavings.
    #[test]
    fn tree_invariants_hold(ops in script(), degree in 2usize..6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = KeyTree::new(degree, 0, &mut rng);
        let mut present: Vec<MemberId> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            if op || present.is_empty() {
                let m = MemberId(next);
                next += 1;
                tree.insert_member(m, Key::generate(&mut rng), &mut rng).unwrap();
                present.push(m);
            } else {
                let m = present.remove(0);
                tree.remove_member(m).unwrap();
            }
            tree.check_invariants();
        }
        prop_assert_eq!(tree.member_count(), present.len());
    }

    /// Tree height stays logarithmic under pure growth.
    #[test]
    fn growth_stays_balanced(n in 1usize..300, degree in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut tree = KeyTree::new(degree, 0, &mut rng);
        for i in 0..n {
            tree.insert_member(MemberId(i as u64), Key::generate(&mut rng), &mut rng).unwrap();
        }
        let ideal = (n.max(2) as f64).log(degree as f64).ceil() as usize;
        prop_assert!(tree.height() <= ideal + 2,
            "height {} vs ideal {} for n={} d={}", tree.height(), ideal, n, degree);
    }

    /// After any sequence of batches, every current member can derive
    /// the group key and every departed member cannot.
    #[test]
    fn end_to_end_secrecy(ops in script(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server = LkhServer::new(3, 0);
        let mut states: Vec<GroupMember> = Vec::new();
        let mut present: Vec<usize> = Vec::new();
        let mut departed: Vec<usize> = Vec::new();

        // Process ops in small batches of up to 4.
        let mut next = 0u64;
        for chunk in ops.chunks(4) {
            let mut joins = Vec::new();
            let mut leaves = Vec::new();
            for &op in chunk {
                if op || present.len() <= leaves.len() {
                    let ik = Key::generate(&mut rng);
                    joins.push((MemberId(next), ik.clone()));
                    states.push(GroupMember::new(MemberId(next), ik));
                    next += 1;
                } else {
                    let idx = present[leaves.len()];
                    leaves.push(MemberId(states[idx].id().0));
                }
            }
            let leaving: Vec<usize> = present
                .iter()
                .copied()
                .filter(|&i| leaves.contains(&states[i].id()))
                .collect();
            present.retain(|i| !leaving.contains(i));
            for (id, _) in &joins {
                present.push(states.iter().position(|s| s.id() == *id).unwrap());
            }
            departed.extend(leaving);

            let outcome = server.apply_batch(&joins, &leaves, &mut rng);
            // Everyone — current and departed — sees the multicast.
            for s in states.iter_mut() {
                let _ = s.process(&outcome.message);
            }
        }

        let root = server.root_node();
        for &i in &present {
            prop_assert_eq!(
                states[i].key_for(root), Some(server.root_key()),
                "member {} lost sync", states[i].id());
        }
        for &i in &departed {
            prop_assert_ne!(
                states[i].key_for(root), Some(server.root_key()),
                "departed member {} still holds the group key", states[i].id());
        }
    }

    /// The parallel encryption engine is an implementation detail:
    /// for any membership script, any degree, and any worker count the
    /// emitted rekey messages are byte-identical to the sequential
    /// (1-worker) build, epoch by epoch.
    #[test]
    fn parallel_rekey_is_byte_identical(
        ops in script(),
        degree in 2usize..6,
        workers in 2usize..10,
        seed in any::<u64>(),
    ) {
        let run = |worker_count: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut server = LkhServer::new(degree, 0);
            server.set_parallelism(worker_count);
            let mut present: Vec<MemberId> = Vec::new();
            let mut next = 0u64;
            let mut messages = Vec::new();
            // A large pure-join bootstrap pushes the plan size past
            // the engine's inline-execution threshold, so the worker
            // pool actually runs.
            let bootstrap: Vec<(MemberId, Key)> = (0..96)
                .map(|_| {
                    let m = MemberId(next);
                    next += 1;
                    present.push(m);
                    (m, Key::generate(&mut rng))
                })
                .collect();
            messages.push(server.apply_batch(&bootstrap, &[], &mut rng).message);
            for chunk in ops.chunks(6) {
                let mut joins = Vec::new();
                let mut leaves = Vec::new();
                for &op in chunk {
                    if op || present.len() <= leaves.len() {
                        let m = MemberId(next);
                        next += 1;
                        joins.push((m, Key::generate(&mut rng)));
                    } else {
                        leaves.push(present[leaves.len()]);
                    }
                }
                present.retain(|m| !leaves.contains(m));
                present.extend(joins.iter().map(|&(m, _)| m));
                messages.push(server.apply_batch(&joins, &leaves, &mut rng).message);
            }
            messages
        };
        let sequential = run(1);
        let parallel = run(workers);
        prop_assert_eq!(sequential.len(), parallel.len());
        for (epoch, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(s, p, "messages diverged at epoch {} with {} workers", epoch, workers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Adversarial receiver hardening: between legitimate multicasts a
    /// member is fed replays of arbitrary earlier messages with their
    /// entries permuted (stale versions, out-of-order, re-addressed
    /// noise). Processing must never error, never downgrade any held
    /// key version, and never break the member's sync with the server.
    #[test]
    fn replays_and_permutations_never_downgrade(
        ops in script(),
        seed in any::<u64>(),
        noise_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server = LkhServer::new(3, 0);

        // Member 0 joins first and never leaves; it is the receiver
        // under attack.
        let ik = Key::generate(&mut rng);
        let mut member = GroupMember::new(MemberId(0), ik.clone());
        let bootstrap = server.apply_batch(&[(MemberId(0), ik)], &[], &mut rng);

        // Build the full legitimate message history from churn around
        // member 0, snapshotting the root key at every epoch (the
        // member is replayed through the history below, so sync is
        // judged against the root of the *same* epoch).
        let mut roots = vec![(server.root_node(), server.root_key().clone())];
        let mut history = vec![bootstrap.message];
        let mut present: Vec<MemberId> = Vec::new();
        let mut next = 1u64;
        for chunk in ops.chunks(3) {
            let mut joins = Vec::new();
            let mut leaves = Vec::new();
            for &op in chunk {
                if op || present.len() <= leaves.len() {
                    let m = MemberId(next);
                    next += 1;
                    joins.push((m, Key::generate(&mut rng)));
                } else {
                    leaves.push(present[leaves.len()]);
                }
            }
            present.retain(|m| !leaves.contains(m));
            present.extend(joins.iter().map(|&(m, _)| m));
            history.push(server.apply_batch(&joins, &leaves, &mut rng).message);
            roots.push((server.root_node(), server.root_key().clone()));
        }

        let mut noise = StdRng::seed_from_u64(noise_seed);
        for idx in 0..history.len() {
            member.process(&history[idx])
                .expect("legitimate message must be accepted");
            let snapshot: std::collections::BTreeMap<_, _> =
                member.held_keys().collect();

            // Replay a random earlier (or current) message with its
            // entries shuffled.
            let pick = noise.gen_range(0..idx + 1);
            let mut replay = history[pick].clone();
            let n = replay.entries.len();
            for i in (1..n).rev() {
                let j = noise.gen_range(0..i + 1);
                replay.entries.swap(i, j);
            }
            member.process(&replay)
                .expect("replayed/permuted message must not error");

            for (node, version) in member.held_keys() {
                if let Some(&held) = snapshot.get(&node) {
                    prop_assert!(
                        version >= held,
                        "replay downgraded {node:?} from {held} to {version}"
                    );
                }
            }
            let (root, ref key) = roots[idx];
            prop_assert_eq!(
                member.key_for(root),
                Some(key),
                "noise broke the member's sync at epoch {}", idx
            );
        }
    }

    /// A fresh receiver fed a *permuted* message may miss keys (the
    /// single-pass contract needs deepest-first order) but must not
    /// panic, error, or end up holding a key version above what the
    /// in-order message grants; reprocessing the original message then
    /// completes its state exactly.
    #[test]
    fn permuted_bootstrap_is_safe_and_recoverable(
        n in 2usize..40,
        seed in any::<u64>(),
        noise_seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server = LkhServer::new(3, 0);
        let joins: Vec<(MemberId, Key)> = (0..n as u64)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        let out = server.apply_batch(&joins, &[], &mut rng);

        let mut reference = GroupMember::new(MemberId(0), joins[0].1.clone());
        reference.process(&out.message).unwrap();
        let expected: std::collections::BTreeMap<_, _> =
            reference.held_keys().collect();

        let mut noise = StdRng::seed_from_u64(noise_seed);
        let mut shuffled = out.message.clone();
        let len = shuffled.entries.len();
        for i in (1..len).rev() {
            let j = noise.gen_range(0..i + 1);
            shuffled.entries.swap(i, j);
        }

        let mut victim = GroupMember::new(MemberId(0), joins[0].1.clone());
        victim.process(&shuffled).expect("permuted message must not error");
        for (node, version) in victim.held_keys() {
            prop_assert_eq!(
                Some(&version), expected.get(&node),
                "permutation invented key {node:?}@{version}"
            );
        }

        victim.process(&out.message).unwrap();
        let recovered: std::collections::BTreeMap<_, _> = victim.held_keys().collect();
        prop_assert_eq!(recovered, expected, "in-order reprocess must fully sync");
    }
}
