//! Property-based tests: structural invariants and end-to-end secrecy
//! under random operation sequences.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::server::LkhServer;
use rekey_keytree::tree::KeyTree;
use rekey_keytree::MemberId;

/// A randomized membership script: joins (true) and leaves (false,
/// removing the oldest present member).
fn script() -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), 1..120)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tree maintains its structural invariants under arbitrary
    /// join/leave interleavings.
    #[test]
    fn tree_invariants_hold(ops in script(), degree in 2usize..6, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tree = KeyTree::new(degree, 0, &mut rng);
        let mut present: Vec<MemberId> = Vec::new();
        let mut next = 0u64;
        for op in ops {
            if op || present.is_empty() {
                let m = MemberId(next);
                next += 1;
                tree.insert_member(m, Key::generate(&mut rng), &mut rng).unwrap();
                present.push(m);
            } else {
                let m = present.remove(0);
                tree.remove_member(m).unwrap();
            }
            tree.check_invariants();
        }
        prop_assert_eq!(tree.member_count(), present.len());
    }

    /// Tree height stays logarithmic under pure growth.
    #[test]
    fn growth_stays_balanced(n in 1usize..300, degree in 2usize..5) {
        let mut rng = StdRng::seed_from_u64(42);
        let mut tree = KeyTree::new(degree, 0, &mut rng);
        for i in 0..n {
            tree.insert_member(MemberId(i as u64), Key::generate(&mut rng), &mut rng).unwrap();
        }
        let ideal = (n.max(2) as f64).log(degree as f64).ceil() as usize;
        prop_assert!(tree.height() <= ideal + 2,
            "height {} vs ideal {} for n={} d={}", tree.height(), ideal, n, degree);
    }

    /// After any sequence of batches, every current member can derive
    /// the group key and every departed member cannot.
    #[test]
    fn end_to_end_secrecy(ops in script(), seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server = LkhServer::new(3, 0);
        let mut states: Vec<GroupMember> = Vec::new();
        let mut present: Vec<usize> = Vec::new();
        let mut departed: Vec<usize> = Vec::new();

        // Process ops in small batches of up to 4.
        let mut next = 0u64;
        for chunk in ops.chunks(4) {
            let mut joins = Vec::new();
            let mut leaves = Vec::new();
            for &op in chunk {
                if op || present.len() <= leaves.len() {
                    let ik = Key::generate(&mut rng);
                    joins.push((MemberId(next), ik.clone()));
                    states.push(GroupMember::new(MemberId(next), ik));
                    next += 1;
                } else {
                    let idx = present[leaves.len()];
                    leaves.push(MemberId(states[idx].id().0));
                }
            }
            let leaving: Vec<usize> = present
                .iter()
                .copied()
                .filter(|&i| leaves.contains(&states[i].id()))
                .collect();
            present.retain(|i| !leaving.contains(i));
            for (id, _) in &joins {
                present.push(states.iter().position(|s| s.id() == *id).unwrap());
            }
            departed.extend(leaving);

            let outcome = server.apply_batch(&joins, &leaves, &mut rng);
            // Everyone — current and departed — sees the multicast.
            for s in states.iter_mut() {
                let _ = s.process(&outcome.message);
            }
        }

        let root = server.root_node();
        for &i in &present {
            prop_assert_eq!(
                states[i].key_for(root), Some(server.root_key()),
                "member {} lost sync", states[i].id());
        }
        for &i in &departed {
            prop_assert_ne!(
                states[i].key_for(root), Some(server.root_key()),
                "departed member {} still holds the group key", states[i].id());
        }
    }

    /// The parallel encryption engine is an implementation detail:
    /// for any membership script, any degree, and any worker count the
    /// emitted rekey messages are byte-identical to the sequential
    /// (1-worker) build, epoch by epoch.
    #[test]
    fn parallel_rekey_is_byte_identical(
        ops in script(),
        degree in 2usize..6,
        workers in 2usize..10,
        seed in any::<u64>(),
    ) {
        let run = |worker_count: usize| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut server = LkhServer::new(degree, 0);
            server.set_parallelism(worker_count);
            let mut present: Vec<MemberId> = Vec::new();
            let mut next = 0u64;
            let mut messages = Vec::new();
            // A large pure-join bootstrap pushes the plan size past
            // the engine's inline-execution threshold, so the worker
            // pool actually runs.
            let bootstrap: Vec<(MemberId, Key)> = (0..96)
                .map(|_| {
                    let m = MemberId(next);
                    next += 1;
                    present.push(m);
                    (m, Key::generate(&mut rng))
                })
                .collect();
            messages.push(server.apply_batch(&bootstrap, &[], &mut rng).message);
            for chunk in ops.chunks(6) {
                let mut joins = Vec::new();
                let mut leaves = Vec::new();
                for &op in chunk {
                    if op || present.len() <= leaves.len() {
                        let m = MemberId(next);
                        next += 1;
                        joins.push((m, Key::generate(&mut rng)));
                    } else {
                        leaves.push(present[leaves.len()]);
                    }
                }
                present.retain(|m| !leaves.contains(m));
                present.extend(joins.iter().map(|&(m, _)| m));
                messages.push(server.apply_batch(&joins, &leaves, &mut rng).message);
            }
            messages
        };
        let sequential = run(1);
        let parallel = run(workers);
        prop_assert_eq!(sequential.len(), parallel.len());
        for (epoch, (s, p)) in sequential.iter().zip(&parallel).enumerate() {
            prop_assert_eq!(s, p, "messages diverged at epoch {} with {} workers", epoch, workers);
        }
    }
}
