//! Persistence round-trip tests: a decoded server must be
//! behaviourally indistinguishable from the original — not merely
//! structurally equal, but emitting byte-identical rekey messages for
//! any future batch sequence, because crash recovery replays epochs
//! through a decoded snapshot and the golden conformance digests pin
//! every output byte.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::Key;
use rekey_keytree::message::codec::encode_message;
use rekey_keytree::queue::KeyQueue;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;

/// Churns a server through `intervals` mixed batches and returns the
/// set of present members.
fn churn(server: &mut LkhServer, rng: &mut StdRng, intervals: usize) -> Vec<MemberId> {
    let mut present: Vec<MemberId> = Vec::new();
    let mut next = 0u64;
    for i in 0..intervals {
        let mut joins = Vec::new();
        for _ in 0..3 {
            let m = MemberId(next);
            next += 1;
            joins.push((m, Key::generate(rng)));
            present.push(m);
        }
        let leaves: Vec<MemberId> = if i % 2 == 1 && present.len() > 4 {
            vec![present.remove(0), present.remove(i % present.len())]
        } else {
            Vec::new()
        };
        server.apply_batch(&joins, &leaves, rng);
    }
    present
}

#[test]
fn decoded_server_emits_byte_identical_future() {
    for degree in [2usize, 3, 4] {
        let mut rng = StdRng::seed_from_u64(0xD00D + degree as u64);
        let mut original = LkhServer::new(degree, 7);
        let mut present = churn(&mut original, &mut rng, 12);

        let mut blob = Vec::new();
        original.encode_into(&mut blob);
        let mut cursor = &blob[..];
        let mut restored = LkhServer::decode(&mut cursor).expect("decodes");
        assert!(cursor.is_empty(), "decode consumed the whole blob");
        assert_eq!(restored.epoch(), original.epoch());
        assert_eq!(restored.member_count(), original.member_count());
        restored.tree().check_invariants();

        // Drive both copies through identical future batches with
        // cloned RNG streams; every emitted byte must match.
        let mut rng_restored = rng.clone();
        let mut next = 1_000_000u64;
        for i in 0..8 {
            let mut joins = Vec::new();
            for _ in 0..2 {
                let m = MemberId(next);
                next += 1;
                joins.push((m, Key::generate(&mut rng)));
                // Mirror the draw on the restored side's RNG.
                let _ = Key::generate(&mut rng_restored);
                present.push(m);
            }
            let leaves: Vec<MemberId> = if present.len() > 3 {
                vec![present.remove(i % present.len())]
            } else {
                Vec::new()
            };
            let a = original.apply_batch(&joins, &leaves, &mut rng);
            let b = restored.apply_batch(&joins, &leaves, &mut rng_restored);
            assert_eq!(
                encode_message(&a.message),
                encode_message(&b.message),
                "degree {degree}, post-restore batch {i}"
            );
        }
    }
}

#[test]
fn server_decode_rejects_tampering() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut server = LkhServer::new(3, 1);
    churn(&mut server, &mut rng, 6);
    let mut blob = Vec::new();
    server.encode_into(&mut blob);

    // Truncation at any point must fail cleanly, never panic.
    for cut in 0..blob.len() {
        let mut cursor = &blob[..cut];
        assert!(LkhServer::decode(&mut cursor).is_none(), "cut at {cut}");
    }
    // Unknown version bytes are rejected up front.
    let mut bad = blob.clone();
    bad[0] = 99;
    assert!(LkhServer::decode(&mut &bad[..]).is_none());
}

#[test]
fn queue_round_trip_preserves_arrival_order_and_ids() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut queue = KeyQueue::new(9);
    for m in 0..20u64 {
        queue
            .push(MemberId(m), Key::generate(&mut rng), m / 4)
            .unwrap();
    }
    // Mid-queue removals leave stale arrival entries behind; the codec
    // must compact them without reordering the survivors.
    queue.remove(MemberId(3)).unwrap();
    queue.remove(MemberId(11)).unwrap();

    let mut blob = Vec::new();
    queue.encode_into(&mut blob);
    let mut cursor = &blob[..];
    let mut restored = KeyQueue::decode(&mut cursor).expect("decodes");
    assert!(cursor.is_empty());

    assert_eq!(restored.namespace(), queue.namespace());
    assert_eq!(restored.len(), queue.len());
    assert_eq!(restored.members(), queue.members());
    for (a, b) in queue.iter().zip(restored.iter()) {
        assert_eq!(a.member, b.member);
        assert_eq!(a.node, b.node);
        assert_eq!(a.individual_key.as_bytes(), b.individual_key.as_bytes());
        assert_eq!(a.joined_epoch, b.joined_epoch);
    }

    // The id counter round-trips: the next slot in either copy gets
    // the same pseudo-node id.
    let k = Key::generate(&mut rng);
    let n1 = queue.push(MemberId(500), k.clone(), 9).unwrap();
    let n2 = restored.push(MemberId(500), k, 9).unwrap();
    assert_eq!(n1, n2);

    // Migration pops the same members in the same order.
    assert_eq!(
        queue
            .pop_older_than(2)
            .iter()
            .map(|s| s.member)
            .collect::<Vec<_>>(),
        restored
            .pop_older_than(2)
            .iter()
            .map(|s| s.member)
            .collect::<Vec<_>>()
    );
}
