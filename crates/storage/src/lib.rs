//! Pluggable durable-state backends for the key server.
//!
//! The key-management layer (`rekey-core`) treats durability as two
//! byte-level primitives behind the [`Storage`] trait:
//!
//! - a **write-ahead log** of opaque records, appended one per rekey
//!   epoch *before* the epoch's frame is released to the fan-out, and
//! - a **snapshot** slot holding one opaque full-state blob, replaced
//!   atomically every few epochs, after which the WAL is reset so its
//!   length stays bounded by the snapshot cadence.
//!
//! Two backends ship here: [`MemStorage`] (tests, benches, and the
//! crash-simulation harness) and [`DirStorage`] (a directory of real
//! files with fsync). Both share one record framing (see [`wal`]):
//! length-prefixed, CRC-32-checksummed records, so a torn tail from a
//! crash mid-append is detected and cleanly discarded on replay — the
//! same discipline disk-backed trees like sdbtree use for their
//! dirty-node persist logs. [`FaultStorage`] wraps [`MemStorage`] with
//! byte-precise tail truncation/corruption and append-failure
//! injection for crash-consistency tests.
//!
//! This crate is dependency-free (std only) and knows nothing about
//! key trees: records and snapshots are opaque bytes. The epoch/WAL
//! semantics live in `rekey_core::persist`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

pub mod wal;

/// Errors from the storage layer. Every operation that touches bytes
/// returns one of these — there is no `Result<_, String>` anywhere in
/// this crate.
#[derive(Debug)]
pub enum StorageError {
    /// An OS-level I/O failure, tagged with the operation that hit it.
    Io {
        /// What the backend was doing (e.g. `"wal append"`).
        op: &'static str,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The snapshot blob failed its integrity check.
    SnapshotCorrupt {
        /// Why the blob was rejected.
        reason: &'static str,
    },
    /// A record framing version this build does not understand.
    BadVersion {
        /// The version byte found.
        found: u8,
    },
    /// An injected fault from [`FaultStorage`] — test-only by
    /// construction, but typed so callers exercise their real error
    /// paths.
    Injected,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io { op, source } => write!(f, "storage i/o during {op}: {source}"),
            StorageError::SnapshotCorrupt { reason } => {
                write!(f, "snapshot failed integrity check: {reason}")
            }
            StorageError::BadVersion { found } => {
                write!(f, "unsupported storage format version {found}")
            }
            StorageError::Injected => write!(f, "injected storage fault"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Result of replaying the write-ahead log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalReplay {
    /// Every valid record, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes discarded past the last valid record (a torn or corrupt
    /// tail from a crash mid-append). Zero on a clean log.
    pub dropped_bytes: usize,
}

/// A durable byte store: an appendable record log plus one atomically
/// replaceable snapshot blob.
///
/// Contract required of every implementation:
///
/// - [`Storage::append_wal`] followed by [`Storage::sync_wal`] makes
///   the record survive a crash.
/// - [`Storage::read_wal`] returns every valid record in order,
///   *repairs* the log by discarding any invalid tail (so subsequent
///   appends land after the last valid record), and never fails on a
///   torn tail — torn tails are an expected crash artifact, reported
///   via [`WalReplay::dropped_bytes`].
/// - [`Storage::write_snapshot`] replaces the snapshot atomically: a
///   crash during the write leaves either the old blob or the new one,
///   never a mix.
/// - [`Storage::reset_wal`] empties the log (called after a snapshot
///   covers everything the log held).
pub trait Storage: Send {
    /// Appends one opaque record to the write-ahead log.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on an OS failure, [`StorageError::Injected`]
    /// under fault injection.
    fn append_wal(&mut self, record: &[u8]) -> Result<(), StorageError>;

    /// Forces appended records to durable media.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on an OS failure.
    fn sync_wal(&mut self) -> Result<(), StorageError>;

    /// Replays the log: all valid records plus how many trailing bytes
    /// were discarded as torn/corrupt. Repairs the log tail.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on an OS failure (not on a torn tail).
    fn read_wal(&mut self) -> Result<WalReplay, StorageError>;

    /// Empties the log. Called after a snapshot subsumes its contents.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on an OS failure.
    fn reset_wal(&mut self) -> Result<(), StorageError>;

    /// Atomically replaces the snapshot blob (checksummed on media).
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on an OS failure.
    fn write_snapshot(&mut self, blob: &[u8]) -> Result<(), StorageError>;

    /// Loads the snapshot blob, `None` if none was ever written.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] on an OS failure,
    /// [`StorageError::SnapshotCorrupt`] if the blob fails its CRC.
    fn load_snapshot(&mut self) -> Result<Option<Vec<u8>>, StorageError>;
}

// ---------------------------------------------------------------------
// In-memory backend
// ---------------------------------------------------------------------

/// A [`Storage`] living entirely in memory — for tests, benches, and
/// the crash-simulation harness. It stores the *framed* byte streams
/// (exactly what [`DirStorage`] writes to files), so fault injection
/// on those bytes exercises the same parse-and-repair paths a real
/// disk crash would.
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    wal: Vec<u8>,
    snapshot: Option<Vec<u8>>,
}

impl MemStorage {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a store from a framed WAL stream and a sealed snapshot
    /// (as returned by [`MemStorage::wal_bytes`] /
    /// [`MemStorage::snapshot_bytes`]) — the in-memory analogue of
    /// handing a crashed process's data directory to a fresh one.
    pub fn from_parts(wal: Vec<u8>, snapshot: Option<Vec<u8>>) -> Self {
        MemStorage { wal, snapshot }
    }

    /// The framed WAL byte stream (test introspection).
    pub fn wal_bytes(&self) -> &[u8] {
        &self.wal
    }

    /// The sealed snapshot bytes, if one was written (test
    /// introspection).
    pub fn snapshot_bytes(&self) -> Option<Vec<u8>> {
        self.snapshot.clone()
    }

    pub(crate) fn wal_bytes_mut(&mut self) -> &mut Vec<u8> {
        &mut self.wal
    }
}

impl Storage for MemStorage {
    fn append_wal(&mut self, record: &[u8]) -> Result<(), StorageError> {
        wal::frame_record(record, &mut self.wal);
        Ok(())
    }

    fn sync_wal(&mut self) -> Result<(), StorageError> {
        Ok(())
    }

    fn read_wal(&mut self) -> Result<WalReplay, StorageError> {
        let (records, valid_len) = wal::parse_records(&self.wal);
        let dropped = self.wal.len() - valid_len;
        self.wal.truncate(valid_len);
        Ok(WalReplay {
            records,
            dropped_bytes: dropped,
        })
    }

    fn reset_wal(&mut self) -> Result<(), StorageError> {
        self.wal.clear();
        Ok(())
    }

    fn write_snapshot(&mut self, blob: &[u8]) -> Result<(), StorageError> {
        self.snapshot = Some(wal::seal_snapshot(blob));
        Ok(())
    }

    fn load_snapshot(&mut self) -> Result<Option<Vec<u8>>, StorageError> {
        match &self.snapshot {
            None => Ok(None),
            Some(sealed) => wal::unseal_snapshot(sealed).map(Some),
        }
    }
}

// ---------------------------------------------------------------------
// Directory backend
// ---------------------------------------------------------------------

/// File names inside a [`DirStorage`] data directory.
pub const WAL_FILE: &str = "wal.log";
/// See [`WAL_FILE`].
pub const SNAPSHOT_FILE: &str = "snapshot.bin";
const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// A [`Storage`] backed by a directory of real files:
///
/// - `wal.log` — framed records, appended and fsynced per epoch;
/// - `snapshot.bin` — the sealed snapshot blob, replaced via
///   write-temp + fsync + rename (+ directory fsync), so a crash never
///   leaves a half-written snapshot under the live name.
#[derive(Debug)]
pub struct DirStorage {
    dir: PathBuf,
    wal: File,
}

fn io_err(op: &'static str) -> impl FnOnce(std::io::Error) -> StorageError {
    move |source| StorageError::Io { op, source }
}

impl DirStorage {
    /// Opens (creating if needed) the data directory at `dir`.
    ///
    /// # Errors
    ///
    /// [`StorageError::Io`] if the directory or WAL file cannot be
    /// created/opened.
    pub fn open<P: AsRef<Path>>(dir: P) -> Result<Self, StorageError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir).map_err(io_err("create data dir"))?;
        let wal = OpenOptions::new()
            .create(true)
            .read(true)
            .append(true)
            .open(dir.join(WAL_FILE))
            .map_err(io_err("open wal"))?;
        Ok(DirStorage { dir, wal })
    }

    /// The data directory this store writes into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Best-effort directory fsync so renames/creates are durable.
    fn sync_dir(&self) -> Result<(), StorageError> {
        File::open(&self.dir)
            .and_then(|d| d.sync_all())
            .map_err(io_err("sync data dir"))
    }
}

impl Storage for DirStorage {
    fn append_wal(&mut self, record: &[u8]) -> Result<(), StorageError> {
        let mut framed = Vec::with_capacity(wal::RECORD_HEADER_LEN + record.len());
        wal::frame_record(record, &mut framed);
        self.wal.write_all(&framed).map_err(io_err("wal append"))
    }

    fn sync_wal(&mut self) -> Result<(), StorageError> {
        self.wal.sync_data().map_err(io_err("wal fsync"))
    }

    fn read_wal(&mut self) -> Result<WalReplay, StorageError> {
        let mut bytes = Vec::new();
        self.wal
            .seek(SeekFrom::Start(0))
            .map_err(io_err("wal seek"))?;
        self.wal
            .read_to_end(&mut bytes)
            .map_err(io_err("wal read"))?;
        let (records, valid_len) = wal::parse_records(&bytes);
        let dropped = bytes.len() - valid_len;
        if dropped > 0 {
            // Repair: discard the torn tail so new appends follow the
            // last valid record instead of hiding behind garbage.
            self.wal
                .set_len(valid_len as u64)
                .map_err(io_err("wal repair truncate"))?;
            self.wal.sync_data().map_err(io_err("wal fsync"))?;
        }
        self.wal
            .seek(SeekFrom::End(0))
            .map_err(io_err("wal seek"))?;
        Ok(WalReplay {
            records,
            dropped_bytes: dropped,
        })
    }

    fn reset_wal(&mut self) -> Result<(), StorageError> {
        self.wal.set_len(0).map_err(io_err("wal truncate"))?;
        self.wal
            .seek(SeekFrom::Start(0))
            .map_err(io_err("wal seek"))?;
        self.wal.sync_data().map_err(io_err("wal fsync"))
    }

    fn write_snapshot(&mut self, blob: &[u8]) -> Result<(), StorageError> {
        let sealed = wal::seal_snapshot(blob);
        let tmp = self.dir.join(SNAPSHOT_TMP);
        let live = self.dir.join(SNAPSHOT_FILE);
        let mut f = File::create(&tmp).map_err(io_err("snapshot create"))?;
        f.write_all(&sealed).map_err(io_err("snapshot write"))?;
        f.sync_all().map_err(io_err("snapshot fsync"))?;
        drop(f);
        std::fs::rename(&tmp, &live).map_err(io_err("snapshot rename"))?;
        self.sync_dir()
    }

    fn load_snapshot(&mut self) -> Result<Option<Vec<u8>>, StorageError> {
        let live = self.dir.join(SNAPSHOT_FILE);
        let sealed = match std::fs::read(&live) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => {
                return Err(StorageError::Io {
                    op: "snapshot read",
                    source: e,
                })
            }
        };
        wal::unseal_snapshot(&sealed).map(Some)
    }
}

// ---------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------

/// A [`Storage`] wrapper for crash-consistency tests: byte-precise WAL
/// tail truncation/corruption (simulating a torn write) and append
/// failure injection (simulating a full or dying disk). Wraps
/// [`MemStorage`] so the mutations hit exactly the framed bytes a file
/// backend would hold.
#[derive(Debug, Default)]
pub struct FaultStorage {
    inner: MemStorage,
    fail_appends: bool,
    appends_until_fail: Option<u64>,
}

impl FaultStorage {
    /// Wraps an in-memory store (usually empty).
    pub fn new(inner: MemStorage) -> Self {
        FaultStorage {
            inner,
            fail_appends: false,
            appends_until_fail: None,
        }
    }

    /// Makes every subsequent [`Storage::append_wal`] fail with
    /// [`StorageError::Injected`].
    pub fn fail_appends(&mut self, yes: bool) {
        self.fail_appends = yes;
    }

    /// Lets `n` more appends succeed, then fails all further ones.
    pub fn fail_after_appends(&mut self, n: u64) {
        self.appends_until_fail = Some(n);
    }

    /// Discards the last `bytes` bytes of the framed WAL stream — a
    /// torn write that ended mid-record.
    pub fn truncate_wal_tail(&mut self, bytes: usize) {
        let wal = self.inner.wal_bytes_mut();
        let keep = wal.len().saturating_sub(bytes);
        wal.truncate(keep);
    }

    /// Flips one byte `offset_from_end` bytes before the end of the
    /// framed WAL stream — bit rot or a misdirected write. No-op if
    /// the log is shorter than that.
    pub fn corrupt_wal_byte(&mut self, offset_from_end: usize) {
        let wal = self.inner.wal_bytes_mut();
        if let Some(i) = wal.len().checked_sub(offset_from_end + 1) {
            wal[i] ^= 0xff;
        }
    }

    /// Length of the framed WAL stream in bytes.
    pub fn wal_len(&self) -> usize {
        self.inner.wal_bytes().len()
    }

    /// Read access to the wrapped store.
    pub fn inner(&self) -> &MemStorage {
        &self.inner
    }
}

impl Storage for FaultStorage {
    fn append_wal(&mut self, record: &[u8]) -> Result<(), StorageError> {
        if self.fail_appends {
            return Err(StorageError::Injected);
        }
        if let Some(left) = self.appends_until_fail {
            if left == 0 {
                return Err(StorageError::Injected);
            }
            self.appends_until_fail = Some(left - 1);
        }
        self.inner.append_wal(record)
    }

    fn sync_wal(&mut self) -> Result<(), StorageError> {
        self.inner.sync_wal()
    }

    fn read_wal(&mut self) -> Result<WalReplay, StorageError> {
        self.inner.read_wal()
    }

    fn reset_wal(&mut self) -> Result<(), StorageError> {
        self.inner.reset_wal()
    }

    fn write_snapshot(&mut self, blob: &[u8]) -> Result<(), StorageError> {
        self.inner.write_snapshot(blob)
    }

    fn load_snapshot(&mut self) -> Result<Option<Vec<u8>>, StorageError> {
        self.inner.load_snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn records(n: usize) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let mut r = vec![i as u8; 5 + i];
                r.push(0xAB);
                r
            })
            .collect()
    }

    fn check_round_trip(storage: &mut dyn Storage) {
        let rs = records(8);
        for r in &rs {
            storage.append_wal(r).unwrap();
        }
        storage.sync_wal().unwrap();
        let replay = storage.read_wal().unwrap();
        assert_eq!(replay.records, rs);
        assert_eq!(replay.dropped_bytes, 0);

        storage.write_snapshot(b"snapshot-state").unwrap();
        storage.reset_wal().unwrap();
        assert_eq!(storage.read_wal().unwrap().records.len(), 0);
        assert_eq!(
            storage.load_snapshot().unwrap().as_deref(),
            Some(&b"snapshot-state"[..])
        );

        // Appends after a reset land on the fresh log.
        storage.append_wal(b"after-reset").unwrap();
        let replay = storage.read_wal().unwrap();
        assert_eq!(replay.records, vec![b"after-reset".to_vec()]);
    }

    #[test]
    fn mem_round_trip() {
        check_round_trip(&mut MemStorage::new());
    }

    #[test]
    fn dir_round_trip_and_reopen() {
        let dir = std::env::temp_dir().join(format!("rekey-storage-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let mut storage = DirStorage::open(&dir).unwrap();
            check_round_trip(&mut storage);
        }
        // Reopen: state survives the process boundary.
        let mut storage = DirStorage::open(&dir).unwrap();
        let replay = storage.read_wal().unwrap();
        assert_eq!(replay.records, vec![b"after-reset".to_vec()]);
        assert_eq!(
            storage.load_snapshot().unwrap().as_deref(),
            Some(&b"snapshot-state"[..])
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_stores_replay_empty() {
        let mut mem = MemStorage::new();
        assert_eq!(mem.read_wal().unwrap().records.len(), 0);
        assert_eq!(mem.load_snapshot().unwrap(), None);
    }

    #[test]
    fn torn_tail_is_dropped_and_repaired() {
        let mut fault = FaultStorage::new(MemStorage::new());
        let rs = records(4);
        for r in &rs {
            fault.append_wal(r).unwrap();
        }
        // Tear the last record mid-payload.
        fault.truncate_wal_tail(3);
        let replay = fault.read_wal().unwrap();
        assert_eq!(replay.records, rs[..3].to_vec());
        assert!(replay.dropped_bytes > 0, "torn tail must be reported");
        // The repair leaves an appendable log.
        fault.append_wal(b"recovered").unwrap();
        let replay = fault.read_wal().unwrap();
        assert_eq!(replay.records.len(), 4);
        assert_eq!(replay.records[3], b"recovered");
        assert_eq!(replay.dropped_bytes, 0);
    }

    #[test]
    fn corrupt_tail_byte_stops_at_last_valid_record() {
        for offset_from_end in [0usize, 1, 7, 11] {
            let mut fault = FaultStorage::new(MemStorage::new());
            let rs = records(4);
            for r in &rs {
                fault.append_wal(r).unwrap();
            }
            fault.corrupt_wal_byte(offset_from_end);
            let replay = fault.read_wal().unwrap();
            // The corrupted byte lives in the last record (payload or
            // header): exactly the first three records survive, no
            // panic, no partial record.
            assert_eq!(replay.records, rs[..3].to_vec());
            assert!(replay.dropped_bytes > 0);
        }
    }

    #[test]
    fn corruption_mid_log_drops_everything_after() {
        let mut fault = FaultStorage::new(MemStorage::new());
        let rs = records(6);
        for r in &rs {
            fault.append_wal(r).unwrap();
        }
        let total = fault.wal_len();
        // Corrupt a byte roughly in the middle of the stream.
        fault.corrupt_wal_byte(total / 2);
        let replay = fault.read_wal().unwrap();
        assert!(replay.records.len() < 6);
        assert_eq!(replay.records, rs[..replay.records.len()].to_vec());
        assert!(replay.dropped_bytes > 0);
    }

    #[test]
    fn injected_append_failures_are_typed() {
        let mut fault = FaultStorage::new(MemStorage::new());
        fault.fail_after_appends(2);
        fault.append_wal(b"a").unwrap();
        fault.append_wal(b"b").unwrap();
        assert!(matches!(
            fault.append_wal(b"c"),
            Err(StorageError::Injected)
        ));
        fault.fail_appends(false);
        assert!(matches!(
            fault.append_wal(b"d"),
            Err(StorageError::Injected),
        ));
        let replay = fault.read_wal().unwrap();
        assert_eq!(replay.records, vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn snapshot_corruption_is_detected() {
        let dir = std::env::temp_dir().join(format!("rekey-storage-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut storage = DirStorage::open(&dir).unwrap();
        storage.write_snapshot(b"good bytes").unwrap();
        // Flip one payload byte on disk.
        let path = dir.join(SNAPSHOT_FILE);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            storage.load_snapshot(),
            Err(StorageError::SnapshotCorrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
