//! Record framing shared by every backend.
//!
//! A framed WAL record is:
//!
//! ```text
//! [version: u8 = 1][len: u32 BE][crc32: u32 BE over payload][payload]
//! ```
//!
//! and a sealed snapshot blob is the same header around one payload.
//! The CRC is IEEE CRC-32 (the ubiquitous reflected 0xEDB88320
//! polynomial). Parsing stops at the first record whose header is
//! short, whose declared length exceeds the remaining bytes, whose
//! version is unknown, or whose checksum does not match — everything
//! before that point is returned; everything after is a torn tail to
//! be discarded. Big-endian integers and a leading version byte follow
//! the `rekey_keytree::message::codec` conventions.

use crate::StorageError;

/// Framing version of records and snapshot seals.
pub const WAL_VERSION: u8 = 1;

/// Bytes of framing per record: version + length + checksum.
pub const RECORD_HEADER_LEN: usize = 1 + 4 + 4;

/// IEEE CRC-32 of `bytes` (reflected polynomial 0xEDB88320),
/// table-free bitwise form: the WAL appends are fsync-bound, so the
/// checksum is never the bottleneck.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends the framed form of `record` onto `out`.
pub fn frame_record(record: &[u8], out: &mut Vec<u8>) {
    out.push(WAL_VERSION);
    out.extend_from_slice(&(record.len() as u32).to_be_bytes());
    out.extend_from_slice(&crc32(record).to_be_bytes());
    out.extend_from_slice(record);
}

/// Parses a framed stream: `(records, valid_len)` where `valid_len`
/// is the byte offset just past the last intact record. Never fails —
/// malformed framing simply ends the valid prefix.
pub fn parse_records(bytes: &[u8]) -> (Vec<Vec<u8>>, usize) {
    let mut records = Vec::new();
    let mut at = 0usize;
    while bytes.len() - at >= RECORD_HEADER_LEN {
        if bytes[at] != WAL_VERSION {
            break;
        }
        let len = u32::from_be_bytes(bytes[at + 1..at + 5].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_be_bytes(bytes[at + 5..at + 9].try_into().expect("4 bytes"));
        let payload_start = at + RECORD_HEADER_LEN;
        let Some(payload_end) = payload_start.checked_add(len) else {
            break;
        };
        if payload_end > bytes.len() {
            break;
        }
        let payload = &bytes[payload_start..payload_end];
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        at = payload_end;
    }
    (records, at)
}

/// Seals a snapshot blob with the same version/length/CRC header.
pub fn seal_snapshot(blob: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(RECORD_HEADER_LEN + blob.len());
    frame_record(blob, &mut out);
    out
}

/// Verifies and strips a snapshot seal.
///
/// # Errors
///
/// [`StorageError::BadVersion`] on an unknown version byte,
/// [`StorageError::SnapshotCorrupt`] on truncation or CRC mismatch.
pub fn unseal_snapshot(sealed: &[u8]) -> Result<Vec<u8>, StorageError> {
    if sealed.len() < RECORD_HEADER_LEN {
        return Err(StorageError::SnapshotCorrupt {
            reason: "shorter than the seal header",
        });
    }
    if sealed[0] != WAL_VERSION {
        return Err(StorageError::BadVersion { found: sealed[0] });
    }
    let len = u32::from_be_bytes(sealed[1..5].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_be_bytes(sealed[5..9].try_into().expect("4 bytes"));
    let payload = &sealed[RECORD_HEADER_LEN..];
    if payload.len() != len {
        return Err(StorageError::SnapshotCorrupt {
            reason: "declared length does not match the blob",
        });
    }
    if crc32(payload) != crc {
        return Err(StorageError::SnapshotCorrupt {
            reason: "checksum mismatch",
        });
    }
    Ok(payload.to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        // The classic check value for IEEE CRC-32.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_and_parse_round_trip() {
        let mut stream = Vec::new();
        frame_record(b"", &mut stream);
        frame_record(b"hello", &mut stream);
        frame_record(&[0u8; 1000], &mut stream);
        let (records, valid) = parse_records(&stream);
        assert_eq!(valid, stream.len());
        assert_eq!(records.len(), 3);
        assert_eq!(records[0], b"");
        assert_eq!(records[1], b"hello");
        assert_eq!(records[2], vec![0u8; 1000]);
    }

    #[test]
    fn every_possible_tear_point_parses_cleanly() {
        let mut stream = Vec::new();
        frame_record(b"first", &mut stream);
        frame_record(b"second", &mut stream);
        let first_len = RECORD_HEADER_LEN + 5;
        for cut in 0..stream.len() {
            let (records, valid) = parse_records(&stream[..cut]);
            if cut >= first_len {
                assert_eq!(records, vec![b"first".to_vec()], "cut at {cut}");
                assert_eq!(valid, first_len);
            } else {
                assert!(records.is_empty(), "cut at {cut}");
                assert_eq!(valid, 0);
            }
        }
    }

    #[test]
    fn unknown_version_ends_the_prefix() {
        let mut stream = Vec::new();
        frame_record(b"ok", &mut stream);
        let tail_start = stream.len();
        frame_record(b"bad", &mut stream);
        stream[tail_start] = 9; // future framing version
        let (records, valid) = parse_records(&stream);
        assert_eq!(records, vec![b"ok".to_vec()]);
        assert_eq!(valid, tail_start);
    }

    #[test]
    fn snapshot_seal_round_trip_and_rejection() {
        let sealed = seal_snapshot(b"state");
        assert_eq!(unseal_snapshot(&sealed).unwrap(), b"state");

        let mut bad_crc = sealed.clone();
        let last = bad_crc.len() - 1;
        bad_crc[last] ^= 1;
        assert!(matches!(
            unseal_snapshot(&bad_crc),
            Err(StorageError::SnapshotCorrupt { .. })
        ));

        let mut bad_version = sealed.clone();
        bad_version[0] = 7;
        assert!(matches!(
            unseal_snapshot(&bad_version),
            Err(StorageError::BadVersion { found: 7 })
        ));

        assert!(matches!(
            unseal_snapshot(&sealed[..4]),
            Err(StorageError::SnapshotCorrupt { .. })
        ));
        assert!(matches!(
            unseal_snapshot(&sealed[..sealed.len() - 1]),
            Err(StorageError::SnapshotCorrupt { .. })
        ));
    }
}
