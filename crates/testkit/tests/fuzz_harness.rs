//! End-to-end tests of the fuzz harness itself: honest schemes
//! survive churn under every delivery model, an injected
//! forgot-to-rekey bug is caught and shrunk, and verdicts are
//! independent of the worker count.

use rekey_core::partition::TtManager;
use rekey_core::{GroupKeyManager, Scheme};
use rekey_testkit::bugs::SkipOneLeave;
use rekey_testkit::{factory_for, run_scenario, shrink, Delivery, GenParams, RunOptions, Scenario};

fn generate(seed: u64, intervals: usize) -> Scenario {
    Scenario::generate(seed, intervals, &GenParams::default())
}

#[test]
fn honest_schemes_pass_lossless_churn() {
    let scenario = generate(1, 25);
    for scheme in Scheme::ALL {
        let factory = factory_for(scheme);
        let opts = RunOptions {
            delivery: Delivery::Lossless,
            workers: 1,
        };
        let stats =
            run_scenario(&factory, &scenario, &opts).unwrap_or_else(|v| panic!("{scheme}: {v}"));
        assert_eq!(stats.intervals, 26);
        assert!(stats.total_entries > 0);
    }
}

#[test]
fn honest_schemes_pass_bernoulli_loss() {
    let scenario = generate(2, 20);
    for scheme in [
        Scheme::OneTree,
        Scheme::Qt,
        Scheme::Combined,
        Scheme::Adaptive,
    ] {
        let factory = factory_for(scheme);
        let opts = RunOptions {
            delivery: Delivery::Bernoulli,
            workers: 1,
        };
        run_scenario(&factory, &scenario, &opts).unwrap_or_else(|v| panic!("{scheme}: {v}"));
    }
}

#[test]
fn honest_schemes_pass_wka_transport() {
    let scenario = generate(3, 15);
    for scheme in [Scheme::OneTree, Scheme::Tt, Scheme::LossForest] {
        let factory = factory_for(scheme);
        let opts = RunOptions {
            delivery: Delivery::WkaBkr,
            workers: 1,
        };
        run_scenario(&factory, &scenario, &opts).unwrap_or_else(|v| panic!("{scheme}: {v}"));
    }
}

#[test]
fn verdict_and_digest_identical_across_worker_counts() {
    let scenario = generate(4, 20);
    for scheme in [Scheme::OneTree, Scheme::Tt, Scheme::Qt] {
        let factory = factory_for(scheme);
        let run = |workers| {
            run_scenario(
                &factory,
                &scenario,
                &RunOptions {
                    delivery: Delivery::WkaBkr,
                    workers,
                },
            )
        };
        let solo = run(1).unwrap_or_else(|v| panic!("{scheme}: {v}"));
        let wide = run(8).unwrap_or_else(|v| panic!("{scheme}: {v}"));
        assert_eq!(solo, wide, "{scheme}: worker count changed the run");
    }
}

#[test]
fn skipped_leave_rekey_is_caught_and_shrunk() {
    // A server that silently skips one leaver's path refresh while
    // keeping its own bookkeeping consistent: only the wire-level
    // oracle can see that the departed member is still entitled to
    // fresh keys.
    let factory = |s: &Scenario| -> Box<dyn GroupKeyManager> {
        Box::new(SkipOneLeave::new(TtManager::new(
            s.degree.max(2) as usize,
            u64::from(s.k.max(1)),
        )))
    };
    let scenario = generate(5, 30);
    let opts = RunOptions::default();
    let violation = run_scenario(&factory, &scenario, &opts)
        .expect_err("injected bug must violate an invariant");
    assert!(
        violation.detail.contains("forward secrecy") || violation.detail.contains("DEK"),
        "unexpected violation kind: {violation}"
    );

    let report = shrink(&factory, &scenario, &opts, violation, 400);
    // The shrunk scenario still fails, is no larger than the original,
    // and is small in absolute terms: the bug needs one leave (plus
    // the members that must exist for someone to leave).
    assert!(run_scenario(&factory, &report.scenario, &opts).is_err());
    assert!(report.scenario.op_count() <= scenario.op_count());
    assert!(
        report.scenario.op_count() <= 6,
        "shrinker left {} ops",
        report.scenario.op_count()
    );
    assert_eq!(
        report
            .scenario
            .intervals
            .iter()
            .map(|iv| iv.leaves.len())
            .sum::<usize>(),
        1,
        "minimal counterexample needs exactly one leave"
    );
    let replay = report.replay_command("tt", opts.delivery, opts.workers);
    assert!(replay.contains("--seed 5"), "replay line: {replay}");
}

#[test]
fn departed_member_replay_does_not_resurrect_access() {
    // Long horizon, heavy churn: departed members receive every
    // message forever; the DEK-confinement check would flag any of
    // them clawing access back.
    let scenario = generate(6, 40);
    let factory = factory_for(Scheme::Combined);
    let stats = run_scenario(&factory, &scenario, &RunOptions::default()).unwrap();
    assert!(stats.intervals == 41);
}
