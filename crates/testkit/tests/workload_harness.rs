//! End-to-end coverage for the workload layer: the non-uniform
//! generators drive every scheme through the full oracle + member-farm
//! invariant suite, and compilation and execution are pinned
//! deterministic (byte-identical traces across runs, digest-identical
//! runs across worker counts).

use rekey_core::Scheme;
use rekey_testkit::{
    factory_for, run_workload, workload_by_name, Delivery, GenParams, RunOptions, Trace,
    WORKLOAD_NAMES,
};

fn compile(name: &str, seed: u64, intervals: usize) -> rekey_testkit::Scenario {
    workload_by_name(name)
        .expect("registered generator")
        .compile(seed, intervals, &GenParams::default())
}

/// Runs one generator across all seven schemes under lossless delivery
/// (so liveness is asserted every interval, on top of forward secrecy,
/// ring soundness, and DEK confinement).
fn all_schemes_pass(name: &str, seed: u64) {
    let scenario = compile(name, seed, 60);
    for &scheme in &Scheme::ALL {
        let factory = factory_for(scheme);
        let run = run_workload(name, &factory, &scenario, &RunOptions::default())
            .unwrap_or_else(|v| panic!("{name}/{}: {v}", scheme.name()));
        assert_eq!(run.stats.intervals, 61);
        assert!(run.peak_members >= run.stats.final_members);
        assert!(run.latency_ns.count() == 61);
    }
}

#[test]
fn flash_crowd_passes_every_scheme() {
    all_schemes_pass("flash-crowd", 11);
}

#[test]
fn mobile_flap_passes_every_scheme() {
    all_schemes_pass("mobile-flap", 12);
}

/// The rejoin-heavy and mass-drain shapes also survive the lossy
/// reliable transport (liveness is only asserted on complete
/// deliveries there; secrecy invariants run every interval).
#[test]
fn stress_generators_pass_under_wka() {
    for name in ["flash-crowd", "mobile-flap"] {
        let scenario = compile(name, 21, 40);
        let opts = RunOptions {
            delivery: Delivery::WkaBkr,
            workers: 1,
        };
        for scheme in [Scheme::Tt, Scheme::LossForest] {
            let factory = factory_for(scheme);
            run_workload(name, &factory, &scenario, &opts)
                .unwrap_or_else(|v| panic!("{name}/{} under wka: {v}", scheme.name()));
        }
    }
}

/// Same (generator, seed, intervals) triple ⇒ byte-identical trace
/// file, every time. This is the replay contract the sweep relies on.
#[test]
fn traces_are_byte_identical_across_compiles() {
    for name in WORKLOAD_NAMES {
        let first = Trace {
            generator: name.to_string(),
            scenario: compile(name, 42, 50),
        }
        .encode();
        let second = Trace {
            generator: name.to_string(),
            scenario: compile(name, 42, 50),
        }
        .encode();
        assert_eq!(first, second, "{name}: trace not deterministic");
        // And a different seed actually changes it.
        let other = Trace {
            generator: name.to_string(),
            scenario: compile(name, 43, 50),
        }
        .encode();
        assert_ne!(first, other, "{name}: seed ignored");
    }
}

/// Worker count is a wall-clock knob only: the full run statistics —
/// including the SHA-256 wire digest — are identical for --workers 1
/// and --workers 8 on every generator.
#[test]
fn run_digest_is_worker_count_independent() {
    for name in WORKLOAD_NAMES {
        let scenario = compile(name, 9, 40);
        let factory = factory_for(Scheme::Tt);
        let sequential = run_workload(
            name,
            &factory,
            &scenario,
            &RunOptions {
                delivery: Delivery::Lossless,
                workers: 1,
            },
        )
        .expect("sequential run");
        let parallel = run_workload(
            name,
            &factory,
            &scenario,
            &RunOptions {
                delivery: Delivery::Lossless,
                workers: 8,
            },
        )
        .expect("parallel run");
        assert_eq!(
            sequential.stats, parallel.stats,
            "{name}: stats diverged across worker counts"
        );
        assert_eq!(sequential.peak_members, parallel.peak_members);
        assert_eq!(sequential.max_interval_bytes, parallel.max_interval_bytes);
    }
}
