//! Property tests for the workload trace file codec: encoding is a
//! bijection on valid traces, and malformed input of any shape —
//! truncations, version bumps, or arbitrary bytes — produces a typed
//! [`TraceError`], never a panic.

use proptest::prelude::*;
use rekey_testkit::{workload_by_name, GenParams, Trace, TraceError, WORKLOAD_NAMES};

/// Compiles a real trace from a generator index and a seed, so the
/// properties range over every generator's actual output shape
/// (including empty-churn and loss-change-heavy intervals).
fn trace_for(gen: usize, seed: u64, intervals: usize) -> Trace {
    let name = WORKLOAD_NAMES[gen % WORKLOAD_NAMES.len()];
    let mut workload = workload_by_name(name).expect("registered");
    Trace {
        generator: name.to_string(),
        scenario: workload.compile(seed, intervals, &GenParams::default()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// encode → decode → encode is byte-identical, for every
    /// generator, seed, and run length.
    #[test]
    fn encode_decode_encode_is_identity(
        gen in 0usize..5,
        seed in any::<u64>(),
        intervals in 0usize..20,
    ) {
        let trace = trace_for(gen, seed, intervals);
        let bytes = trace.encode();
        let decoded = Trace::decode(&bytes).expect("valid trace decodes");
        prop_assert_eq!(&decoded.generator, &trace.generator);
        prop_assert_eq!(&decoded.scenario, &trace.scenario);
        prop_assert_eq!(decoded.encode(), bytes);
    }

    /// Cutting the encoding anywhere yields a typed error (the header
    /// cuts surface as `BadMagic`/`Truncated`, payload cuts as
    /// `Truncated`/`BadScenario`) — never a panic, never an `Ok`.
    #[test]
    fn every_truncation_is_a_typed_error(
        gen in 0usize..5,
        seed in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let bytes = trace_for(gen, seed, 4).encode();
        let cut = (cut as usize) % bytes.len();
        prop_assert!(
            Trace::decode(&bytes[..cut]).is_err(),
            "truncation at {} of {} decoded successfully",
            cut,
            bytes.len()
        );
    }

    /// Any unknown version byte is rejected with the version named.
    #[test]
    fn unknown_versions_are_rejected(gen in 0usize..5, version in 2u64..256) {
        let mut bytes = trace_for(gen, 7, 3).encode();
        bytes[4] = version as u8;
        match Trace::decode(&bytes) {
            Err(TraceError::UnsupportedVersion(v)) => prop_assert_eq!(u64::from(v), version),
            other => prop_assert!(false, "expected UnsupportedVersion, got {:?}", other),
        }
    }

    /// Decoding arbitrary bytes never panics.
    #[test]
    fn arbitrary_bytes_never_panic(blob in proptest::collection::vec(0u64..256, 0..256)) {
        let bytes: Vec<u8> = blob.iter().map(|&b| b as u8).collect();
        let _ = Trace::decode(&bytes);
    }

    /// Flipping any single byte of a valid encoding never panics; it
    /// either fails typed or decodes to a trace that still re-encodes
    /// canonically.
    #[test]
    fn single_byte_corruption_never_panics(
        gen in 0usize..5,
        pos in any::<u64>(),
        xor in 1u64..256,
    ) {
        let mut bytes = trace_for(gen, 13, 4).encode();
        let pos = (pos as usize) % bytes.len();
        bytes[pos] ^= xor as u8;
        if let Ok(decoded) = Trace::decode(&bytes) {
            // The codec is canonical: anything that decodes must
            // re-encode to exactly the bytes it was decoded from.
            prop_assert_eq!(decoded.encode(), bytes);
        }
    }
}
