//! Wire-bytes member farm.
//!
//! Instantiates a real [`GroupMember`] per scenario member and feeds
//! it nothing but encoded rekey messages — the same bytes a receiver
//! would pull off the multicast channel — through a configurable
//! delivery model. Departed members stay in the farm and keep
//! receiving *every* message losslessly: they model an adversary that
//! records all traffic and replays old state, so the secrecy checks
//! run against their rings forever.

use crate::oracle::{KnowledgeOracle, ObserveReport};
use rand::Rng;
use rekey_core::GroupKeyManager;
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::MemberId;
use rekey_keytree::{KeyTreeError, NodeId};
use rekey_transport::interest::interest_map;
use rekey_transport::loss::Population;
use rekey_transport::wka_bkr::{self, WkaBkrConfig};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An invariant or protocol violation detected by the farm.
///
/// Each variant pins the failing member/key so harnesses can react
/// structurally instead of grepping message text; [`fmt::Display`]
/// renders the same human-readable description the farm used to return
/// as a bare `String`.
#[derive(Debug, Clone, PartialEq)]
pub enum FarmError {
    /// A member rejected wire bytes the server multicast.
    MemberRejected {
        /// The member that failed to process the message.
        member: MemberId,
        /// Whether the member had already departed (replay tape).
        departed: bool,
        /// The underlying processing error.
        source: KeyTreeError,
    },
    /// The reliable transport exhausted its round budget.
    TransportIncomplete {
        /// Rounds spent before giving up.
        rounds: usize,
    },
    /// The manager's membership view diverged from the farm's.
    Bookkeeping {
        /// What diverged.
        detail: String,
    },
    /// A departed member is entitled to a key born after it left.
    ForwardSecrecy {
        /// The departed member.
        member: MemberId,
        /// The freshly distributed node.
        node: NodeId,
        /// The fresh key version.
        version: u64,
    },
    /// A member's ring holds a key the oracle does not entitle it to.
    RingSoundness {
        /// The offending member.
        member: MemberId,
        /// The held node.
        node: NodeId,
        /// The held version.
        version: u64,
    },
    /// The group is non-empty but no DEK was ever multicast.
    DekNeverDistributed,
    /// The entitled set of the latest DEK diverges from the present
    /// membership.
    DekConfinement {
        /// The DEK node.
        node: NodeId,
        /// The latest DEK version.
        version: u64,
        /// Entitled members that are not present.
        extra: Vec<MemberId>,
        /// Present members that are not entitled.
        missing: Vec<MemberId>,
    },
    /// A departed member still holds the live DEK.
    DekLeak {
        /// The departed member.
        member: MemberId,
    },
    /// After a complete delivery, a present member misses a key it is
    /// entitled to.
    Liveness {
        /// The lagging member.
        member: MemberId,
        /// What the member should hold.
        detail: String,
    },
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::MemberRejected {
                member,
                departed,
                source,
            } => {
                let kind = if *departed {
                    "departed member"
                } else {
                    "member"
                };
                write!(f, "{kind} {member:?} rejected message: {source}")
            }
            FarmError::TransportIncomplete { rounds } => {
                write!(f, "transport incomplete after {rounds} rounds")
            }
            FarmError::Bookkeeping { detail } => write!(f, "bookkeeping: {detail}"),
            FarmError::ForwardSecrecy {
                member,
                node,
                version,
            } => write!(
                f,
                "forward secrecy: departed {member:?} entitled to fresh {node:?}@{version}"
            ),
            FarmError::RingSoundness {
                member,
                node,
                version,
            } => write!(
                f,
                "ring soundness: {member:?} holds {node:?}@{version} without entitlement"
            ),
            FarmError::DekNeverDistributed => write!(f, "DEK never appeared on the wire"),
            FarmError::DekConfinement {
                node,
                version,
                extra,
                missing,
            } => write!(
                f,
                "DEK confinement: {node:?}@{version} entitled set diverges \
                 (extra: {extra:?}, missing: {missing:?})"
            ),
            FarmError::DekLeak { member } => {
                write!(f, "departed {member:?} holds the live DEK")
            }
            FarmError::Liveness { member, detail } => {
                write!(f, "liveness: present {member:?} {detail}")
            }
        }
    }
}

impl std::error::Error for FarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FarmError::MemberRejected { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// How rekey messages reach present members.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// Every member receives every entry. Liveness checks apply.
    Lossless,
    /// Each present member independently drops each entry with its
    /// configured loss probability — raw lossy multicast with no
    /// recovery. Only the secrecy checks apply.
    Bernoulli,
    /// Entries travel through the WKA-BKR replicated transport with
    /// per-member loss; a complete delivery report re-arms the
    /// liveness checks.
    WkaBkr,
}

impl Delivery {
    /// Command-line name of the mode.
    pub fn name(self) -> &'static str {
        match self {
            Delivery::Lossless => "lossless",
            Delivery::Bernoulli => "bernoulli",
            Delivery::WkaBkr => "wka",
        }
    }

    /// Parses a command-line name.
    pub fn parse(name: &str) -> Option<Delivery> {
        match name {
            "lossless" => Some(Delivery::Lossless),
            "bernoulli" => Some(Delivery::Bernoulli),
            "wka" => Some(Delivery::WkaBkr),
            _ => None,
        }
    }
}

/// The farm: every member ever admitted, present or departed.
#[derive(Debug, Default)]
pub struct MemberFarm {
    members: BTreeMap<MemberId, GroupMember>,
    present: BTreeSet<MemberId>,
    departed: BTreeSet<MemberId>,
    loss: BTreeMap<MemberId, f64>,
}

impl MemberFarm {
    /// An empty farm.
    pub fn new() -> Self {
        Self::default()
    }

    /// Admits a member with its individual key and loss rate.
    pub fn admit(&mut self, member: MemberId, individual_key: Key, loss: f64) {
        self.members
            .insert(member, GroupMember::new(member, individual_key));
        self.present.insert(member);
        self.departed.remove(&member);
        self.loss.insert(member, loss);
    }

    /// Marks a member departed. Its state is kept and it continues to
    /// receive all traffic (replay adversary).
    pub fn depart(&mut self, member: MemberId) {
        self.present.remove(&member);
        self.departed.insert(member);
    }

    /// Updates a member's loss rate.
    pub fn set_loss(&mut self, member: MemberId, loss: f64) {
        self.loss.insert(member, loss);
    }

    /// Members currently in the group.
    pub fn present(&self) -> &BTreeSet<MemberId> {
        &self.present
    }

    /// Members that have left.
    pub fn departed(&self) -> &BTreeSet<MemberId> {
        &self.departed
    }

    /// The farm's [`GroupMember`] for `member`, if it was ever
    /// admitted. External harnesses (e.g. the `rekey-net` loopback
    /// test) compare these rings against members fed by other
    /// transports.
    pub fn member(&self, member: MemberId) -> Option<&GroupMember> {
        self.members.get(&member)
    }

    /// Delivers one decoded message to the farm under `mode`.
    /// Returns whether delivery was complete for all present members
    /// (which re-arms the liveness checks); errors are protocol
    /// violations (a member rejected wire bytes, or the transport
    /// exhausted its round budget).
    pub fn deliver<R: Rng>(
        &mut self,
        message: &RekeyMessage,
        mode: Delivery,
        manager: &dyn GroupKeyManager,
        net_rng: &mut R,
    ) -> Result<bool, FarmError> {
        let rejected = |member: MemberId, departed: bool| {
            move |source: KeyTreeError| FarmError::MemberRejected {
                member,
                departed,
                source,
            }
        };
        let complete = match mode {
            Delivery::Lossless => {
                for (&id, member) in &mut self.members {
                    if self.present.contains(&id) {
                        member.process(message).map_err(rejected(id, false))?;
                    }
                }
                true
            }
            Delivery::Bernoulli => {
                for (&id, member) in &mut self.members {
                    if !self.present.contains(&id) {
                        continue;
                    }
                    let loss = self.loss.get(&id).copied().unwrap_or(0.0);
                    let received: Vec<_> = message
                        .entries
                        .iter()
                        .filter(|_| net_rng.gen::<f64>() >= loss)
                        .collect();
                    member
                        .process_entries(received)
                        .map_err(rejected(id, false))?;
                }
                false
            }
            Delivery::WkaBkr => {
                if message.is_empty() {
                    true
                } else {
                    let interest =
                        interest_map(message, |node, out| manager.members_under_into(node, out));
                    let population = Population::from_map(
                        interest
                            .keys()
                            .map(|m| (*m, self.loss.get(m).copied().unwrap_or(0.0)))
                            .collect(),
                    );
                    let outcome = wka_bkr::deliver(
                        message,
                        &interest,
                        &population,
                        &WkaBkrConfig::default(),
                        net_rng,
                    );
                    for (&id, member) in &mut self.members {
                        if !self.present.contains(&id) {
                            continue;
                        }
                        if let Some(indices) = outcome.delivered.get(&id) {
                            member
                                .process_entries(indices.iter().map(|&i| &message.entries[i]))
                                .map_err(rejected(id, false))?;
                        }
                    }
                    if !outcome.report.complete {
                        return Err(FarmError::TransportIncomplete {
                            rounds: outcome.report.rounds,
                        });
                    }
                    true
                }
            }
        };

        // Departed members replay the full tape regardless of mode.
        for (&id, member) in &mut self.members {
            if self.departed.contains(&id) {
                member.process(message).map_err(rejected(id, true))?;
            }
        }
        Ok(complete)
    }

    /// Runs the interval invariants against the oracle.
    ///
    /// * bookkeeping — the manager's membership view matches the farm;
    /// * forward secrecy — no pair born this interval is decryptable
    ///   by a departed member;
    /// * ring soundness — no member (present *or* departed) holds a
    ///   key the oracle does not entitle it to;
    /// * DEK confinement — the entitled set of the latest DEK version
    ///   is exactly the present membership, and no departed ring holds
    ///   the live DEK;
    /// * liveness (`complete` deliveries only) — every present member
    ///   newly entitled to a latest-version key actually holds it, and
    ///   holds the manager's current DEK.
    pub fn check(
        &self,
        oracle: &KnowledgeOracle,
        manager: &dyn GroupKeyManager,
        report: &ObserveReport,
        liveness: bool,
    ) -> Result<(), FarmError> {
        if manager.member_count() != self.present.len() {
            return Err(FarmError::Bookkeeping {
                detail: format!(
                    "manager reports {} members, farm has {}",
                    manager.member_count(),
                    self.present.len()
                ),
            });
        }
        for &m in &self.present {
            if !manager.contains(m) {
                return Err(FarmError::Bookkeeping {
                    detail: format!("manager lost present member {m:?}"),
                });
            }
        }
        for &m in &self.departed {
            if manager.contains(m) {
                return Err(FarmError::Bookkeeping {
                    detail: format!("manager retains departed {m:?}"),
                });
            }
        }

        for &(node, version) in &report.born {
            if let Some(entitled) = oracle.entitled(node, version) {
                if let Some(&leak) = entitled.iter().find(|m| self.departed.contains(m)) {
                    return Err(FarmError::ForwardSecrecy {
                        member: leak,
                        node,
                        version,
                    });
                }
            }
        }

        for (&id, member) in &self.members {
            for (node, version) in member.held_keys() {
                if !oracle.is_entitled(id, node, version) {
                    return Err(FarmError::RingSoundness {
                        member: id,
                        node,
                        version,
                    });
                }
            }
        }

        let dek_node = manager.dek_node();
        if !self.present.is_empty() {
            let Some(dek_version) = oracle.latest(dek_node) else {
                return Err(FarmError::DekNeverDistributed);
            };
            let entitled = oracle.entitled(dek_node, dek_version).unwrap();
            if entitled != &self.present {
                return Err(FarmError::DekConfinement {
                    node: dek_node,
                    version: dek_version,
                    extra: entitled.difference(&self.present).copied().collect(),
                    missing: self.present.difference(entitled).copied().collect(),
                });
            }
        }
        let dek = manager.dek();
        for &m in &self.departed {
            if self.members[&m].key_for(dek_node) == Some(dek) {
                return Err(FarmError::DekLeak { member: m });
            }
        }

        if liveness {
            for &(m, node, version) in &report.granted {
                if !self.present.contains(&m) || oracle.latest(node) != Some(version) {
                    continue;
                }
                if self.members[&m].version_for(node) != Some(version) {
                    return Err(FarmError::Liveness {
                        member: m,
                        detail: format!(
                            "entitled to {node:?}@{version} but ring has {:?}",
                            self.members[&m].version_for(node)
                        ),
                    });
                }
            }
            for &m in &self.present {
                if self.members[&m].key_for(dek_node) != Some(dek) {
                    return Err(FarmError::Liveness {
                        member: m,
                        detail: "lacks the current DEK after complete delivery".into(),
                    });
                }
            }
        }
        Ok(())
    }
}
