//! Replayable workload trace files.
//!
//! A [`Trace`] pairs a compiled [`Scenario`] with the name of the
//! generator that produced it, in a compact versioned byte format
//! modelled on the scenario codec: any sweep cell can be dumped to a
//! file and replayed byte-identically anywhere (`rekey workload
//! --trace file.bin --scheme all`). Decoding is total — truncated,
//! corrupt, or future-versioned inputs return a typed [`TraceError`]
//! instead of panicking.

use crate::scenario::Scenario;
use std::fmt;

const MAGIC: &[u8] = b"RKWT";
const VERSION: u8 = 1;

/// A replayable workload trace: the generator name plus the compiled
/// scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Name of the generator that produced the scenario (recorded for
    /// reporting; replay does not re-run the generator).
    pub generator: String,
    /// The compiled churn scenario.
    pub scenario: Scenario,
}

/// Decoding errors for the trace file format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The input does not start with the `RKWT` magic.
    BadMagic,
    /// The version byte is newer than this build understands.
    UnsupportedVersion(u8),
    /// The input ended before the encoded length was reached.
    Truncated,
    /// Bytes remain after the encoded trace.
    TrailingBytes(usize),
    /// The generator name is not valid UTF-8.
    BadGeneratorName,
    /// The embedded scenario bytes failed to decode.
    BadScenario,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a workload trace (bad magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace version {v} (this build reads {VERSION})"
                )
            }
            TraceError::Truncated => write!(f, "trace truncated"),
            TraceError::TrailingBytes(n) => {
                write!(f, "{n} trailing byte(s) after the encoded trace")
            }
            TraceError::BadGeneratorName => write!(f, "generator name is not valid UTF-8"),
            TraceError::BadScenario => write!(f, "embedded scenario failed to decode"),
        }
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Serializes the trace:
    /// `RKWT | version | name_len:u8 | name | scenario_len:u32 | scenario`.
    pub fn encode(&self) -> Vec<u8> {
        let name = self.generator.as_bytes();
        let name = &name[..name.len().min(u8::MAX as usize)];
        let scenario = self.scenario.encode();
        let mut buf = Vec::with_capacity(MAGIC.len() + 6 + name.len() + scenario.len());
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.push(name.len() as u8);
        buf.extend_from_slice(name);
        buf.extend_from_slice(&(scenario.len() as u32).to_be_bytes());
        buf.extend_from_slice(&scenario);
        buf
    }

    /// Deserializes a trace written by [`Trace::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`TraceError`] pinning what is wrong with the input;
    /// never panics, whatever the bytes.
    pub fn decode(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut buf = bytes;
        let magic = take(&mut buf, MAGIC.len()).ok_or(TraceError::BadMagic)?;
        if magic != MAGIC {
            return Err(TraceError::BadMagic);
        }
        let version = *take(&mut buf, 1)
            .and_then(|b| b.first())
            .ok_or(TraceError::Truncated)?;
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion(version));
        }
        let name_len = *take(&mut buf, 1)
            .and_then(|b| b.first())
            .ok_or(TraceError::Truncated)? as usize;
        let name = take(&mut buf, name_len).ok_or(TraceError::Truncated)?;
        let generator = std::str::from_utf8(name)
            .map_err(|_| TraceError::BadGeneratorName)?
            .to_string();
        let scenario_len = take(&mut buf, 4)
            .map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")) as usize)
            .ok_or(TraceError::Truncated)?;
        let scenario_bytes = take(&mut buf, scenario_len).ok_or(TraceError::Truncated)?;
        if !buf.is_empty() {
            return Err(TraceError::TrailingBytes(buf.len()));
        }
        let scenario = Scenario::decode(scenario_bytes).ok_or(TraceError::BadScenario)?;
        Ok(Trace {
            generator,
            scenario,
        })
    }
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GenParams;

    fn sample() -> Trace {
        Trace {
            generator: "diurnal".into(),
            scenario: Scenario::generate(11, 20, &GenParams::default()),
        }
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let trace = sample();
        let bytes = trace.encode();
        let decoded = Trace::decode(&bytes).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.encode(), bytes);
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Trace::decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::BadMagic | TraceError::Truncated | TraceError::BadScenario
                ),
                "cut {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn bad_version_and_trailing_bytes_rejected() {
        let mut bytes = sample().encode();
        bytes[4] = 99;
        assert_eq!(
            Trace::decode(&bytes),
            Err(TraceError::UnsupportedVersion(99))
        );
        let mut padded = sample().encode();
        padded.extend_from_slice(&[0, 0]);
        assert_eq!(Trace::decode(&padded), Err(TraceError::TrailingBytes(2)));
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(Trace::decode(b"NOPE"), Err(TraceError::BadMagic));
        assert_eq!(Trace::decode(&[]), Err(TraceError::BadMagic));
    }

    #[test]
    fn corrupt_scenario_rejected() {
        let trace = sample();
        let mut bytes = trace.encode();
        // Flip a byte inside the embedded scenario's magic.
        let scenario_start = 4 + 1 + 1 + trace.generator.len() + 4;
        bytes[scenario_start] ^= 0xFF;
        assert_eq!(Trace::decode(&bytes), Err(TraceError::BadScenario));
    }
}
