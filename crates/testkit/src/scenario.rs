//! Seed-driven churn scenarios with a compact, replayable byte
//! encoding.
//!
//! A [`Scenario`] is the full ground truth of one fuzzer run: which
//! members join (with duration-class and loss-rate hints), which
//! leave, and whose network loss class changes, interval by interval.
//! Scenarios are *valid by construction* (leavers are present, join
//! ids are fresh) and every byte of a scenario is a pure function of
//! the seed, so `--seed N` replays the identical run anywhere.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rekey_core::DurationClass;

/// One join operation: the member, an optional duration-class hint
/// (exercises oracle placement), and its network loss rate (exercises
/// loss-forest placement and the lossy delivery modes).
#[derive(Debug, Clone, PartialEq)]
pub struct JoinOp {
    /// Fresh member id (never reused within a scenario).
    pub member: u64,
    /// Duration-class hint attached to the join, if any.
    pub class: Option<DurationClass>,
    /// The member's packet-loss rate in `[0, 1)`.
    pub loss: f64,
}

/// The operations of one rekey interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IntervalOps {
    /// Members joining this interval.
    pub joins: Vec<JoinOp>,
    /// Members leaving this interval (present before the interval).
    pub leaves: Vec<u64>,
    /// Loss-class changes `(member, new loss rate)` for members that
    /// remain present.
    pub loss_changes: Vec<(u64, f64)>,
}

impl IntervalOps {
    /// Total operations in this interval.
    pub fn op_count(&self) -> usize {
        self.joins.len() + self.leaves.len() + self.loss_changes.len()
    }
}

/// A complete replayable churn scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// The seed this scenario was generated from (recorded for replay
    /// commands; a shrunk scenario keeps its ancestor's seed).
    pub seed: u64,
    /// Key-tree degree for the manager under test.
    pub degree: u8,
    /// S-period (in intervals) for the partitioned schemes.
    pub k: u16,
    /// Per-interval operations; index 0 is the bootstrap interval.
    pub intervals: Vec<IntervalOps>,
}

/// Tunables for [`Scenario::generate`].
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Members admitted in the bootstrap interval.
    pub bootstrap: usize,
    /// Key-tree degree recorded in the scenario.
    pub degree: u8,
    /// S-period recorded in the scenario.
    pub k: u16,
    /// Loss classes members are assigned to (all in `[0, 1)`).
    pub loss_classes: Vec<f64>,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            bootstrap: 32,
            degree: 4,
            k: 3,
            loss_classes: vec![0.2, 0.02, 0.0],
        }
    }
}

impl Scenario {
    /// Total operations across all intervals.
    pub fn op_count(&self) -> usize {
        self.intervals.iter().map(IntervalOps::op_count).sum()
    }

    /// Generates the scenario for `seed`: a bootstrap interval
    /// followed by `intervals` churn intervals mixing joins (with
    /// hints), leaves, pure-join stretches, occasional mass
    /// departures, and loss-class changes. Every call with the same
    /// arguments returns a byte-identical scenario.
    pub fn generate(seed: u64, intervals: usize, params: &GenParams) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5CE9_A210_FA57_F00D);
        let classes = &params.loss_classes;
        let class = |rng: &mut StdRng| classes[rng.gen_range(0..classes.len().max(1))];
        let mut next_id = 0u64;
        let mut present: Vec<u64> = Vec::new();
        let mut out: Vec<IntervalOps> = Vec::with_capacity(intervals + 1);

        let mut make_joins = |n: usize, present: &mut Vec<u64>, rng: &mut StdRng| -> Vec<JoinOp> {
            (0..n)
                .map(|_| {
                    let member = next_id;
                    next_id += 1;
                    present.push(member);
                    JoinOp {
                        member,
                        class: match rng.gen_range(0u32..3) {
                            0 => None,
                            1 => Some(DurationClass::Short),
                            _ => Some(DurationClass::Long),
                        },
                        loss: class(rng),
                    }
                })
                .collect()
        };

        out.push(IntervalOps {
            joins: make_joins(params.bootstrap, &mut present, &mut rng),
            ..IntervalOps::default()
        });

        for _ in 0..intervals {
            let mut ops = IntervalOps::default();

            // Leaves come from the pre-interval membership; ~1 in 8
            // intervals is a mass departure that empties a large slice
            // of the group (stress for subtree collapse and queues).
            let max_leaves = if rng.gen::<f64>() < 0.125 {
                present.len() / 2
            } else {
                3
            };
            let n_leaves = if max_leaves == 0 || rng.gen::<f64>() < 0.2 {
                0
            } else {
                rng.gen_range(0..max_leaves + 1)
            };
            for _ in 0..n_leaves.min(present.len()) {
                let idx = rng.gen_range(0..present.len());
                ops.leaves.push(present.swap_remove(idx));
            }
            ops.leaves.sort_unstable();

            // Joins; ~1 in 6 intervals is join-free (exercises the
            // pure-departure phases).
            if rng.gen::<f64>() >= 1.0 / 6.0 {
                ops.joins = make_joins(rng.gen_range(1..5), &mut present, &mut rng);
            }

            // Occasional loss-class change for a surviving member.
            if !present.is_empty() && rng.gen::<f64>() < 0.2 {
                let member = present[rng.gen_range(0..present.len())];
                ops.loss_changes.push((member, class(&mut rng)));
            }

            out.push(ops);
        }

        Scenario {
            seed,
            degree: params.degree,
            k: params.k,
            intervals: out,
        }
    }

    /// Serializes the scenario to its compact replayable byte form.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32 + self.op_count() * 10);
        buf.extend_from_slice(MAGIC);
        buf.push(VERSION);
        buf.extend_from_slice(&self.seed.to_be_bytes());
        buf.push(self.degree);
        buf.extend_from_slice(&self.k.to_be_bytes());
        buf.extend_from_slice(&(self.intervals.len() as u32).to_be_bytes());
        for iv in &self.intervals {
            buf.extend_from_slice(&(iv.joins.len() as u32).to_be_bytes());
            for j in &iv.joins {
                buf.extend_from_slice(&j.member.to_be_bytes());
                buf.push(match j.class {
                    None => 0,
                    Some(DurationClass::Short) => 1,
                    Some(DurationClass::Long) => 2,
                });
                buf.extend_from_slice(&j.loss.to_bits().to_be_bytes());
            }
            buf.extend_from_slice(&(iv.leaves.len() as u32).to_be_bytes());
            for m in &iv.leaves {
                buf.extend_from_slice(&m.to_be_bytes());
            }
            buf.extend_from_slice(&(iv.loss_changes.len() as u32).to_be_bytes());
            for (m, loss) in &iv.loss_changes {
                buf.extend_from_slice(&m.to_be_bytes());
                buf.extend_from_slice(&loss.to_bits().to_be_bytes());
            }
        }
        buf
    }

    /// Deserializes a scenario written by [`Scenario::encode`].
    /// Returns `None` on a bad magic/version, truncation, or trailing
    /// bytes.
    pub fn decode(bytes: &[u8]) -> Option<Scenario> {
        let mut buf = bytes;
        let magic = take(&mut buf, MAGIC.len())?;
        if magic != MAGIC || *take(&mut buf, 1)?.first()? != VERSION {
            return None;
        }
        let seed = get_u64(&mut buf)?;
        let degree = *take(&mut buf, 1)?.first()?;
        let k = u16::from_be_bytes(take(&mut buf, 2)?.try_into().ok()?);
        let n_intervals = get_u32(&mut buf)? as usize;
        let mut intervals = Vec::with_capacity(n_intervals.min(buf.len()));
        for _ in 0..n_intervals {
            let mut iv = IntervalOps::default();
            for _ in 0..get_u32(&mut buf)? {
                iv.joins.push(JoinOp {
                    member: get_u64(&mut buf)?,
                    class: match *take(&mut buf, 1)?.first()? {
                        0 => None,
                        1 => Some(DurationClass::Short),
                        2 => Some(DurationClass::Long),
                        _ => return None,
                    },
                    loss: f64::from_bits(get_u64(&mut buf)?),
                });
            }
            for _ in 0..get_u32(&mut buf)? {
                iv.leaves.push(get_u64(&mut buf)?);
            }
            for _ in 0..get_u32(&mut buf)? {
                iv.loss_changes
                    .push((get_u64(&mut buf)?, f64::from_bits(get_u64(&mut buf)?)));
            }
            intervals.push(iv);
        }
        buf.is_empty().then_some(Scenario {
            seed,
            degree,
            k,
            intervals,
        })
    }

    /// Re-validates op ordering after arbitrary op removal (used by
    /// the shrinker): drops leaves and loss changes that reference
    /// members no longer joined — including a leave of a member
    /// already departed earlier in the *same* interval — and duplicate
    /// joins. The result is a scenario any manager accepts.
    ///
    /// Sanitizing silently *repairs*; replay paths that must not mask
    /// a hand-edited trace's mistakes should call
    /// [`Scenario::validate`] first and surface the typed error.
    pub fn sanitize(&mut self) {
        let mut joined = std::collections::BTreeSet::new();
        let mut present = std::collections::BTreeSet::new();
        for iv in &mut self.intervals {
            iv.leaves.retain(|m| present.remove(m));
            iv.joins.retain(|j| joined.insert(j.member));
            for j in &iv.joins {
                present.insert(j.member);
            }
            iv.loss_changes.retain(|(m, _)| present.contains(m));
        }
    }

    /// Checks the validity-by-construction invariants without
    /// repairing anything, pinning the first offending op.
    ///
    /// Generated scenarios always pass; the point is *replayed* traces
    /// that were hand-edited after dumping — a leave of a member
    /// already departed in the same interval (or never admitted), a
    /// duplicate join, a loss change for an absent member — which used
    /// to slip through to the manager because replay relied on
    /// validity-by-construction.
    ///
    /// Leaves are checked against the pre-interval membership, exactly
    /// as managers apply them: a leave of a member joining in the same
    /// interval is invalid.
    ///
    /// # Errors
    ///
    /// Returns the [`ScenarioError`] for the first invalid op in
    /// interval order.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let mut joined = std::collections::BTreeSet::new();
        let mut present = std::collections::BTreeSet::new();
        for (interval, iv) in self.intervals.iter().enumerate() {
            for &member in &iv.leaves {
                if !present.remove(&member) {
                    return Err(if joined.contains(&member) {
                        ScenarioError::LeaveOfDeparted { interval, member }
                    } else {
                        ScenarioError::LeaveOfUnknown { interval, member }
                    });
                }
            }
            for j in &iv.joins {
                if !joined.insert(j.member) {
                    return Err(ScenarioError::DuplicateJoin {
                        interval,
                        member: j.member,
                    });
                }
                present.insert(j.member);
            }
            for &(member, _) in &iv.loss_changes {
                if !present.contains(&member) {
                    return Err(ScenarioError::LossChangeOfAbsent { interval, member });
                }
            }
        }
        Ok(())
    }
}

/// A validity violation found by [`Scenario::validate`], pinned to the
/// first offending op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioError {
    /// A leave names a member that already departed — earlier in the
    /// same interval (a duplicated leave) or in a previous one.
    LeaveOfDeparted {
        /// Interval index of the offending leave.
        interval: usize,
        /// The already-departed member.
        member: u64,
    },
    /// A leave names a member never admitted before the interval
    /// (including a member joining only in the same interval: managers
    /// apply leaves against the pre-interval membership).
    LeaveOfUnknown {
        /// Interval index of the offending leave.
        interval: usize,
        /// The unknown member.
        member: u64,
    },
    /// A join reuses a member id admitted earlier in the scenario.
    DuplicateJoin {
        /// Interval index of the offending join.
        interval: usize,
        /// The reused member id.
        member: u64,
    },
    /// A loss change names a member not present after the interval's
    /// joins and leaves.
    LossChangeOfAbsent {
        /// Interval index of the offending loss change.
        interval: usize,
        /// The absent member.
        member: u64,
    },
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::LeaveOfDeparted { interval, member } => write!(
                f,
                "interval {interval}: leave of member {member} already departed"
            ),
            ScenarioError::LeaveOfUnknown { interval, member } => write!(
                f,
                "interval {interval}: leave of member {member} never admitted before the interval"
            ),
            ScenarioError::DuplicateJoin { interval, member } => {
                write!(f, "interval {interval}: duplicate join of member {member}")
            }
            ScenarioError::LossChangeOfAbsent { interval, member } => write!(
                f,
                "interval {interval}: loss change for absent member {member}"
            ),
        }
    }
}

impl std::error::Error for ScenarioError {}

const MAGIC: &[u8] = b"RKSC";
const VERSION: u8 = 1;

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if buf.len() < n {
        return None;
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Some(head)
}

fn get_u64(buf: &mut &[u8]) -> Option<u64> {
    take(buf, 8).map(|b| u64::from_be_bytes(b.try_into().unwrap()))
}

fn get_u32(buf: &mut &[u8]) -> Option<u32> {
    take(buf, 4).map(|b| u32::from_be_bytes(b.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Scenario::generate(42, 30, &GenParams::default());
        let b = Scenario::generate(42, 30, &GenParams::default());
        assert_eq!(a, b);
        assert_eq!(a.encode(), b.encode());
        let c = Scenario::generate(43, 30, &GenParams::default());
        assert_ne!(a.encode(), c.encode());
    }

    #[test]
    fn encode_decode_round_trip() {
        for seed in [0, 1, 7, 0xDEAD_BEEF] {
            let s = Scenario::generate(seed, 25, &GenParams::default());
            let bytes = s.encode();
            assert_eq!(Scenario::decode(&bytes), Some(s));
        }
    }

    #[test]
    fn truncation_and_garbage_rejected() {
        let s = Scenario::generate(3, 10, &GenParams::default());
        let bytes = s.encode();
        for cut in 0..bytes.len().min(64) {
            assert_eq!(Scenario::decode(&bytes[..cut]), None, "cut at {cut}");
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert_eq!(Scenario::decode(&padded), None);
    }

    #[test]
    fn scenarios_are_valid_by_construction() {
        let s = Scenario::generate(11, 80, &GenParams::default());
        let mut sanitized = s.clone();
        sanitized.sanitize();
        assert_eq!(s, sanitized, "generator emitted an invalid op");
        // Churn variety: some interval must leave, some must not.
        assert!(s.intervals.iter().any(|iv| !iv.leaves.is_empty()));
        assert!(s.intervals.iter().any(|iv| iv.leaves.is_empty()));
        assert!(s.intervals.iter().any(|iv| !iv.loss_changes.is_empty()));
    }

    #[test]
    fn validate_accepts_generated_scenarios() {
        for seed in [0, 9, 77] {
            Scenario::generate(seed, 50, &GenParams::default())
                .validate()
                .expect("generated scenarios are valid by construction");
        }
    }

    #[test]
    fn validate_rejects_duplicate_leave_in_same_interval() {
        // Hand-edit a trace: duplicate an existing leave inside its
        // interval — the replay-path bug class sanitize used to be the
        // only (silent) guard against.
        let mut s = Scenario::generate(8, 40, &GenParams::default());
        let (idx, member) = s
            .intervals
            .iter()
            .enumerate()
            .find_map(|(i, iv)| iv.leaves.first().map(|&m| (i, m)))
            .expect("some interval has a leave");
        s.intervals[idx].leaves.push(member);
        assert_eq!(
            s.validate(),
            Err(ScenarioError::LeaveOfDeparted {
                interval: idx,
                member
            })
        );
        // sanitize() repairs the same edit back to the original.
        let mut repaired = s.clone();
        repaired.sanitize();
        repaired.validate().expect("sanitize repairs the edit");
    }

    #[test]
    fn validate_rejects_leave_of_unknown_and_same_interval_joiner() {
        let mut s = Scenario::generate(8, 10, &GenParams::default());
        s.intervals[2].leaves.insert(0, 9_999_999);
        assert_eq!(
            s.validate(),
            Err(ScenarioError::LeaveOfUnknown {
                interval: 2,
                member: 9_999_999
            })
        );

        // A leave of a member that only joins in the same interval is
        // equally invalid: managers apply leaves first.
        let mut s = Scenario::generate(8, 10, &GenParams::default());
        let (idx, joiner) = s
            .intervals
            .iter()
            .enumerate()
            .skip(1)
            .find_map(|(i, iv)| iv.joins.first().map(|j| (i, j.member)))
            .expect("some churn interval has a join");
        s.intervals[idx].leaves.push(joiner);
        assert_eq!(
            s.validate(),
            Err(ScenarioError::LeaveOfUnknown {
                interval: idx,
                member: joiner
            })
        );
    }

    #[test]
    fn validate_rejects_duplicate_join_and_absent_loss_change() {
        let mut s = Scenario::generate(8, 10, &GenParams::default());
        let dup = s.intervals[0].joins[0].clone();
        s.intervals[4].joins.push(dup.clone());
        assert_eq!(
            s.validate(),
            Err(ScenarioError::DuplicateJoin {
                interval: 4,
                member: dup.member
            })
        );

        let mut s = Scenario::generate(8, 10, &GenParams::default());
        s.intervals[5].loss_changes.push((8_888_888, 0.5));
        assert_eq!(
            s.validate(),
            Err(ScenarioError::LossChangeOfAbsent {
                interval: 5,
                member: 8_888_888
            })
        );
    }

    #[test]
    fn sanitize_cascades_join_removal() {
        let mut s = Scenario::generate(5, 40, &GenParams::default());
        // Remove every join of the bootstrap interval: all later ops
        // touching those members must be dropped.
        let dropped: Vec<u64> = s.intervals[0].joins.iter().map(|j| j.member).collect();
        s.intervals[0].joins.clear();
        s.sanitize();
        for iv in &s.intervals {
            assert!(!iv.leaves.iter().any(|m| dropped.contains(m)));
            assert!(!iv.loss_changes.iter().any(|(m, _)| dropped.contains(m)));
        }
    }
}
