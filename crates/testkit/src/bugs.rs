//! Deliberately broken manager wrappers.
//!
//! These exist to prove the oracle can actually catch the bug classes
//! it was built for: each wrapper injects a realistic server defect
//! while keeping the server's *bookkeeping* self-consistent, so only
//! the wire-level knowledge model can notice.

use rand::RngCore;
use rekey_core::{GroupKeyManager, IntervalOutcome, Join};
use rekey_crypto::Key;
use rekey_keytree::{KeyTreeError, MemberId, NodeId};

/// Simulates "forgot to refresh the path keys for one leave": the
/// first leaver ever processed is silently dropped from the batch
/// handed to the inner manager, so none of the keys on its path
/// rotate — but the wrapper *lies* about membership (count, contains,
/// members-under) exactly the way a server with this bug would: its
/// bookkeeping says the member left while its tree still encrypts to
/// it.
pub struct SkipOneLeave<M> {
    inner: M,
    skipped: Option<MemberId>,
}

impl<M> SkipOneLeave<M> {
    /// Wraps `inner`.
    pub fn new(inner: M) -> Self {
        SkipOneLeave {
            inner,
            skipped: None,
        }
    }

    fn hidden(&self, member: MemberId) -> bool {
        self.skipped == Some(member)
    }
}

impl<M: GroupKeyManager> GroupKeyManager for SkipOneLeave<M> {
    fn process_interval(
        &mut self,
        joins: &[Join],
        leaves: &[MemberId],
        rng: &mut dyn RngCore,
    ) -> Result<IntervalOutcome, KeyTreeError> {
        if self.skipped.is_none() {
            if let Some((&first, rest)) = leaves.split_first() {
                let mut out = self.inner.process_interval(joins, rest, rng)?;
                self.skipped = Some(first);
                out.stats.leaves = leaves.len();
                return Ok(out);
            }
        }
        self.inner.process_interval(joins, leaves, rng)
    }

    fn set_parallelism(&mut self, workers: usize) {
        self.inner.set_parallelism(workers);
    }

    fn dek_node(&self) -> NodeId {
        self.inner.dek_node()
    }

    fn dek(&self) -> &Key {
        self.inner.dek()
    }

    fn member_count(&self) -> usize {
        let hidden = self.skipped.is_some_and(|m| self.inner.contains(m)) as usize;
        self.inner.member_count() - hidden
    }

    fn contains(&self, member: MemberId) -> bool {
        !self.hidden(member) && self.inner.contains(member)
    }

    fn members_under(&self, node: NodeId) -> Vec<MemberId> {
        let mut members = self.inner.members_under(node);
        members.retain(|&m| !self.hidden(m));
        members
    }

    fn members_under_into(&self, node: NodeId, out: &mut Vec<MemberId>) {
        let start = out.len();
        self.inner.members_under_into(node, out);
        if let Some(skipped) = self.skipped {
            let mut idx = start;
            while idx < out.len() {
                if out[idx] == skipped {
                    out.remove(idx);
                } else {
                    idx += 1;
                }
            }
        }
    }

    fn scheme_name(&self) -> &'static str {
        self.inner.scheme_name()
    }
}
