//! Scenario runner and counterexample shrinker.
//!
//! [`run_scenario`] drives one [`GroupKeyManager`] through a
//! [`Scenario`]: every interval's output message is *encoded to wire
//! bytes*, decoded back, folded into the [`KnowledgeOracle`],
//! delivered to the [`MemberFarm`], and the full invariant suite runs.
//! Churn and network randomness come from two independent seeded
//! streams, so the verdict and the run digest are identical regardless
//! of the manager's worker count.
//!
//! [`shrink`] bisects a failing scenario down to a minimal prefix and
//! then greedily deletes whole intervals and individual operations
//! (re-validating candidates with [`Scenario::sanitize`]) while the
//! failure persists.

use crate::farm::{Delivery, MemberFarm};
use crate::oracle::KnowledgeOracle;
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::{GroupKeyManager, Join};
use rekey_crypto::sha256::Sha256;
use rekey_keytree::message::codec;
use rekey_keytree::MemberId;

/// Builds a fresh manager for a scenario (degree/k come from the
/// scenario so a shrunk scenario rebuilds the identical manager).
pub type ManagerFactory<'a> = dyn Fn(&Scenario) -> Box<dyn GroupKeyManager> + 'a;

/// Runner configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Delivery model between server and present members.
    pub delivery: Delivery,
    /// Worker count handed to [`GroupKeyManager::set_parallelism`].
    pub workers: usize,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            delivery: Delivery::Lossless,
            workers: 1,
        }
    }
}

/// A failed invariant, pinned to the interval that exposed it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Index into [`Scenario::intervals`] (0 = bootstrap).
    pub interval: usize,
    /// Human-readable description of the violated invariant.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "interval {}: {}", self.interval, self.detail)
    }
}

/// Aggregates of a clean run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Intervals executed.
    pub intervals: usize,
    /// Present members at the end of the run.
    pub final_members: usize,
    /// Total rekey entries multicast.
    pub total_entries: usize,
    /// Total wire bytes multicast.
    pub total_bytes: usize,
    /// SHA-256 over the concatenated wire bytes of every interval —
    /// the determinism fingerprint (same seed, any worker count ⇒ same
    /// digest).
    pub digest: [u8; 32],
}

/// One interval's measurements, handed to the observer of
/// [`run_scenario_with`] after the interval's invariant checks pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntervalObservation {
    /// Index into [`Scenario::intervals`] (0 = bootstrap).
    pub interval: usize,
    /// Multicast wire bytes of the interval's rekey message.
    pub bytes: usize,
    /// Encrypted-key entries in the message.
    pub entries: usize,
    /// Wall-clock nanoseconds spent in
    /// [`GroupKeyManager::process_interval`] — the server-side rekey
    /// latency, excluding delivery and oracle bookkeeping.
    pub process_ns: u64,
    /// Present members after the interval (the key tree size).
    pub members: usize,
}

/// Runs `scenario` against a manager built by `factory` and returns
/// run statistics, or the first invariant violation.
pub fn run_scenario(
    factory: &ManagerFactory,
    scenario: &Scenario,
    opts: &RunOptions,
) -> Result<RunStats, Violation> {
    run_scenario_with(factory, scenario, opts, &mut |_| {})
}

/// [`run_scenario`] with a per-interval observer: the workload sweep
/// uses it to collect bandwidth-per-interval, rekey latency
/// percentiles, and peak tree size without a second pass. The
/// observer sees only measurements — verdict and digest are identical
/// to [`run_scenario`] whatever it does.
pub fn run_scenario_with(
    factory: &ManagerFactory,
    scenario: &Scenario,
    opts: &RunOptions,
    observer: &mut dyn FnMut(IntervalObservation),
) -> Result<RunStats, Violation> {
    let mut manager = factory(scenario);
    manager.set_parallelism(opts.workers.max(1));

    // Independent streams: worker count must not perturb the churn
    // keys, and delivery draws must not perturb the server.
    let mut churn_rng = StdRng::seed_from_u64(scenario.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut net_rng = StdRng::seed_from_u64(scenario.seed ^ 0x6A09_E667_F3BC_C908);

    let mut oracle = KnowledgeOracle::new();
    let mut farm = MemberFarm::new();
    let mut hasher = Sha256::new();
    let mut total_entries = 0usize;
    let mut total_bytes = 0usize;

    for (interval, ops) in scenario.intervals.iter().enumerate() {
        let fail = |detail: String| Violation { interval, detail };

        let mut joins = Vec::with_capacity(ops.joins.len());
        for op in &ops.joins {
            let key = rekey_crypto::Key::generate(&mut churn_rng);
            farm.admit(MemberId(op.member), key.clone(), op.loss);
            let mut join = Join::new(MemberId(op.member), key).with_loss_rate(op.loss);
            if let Some(class) = op.class {
                join = join.with_class(class);
            }
            joins.push(join);
        }
        let leaves: Vec<MemberId> = ops.leaves.iter().map(|&m| MemberId(m)).collect();
        for &m in &leaves {
            farm.depart(m);
        }
        for &(m, loss) in &ops.loss_changes {
            farm.set_loss(MemberId(m), loss);
        }

        let started = std::time::Instant::now();
        let out = manager
            .process_interval(&joins, &leaves, &mut churn_rng)
            .map_err(|e| fail(format!("manager rejected batch: {e}")))?;
        let process_ns = started.elapsed().as_nanos() as u64;

        let bytes = codec::encode_message(&out.message);
        hasher.update(&bytes);
        total_entries += out.message.encrypted_key_count();
        total_bytes += bytes.len();
        let decoded = codec::decode_message(&bytes)
            .ok_or_else(|| fail("wire bytes failed to decode".into()))?;
        if decoded != out.message {
            return Err(fail("wire round-trip altered the message".into()));
        }

        let report = oracle.observe(&decoded);
        let complete = farm
            .deliver(&decoded, opts.delivery, manager.as_ref(), &mut net_rng)
            .map_err(|e| fail(e.to_string()))?;
        farm.check(&oracle, manager.as_ref(), &report, complete)
            .map_err(|e| fail(e.to_string()))?;

        observer(IntervalObservation {
            interval,
            bytes: bytes.len(),
            entries: out.message.encrypted_key_count(),
            process_ns,
            members: farm.present().len(),
        });
    }

    Ok(RunStats {
        intervals: scenario.intervals.len(),
        final_members: farm.present().len(),
        total_entries,
        total_bytes,
        digest: hasher.finalize(),
    })
}

/// Outcome of shrinking a failing scenario.
#[derive(Debug, Clone)]
pub struct ShrinkReport {
    /// The minimal failing scenario found.
    pub scenario: Scenario,
    /// The violation the minimal scenario triggers.
    pub violation: Violation,
    /// Scenario executions spent shrinking.
    pub runs: usize,
}

impl ShrinkReport {
    /// A `rekey-cli` command line replaying the *original* seed (the
    /// shrunk scenario itself travels as ops, but the seed reproduces
    /// the ancestor run end to end).
    pub fn replay_command(&self, scheme: &str, delivery: Delivery, workers: usize) -> String {
        format!(
            "rekey fuzz --scheme {scheme} --seed {} --intervals {} --loss {} --workers {workers}",
            self.scenario.seed,
            self.scenario.intervals.len().saturating_sub(1),
            delivery.name(),
        )
    }
}

/// Shrinks a failing scenario: first bisects to the shortest failing
/// interval prefix, then greedily removes whole intervals, then
/// individual operations, sanitizing each candidate. `budget` caps the
/// number of scenario re-executions (each a full run).
///
/// The caller must have observed `scenario` fail under the same
/// factory and options; if it unexpectedly passes, the original
/// scenario is returned with the provided violation.
pub fn shrink(
    factory: &ManagerFactory,
    scenario: &Scenario,
    opts: &RunOptions,
    violation: Violation,
    budget: usize,
) -> ShrinkReport {
    let runs = std::cell::Cell::new(0usize);
    let rerun = |candidate: &Scenario| -> Option<Violation> {
        runs.set(runs.get() + 1);
        run_scenario(factory, candidate, opts).err()
    };

    // The failure triggered at `violation.interval`, so the prefix up
    // to and including it must fail too (runs are deterministic).
    let mut best = scenario.clone();
    best.intervals.truncate(violation.interval + 1);
    let mut best_violation = match rerun(&best) {
        Some(v) => v,
        None => {
            return ShrinkReport {
                scenario: scenario.clone(),
                violation,
                runs: runs.get(),
            }
        }
    };

    // Greedy deletion passes, largest granularity first, repeated
    // until a full pass removes nothing or the budget runs out.
    let mut made_progress = true;
    while made_progress && runs.get() < budget {
        made_progress = false;

        // Whole intervals (never the bootstrap shape: an empty
        // interval is simply dropped).
        let mut idx = 0;
        while idx < best.intervals.len() && runs.get() < budget {
            let mut candidate = best.clone();
            candidate.intervals.remove(idx);
            candidate.sanitize();
            if let Some(v) = rerun(&candidate) {
                best = candidate;
                best_violation = v;
                made_progress = true;
            } else {
                idx += 1;
            }
        }

        // Individual operations.
        let mut iv = 0;
        while iv < best.intervals.len() && runs.get() < budget {
            for kind in 0..3usize {
                let mut op = 0;
                loop {
                    if runs.get() >= budget {
                        break;
                    }
                    let mut candidate = best.clone();
                    let ops = &mut candidate.intervals[iv];
                    let len = match kind {
                        0 => ops.leaves.len(),
                        1 => ops.joins.len(),
                        _ => ops.loss_changes.len(),
                    };
                    if op >= len {
                        break;
                    }
                    match kind {
                        0 => {
                            ops.leaves.remove(op);
                        }
                        1 => {
                            ops.joins.remove(op);
                        }
                        _ => {
                            ops.loss_changes.remove(op);
                        }
                    }
                    candidate.sanitize();
                    if let Some(v) = rerun(&candidate) {
                        best = candidate;
                        best_violation = v;
                        made_progress = true;
                    } else {
                        op += 1;
                    }
                }
            }
            iv += 1;
        }
    }

    ShrinkReport {
        scenario: best,
        violation: best_violation,
        runs: runs.get(),
    }
}
