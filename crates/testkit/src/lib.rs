//! End-to-end correctness harness for the group key management
//! schemes: a deterministic churn fuzzer with a shadow key-knowledge
//! oracle.
//!
//! The pieces, in pipeline order:
//!
//! - [`scenario`] — seed-driven generation of churn scenarios (joins
//!   with duration/loss hints, leaves, mass departures, loss-class
//!   changes) with a compact replayable byte encoding. Same seed ⇒
//!   byte-identical scenario.
//! - [`oracle`] — a [`oracle::KnowledgeOracle`] built purely from the
//!   multicast rekey messages, independent of server internals: for
//!   every `(node, version)` key ever on the wire, the exact member
//!   set entitled to it.
//! - [`farm`] — a [`farm::MemberFarm`] of real [`GroupMember`]s fed
//!   only *encoded wire bytes* through a delivery model (lossless,
//!   Bernoulli loss, or the WKA-BKR reliable transport). Departed
//!   members keep receiving everything, modelling a replay adversary.
//! - [`runner`] — [`runner::run_scenario`] glues the three together
//!   and checks forward secrecy, ring soundness, DEK confinement,
//!   bookkeeping, and (on complete deliveries) liveness after every
//!   interval; [`runner::shrink`] minimizes failures to a small
//!   replayable counterexample.
//! - [`bugs`] — deliberately defective manager wrappers proving the
//!   oracle catches the bug classes it targets.
//! - [`crashsim`] — crash/recovery equivalence: scenarios journaled to
//!   an in-memory [`rekey_storage::Storage`], killed and recovered on
//!   a schedule, must reproduce the uninterrupted run byte-for-byte.
//! - [`workload`] — named trace-driven churn generators (`uniform`,
//!   `diurnal`, `flash-crowd`, `mobile-flap`, `regional-loss`) that
//!   compile down to [`Scenario`]s, plus an observed runner reporting
//!   bandwidth, rekey-latency percentiles, and peak tree size.
//! - [`trace`] — the replayable trace file format: a compiled
//!   scenario tagged with its generator name, with typed decode
//!   errors.
//!
//! [`GroupMember`]: rekey_keytree::member::GroupMember

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bugs;
pub mod crashsim;
pub mod farm;
pub mod oracle;
pub mod runner;
pub mod scenario;
pub mod trace;
pub mod workload;

pub use crashsim::{run_with_crashes, CrashSimReport};
pub use farm::{Delivery, FarmError, MemberFarm};
pub use oracle::KnowledgeOracle;
pub use runner::{
    run_scenario, run_scenario_with, shrink, IntervalObservation, RunOptions, RunStats,
    ShrinkReport, Violation,
};
pub use scenario::{GenParams, IntervalOps, JoinOp, Scenario, ScenarioError};
pub use trace::{Trace, TraceError};
pub use workload::{
    all_workloads, run_workload, workload_by_name, Workload, WorkloadRun, WORKLOAD_NAMES,
};

use rekey_core::scheme::{Scheme, SchemeConfig};
use rekey_core::GroupKeyManager;

/// A [`runner::ManagerFactory`] for a scheme, reading degree and
/// S-period from each scenario so a shrunk scenario rebuilds the
/// identical configuration. All construction goes through
/// [`Scheme::build`] — the testkit maintains no factory of its own.
pub fn factory_for(scheme: Scheme) -> impl Fn(&Scenario) -> Box<dyn GroupKeyManager> {
    move |s: &Scenario| {
        scheme.build(
            &SchemeConfig::new()
                .degree(s.degree as usize)
                .s_period(u64::from(s.k)),
        )
    }
}
