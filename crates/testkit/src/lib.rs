//! End-to-end correctness harness for the group key management
//! schemes: a deterministic churn fuzzer with a shadow key-knowledge
//! oracle.
//!
//! The pieces, in pipeline order:
//!
//! - [`scenario`] — seed-driven generation of churn scenarios (joins
//!   with duration/loss hints, leaves, mass departures, loss-class
//!   changes) with a compact replayable byte encoding. Same seed ⇒
//!   byte-identical scenario.
//! - [`oracle`] — a [`oracle::KnowledgeOracle`] built purely from the
//!   multicast rekey messages, independent of server internals: for
//!   every `(node, version)` key ever on the wire, the exact member
//!   set entitled to it.
//! - [`farm`] — a [`farm::MemberFarm`] of real [`GroupMember`]s fed
//!   only *encoded wire bytes* through a delivery model (lossless,
//!   Bernoulli loss, or the WKA-BKR reliable transport). Departed
//!   members keep receiving everything, modelling a replay adversary.
//! - [`runner`] — [`runner::run_scenario`] glues the three together
//!   and checks forward secrecy, ring soundness, DEK confinement,
//!   bookkeeping, and (on complete deliveries) liveness after every
//!   interval; [`runner::shrink`] minimizes failures to a small
//!   replayable counterexample.
//! - [`bugs`] — deliberately defective manager wrappers proving the
//!   oracle catches the bug classes it targets.
//!
//! [`GroupMember`]: rekey_keytree::member::GroupMember

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bugs;
pub mod farm;
pub mod oracle;
pub mod runner;
pub mod scenario;

pub use farm::{Delivery, MemberFarm};
pub use oracle::KnowledgeOracle;
pub use runner::{run_scenario, shrink, RunOptions, RunStats, ShrinkReport, Violation};
pub use scenario::{GenParams, IntervalOps, JoinOp, Scenario};

use rekey_core::adaptive::AdaptiveManager;
use rekey_core::combined::CombinedManager;
use rekey_core::loss_forest::LossForestManager;
use rekey_core::one_tree::OneTreeManager;
use rekey_core::partition::{PtManager, QtManager, TtManager};
use rekey_core::GroupKeyManager;

/// Command-line names of every scheme the fuzzer can drive.
pub const SCHEMES: [&str; 7] = ["one", "tt", "qt", "pt", "forest", "combined", "adaptive"];

/// Builds a manager by its command-line name; `None` for an unknown
/// name. Degree and S-period come from the scenario so shrunk
/// scenarios rebuild the identical configuration.
pub fn manager_for(scheme: &str, degree: usize, k: u64) -> Option<Box<dyn GroupKeyManager>> {
    Some(match scheme {
        "one" => Box::new(OneTreeManager::new(degree)),
        "tt" => Box::new(TtManager::new(degree, k)),
        "qt" => Box::new(QtManager::new(degree, k)),
        "pt" => Box::new(PtManager::new(degree)),
        "forest" => Box::new(LossForestManager::two_trees(degree)),
        "combined" => Box::new(CombinedManager::two_loss_classes(degree, k)),
        "adaptive" => Box::new(AdaptiveManager::paper_default(degree)),
        _ => return None,
    })
}

/// A [`runner::ManagerFactory`] for a named scheme, reading degree and
/// S-period from each scenario.
pub fn factory_for(scheme: &str) -> Option<impl Fn(&Scenario) -> Box<dyn GroupKeyManager> + '_> {
    manager_for(scheme, 4, 3)?; // validate the name eagerly
    Some(move |s: &Scenario| {
        manager_for(scheme, s.degree.max(2) as usize, u64::from(s.k.max(1)))
            .expect("name validated above")
    })
}
