//! Trace-driven workload generators.
//!
//! The fuzzer's uniform random churn ([`Scenario::generate`]) is a
//! good bug-finder but a poor performance workload: real group
//! membership follows diurnal curves, flash crowds at pay-per-view
//! boundaries, mobile flap, and regionally correlated loss — and the
//! retrieved optimal-tree and batch-insertion papers show scheme
//! rankings flip under exactly these non-uniform dynamics. This module
//! adds a [`Workload`] trait — a named, seed-deterministic generator of
//! interval-by-interval churn — and five implementations:
//!
//! - [`Uniform`] — byte-identical to [`Scenario::generate`], the
//!   fuzzer's behaviour, kept as the baseline;
//! - [`Diurnal`] — sinusoidal join/leave rates with configurable
//!   period and amplitude (daily audience curve);
//! - [`FlashCrowd`] — a mass-join ramp into a plateau followed by a
//!   mass departure (pay-per-view start/end);
//! - [`MobileFlap`] — short-lived rejoin-heavy sessions: flappy
//!   members leave after 1–3 intervals and usually rejoin at once;
//! - [`RegionalLoss`] — correlated loss-class shifts over member
//!   cohorts (a region degrades and later recovers as one event).
//!
//! Every workload **compiles down to the existing [`Scenario`]**
//! representation, so the shadow [`KnowledgeOracle`], the
//! [`MemberFarm`], the shrinker, and the trace codec all work
//! unchanged; [`crate::trace::Trace`] wraps the compiled scenario with
//! the generator name in a replayable file format.
//!
//! [`KnowledgeOracle`]: crate::oracle::KnowledgeOracle
//! [`MemberFarm`]: crate::farm::MemberFarm

use crate::runner::{run_scenario_with, ManagerFactory, RunOptions, RunStats, Violation};
use crate::scenario::{GenParams, IntervalOps, JoinOp, Scenario};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rekey_core::DurationClass;
use rekey_obs::hist::Log2Histogram;
use std::f64::consts::PI;

/// Live group bookkeeping handed to [`Workload::interval`].
///
/// The helpers guarantee the compiled scenario is valid by
/// construction: join ids are fresh, leaves only remove members that
/// were present *before* the interval (never same-interval joiners, so
/// [`Scenario::sanitize`] is a no-op on compiled output), and loss
/// changes only reference members present after the interval's ops.
#[derive(Debug)]
pub struct GroupState {
    /// Members present after all ops emitted so far (joins included).
    present: Vec<u64>,
    /// Members still eligible to leave this interval: present at the
    /// interval start and not yet departed this interval.
    eligible: Vec<u64>,
    next_id: u64,
    classes: Vec<f64>,
}

impl GroupState {
    fn new(params: &GenParams) -> Self {
        GroupState {
            present: Vec::new(),
            eligible: Vec::new(),
            next_id: 0,
            classes: if params.loss_classes.is_empty() {
                vec![0.0]
            } else {
                params.loss_classes.clone()
            },
        }
    }

    /// Snapshot the leave-eligible set for a fresh interval.
    fn begin_interval(&mut self) {
        self.eligible.clear();
        self.eligible.extend_from_slice(&self.present);
    }

    /// Members present right now (start-of-interval membership plus
    /// joins emitted so far, minus leaves emitted so far).
    pub fn present(&self) -> &[u64] {
        &self.present
    }

    /// Members that may still leave this interval.
    pub fn leavable(&self) -> usize {
        self.eligible.len()
    }

    /// A loss rate drawn from the configured loss classes.
    pub fn pick_loss(&self, rng: &mut StdRng) -> f64 {
        self.classes[rng.gen_range(0..self.classes.len())]
    }

    /// Admits a fresh member with a random duration-class hint and a
    /// loss rate drawn from the configured classes.
    pub fn join(&mut self, rng: &mut StdRng) -> JoinOp {
        let loss = self.pick_loss(rng);
        let class = match rng.gen_range(0u32..3) {
            0 => None,
            1 => Some(DurationClass::Short),
            _ => Some(DurationClass::Long),
        };
        self.join_with(class, loss)
    }

    /// Admits a fresh member with an explicit hint and loss rate.
    pub fn join_with(&mut self, class: Option<DurationClass>, loss: f64) -> JoinOp {
        let member = self.next_id;
        self.next_id += 1;
        self.present.push(member);
        JoinOp {
            member,
            class,
            loss,
        }
    }

    /// Departs a uniformly random eligible member, if any.
    pub fn leave_random(&mut self, rng: &mut StdRng) -> Option<u64> {
        if self.eligible.is_empty() {
            return None;
        }
        let idx = rng.gen_range(0..self.eligible.len());
        let member = self.eligible.swap_remove(idx);
        self.present.retain(|&m| m != member);
        Some(member)
    }

    /// Departs a specific member. Returns `false` (and emits nothing)
    /// if the member is not eligible — already departed, or joined
    /// only this interval.
    pub fn leave_member(&mut self, member: u64) -> bool {
        let Some(idx) = self.eligible.iter().position(|&m| m == member) else {
            return false;
        };
        self.eligible.swap_remove(idx);
        self.present.retain(|&m| m != member);
        true
    }

    /// A uniformly random currently-present member, if any.
    pub fn pick_present(&self, rng: &mut StdRng) -> Option<u64> {
        if self.present.is_empty() {
            None
        } else {
            Some(self.present[rng.gen_range(0..self.present.len())])
        }
    }
}

/// Stochastic rounding: `floor(x)` plus one with probability
/// `fract(x)` — preserves fractional rates without bias.
fn round_rate(x: f64, rng: &mut StdRng) -> usize {
    let base = x.max(0.0);
    let floor = base.floor();
    let extra = usize::from(rng.gen::<f64>() < base - floor);
    floor as usize + extra
}

/// A named, seed-deterministic churn generator.
///
/// Implementations emit one [`IntervalOps`] per churn interval through
/// [`Workload::interval`]; [`Workload::compile`] drives the bootstrap
/// and interval loop and assembles the final [`Scenario`]. The same
/// `(seed, intervals, params)` triple always compiles to a
/// byte-identical scenario.
pub trait Workload {
    /// Command-line name of the generator.
    fn name(&self) -> &'static str;

    /// Members admitted in the bootstrap interval.
    fn bootstrap(&self, params: &GenParams) -> usize {
        params.bootstrap
    }

    /// Emits the ops of churn interval `t` (`1..=total`; the bootstrap
    /// is interval 0 and handled by [`Workload::compile`]). All joins
    /// and leaves must go through the [`GroupState`] helpers so the
    /// compiled scenario stays valid by construction.
    fn interval(
        &mut self,
        t: usize,
        total: usize,
        group: &mut GroupState,
        rng: &mut StdRng,
    ) -> IntervalOps;

    /// Compiles the workload into a replayable [`Scenario`]. The
    /// default drives [`Workload::interval`] over a name-salted RNG;
    /// [`Uniform`] overrides it to delegate to [`Scenario::generate`]
    /// byte-identically.
    fn compile(&mut self, seed: u64, intervals: usize, params: &GenParams) -> Scenario {
        let mut rng = StdRng::seed_from_u64(seed ^ name_salt(self.name()));
        let mut group = GroupState::new(params);
        let mut out: Vec<IntervalOps> = Vec::with_capacity(intervals + 1);

        group.begin_interval();
        let bootstrap = self.bootstrap(params);
        out.push(IntervalOps {
            joins: (0..bootstrap).map(|_| group.join(&mut rng)).collect(),
            ..IntervalOps::default()
        });

        for t in 1..=intervals {
            group.begin_interval();
            let mut ops = self.interval(t, intervals, &mut group, &mut rng);
            ops.leaves.sort_unstable();
            out.push(ops);
        }

        Scenario {
            seed,
            degree: params.degree,
            k: params.k,
            intervals: out,
        }
    }
}

/// FNV-1a of the generator name: distinct workloads with the same seed
/// draw from distinct RNG streams.
fn name_salt(name: &str) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The fuzzer's uniform random churn, unchanged: compiles
/// byte-identically to [`Scenario::generate`].
#[derive(Debug, Clone, Default)]
pub struct Uniform;

impl Workload for Uniform {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn interval(&mut self, _: usize, _: usize, _: &mut GroupState, _: &mut StdRng) -> IntervalOps {
        unreachable!("Uniform overrides compile()")
    }

    fn compile(&mut self, seed: u64, intervals: usize, params: &GenParams) -> Scenario {
        Scenario::generate(seed, intervals, params)
    }
}

/// Sinusoidal join/leave rates: the daily audience curve. Joins peak
/// at the crest, leaves peak a quarter period later.
#[derive(Debug, Clone)]
pub struct Diurnal {
    /// Intervals per full day cycle.
    pub period: usize,
    /// Modulation depth in `[0, 1]`: 0 = flat, 1 = rate swings to 0.
    pub amplitude: f64,
    /// Mean joins per interval at the curve midpoint.
    pub base_joins: f64,
    /// Fraction of the group leaving per interval at the midpoint.
    pub leave_frac: f64,
}

impl Default for Diurnal {
    fn default() -> Self {
        Diurnal {
            period: 24,
            amplitude: 0.8,
            base_joins: 3.0,
            leave_frac: 0.05,
        }
    }
}

impl Workload for Diurnal {
    fn name(&self) -> &'static str {
        "diurnal"
    }

    fn interval(
        &mut self,
        t: usize,
        _total: usize,
        group: &mut GroupState,
        rng: &mut StdRng,
    ) -> IntervalOps {
        let mut ops = IntervalOps::default();
        let phase = 2.0 * PI * t as f64 / self.period.max(1) as f64;
        let join_rate = self.base_joins * (1.0 + self.amplitude * phase.sin());
        // Departures trail arrivals by a quarter period: the audience
        // drains after the peak, not during it.
        let leave_rate = group.leavable() as f64
            * self.leave_frac
            * (1.0 + self.amplitude * (phase - PI / 2.0).sin());

        for _ in 0..round_rate(leave_rate, rng) {
            if let Some(m) = group.leave_random(rng) {
                ops.leaves.push(m);
            }
        }
        for _ in 0..round_rate(join_rate, rng) {
            ops.joins.push(group.join(rng));
        }
        if rng.gen::<f64>() < 0.1 {
            if let Some(m) = group.pick_present(rng) {
                ops.loss_changes.push((m, group.pick_loss(rng)));
            }
        }
        ops
    }
}

/// Pay-per-view dynamics: background churn, then a mass-join ramp to a
/// plateau, then a mass departure of the crowd.
#[derive(Debug, Clone)]
pub struct FlashCrowd {
    /// Total members joining during the ramp.
    pub crowd_size: usize,
    /// Fraction of the run before the ramp starts.
    pub ramp_start: f64,
    /// Fraction of the run the ramp lasts.
    pub ramp_len: f64,
    /// Fraction of the run the plateau lasts (drain follows).
    pub plateau_len: f64,
    /// Fraction of the remaining crowd leaving per drain interval.
    pub drain_frac: f64,
    /// Crowd members joined during the ramp, not yet departed.
    crowd: Vec<u64>,
}

impl Default for FlashCrowd {
    fn default() -> Self {
        FlashCrowd {
            crowd_size: 192,
            ramp_start: 0.25,
            ramp_len: 0.15,
            plateau_len: 0.35,
            drain_frac: 0.4,
            crowd: Vec::new(),
        }
    }
}

impl Workload for FlashCrowd {
    fn name(&self) -> &'static str {
        "flash-crowd"
    }

    fn interval(
        &mut self,
        t: usize,
        total: usize,
        group: &mut GroupState,
        rng: &mut StdRng,
    ) -> IntervalOps {
        let mut ops = IntervalOps::default();
        let frac = t as f64 / total.max(1) as f64;
        let ramp_end = self.ramp_start + self.ramp_len;
        let drain_start = ramp_end + self.plateau_len;

        if frac < self.ramp_start || frac >= drain_start {
            // Background churn (and the post-drain cooldown).
            for _ in 0..rng.gen_range(0u32..3) {
                ops.joins.push(group.join(rng));
            }
            if rng.gen::<f64>() < 0.3 {
                if let Some(m) = group.leave_random(rng) {
                    self.crowd.retain(|&c| c != m);
                    ops.leaves.push(m);
                }
            }
        } else if frac < ramp_end {
            // Ramp: the crowd arrives in equal per-interval slices
            // (±ramp jitter), mostly short sessions with mixed loss.
            let ramp_intervals = (self.ramp_len * total as f64).ceil().max(1.0);
            let slice = self.crowd_size as f64 / ramp_intervals;
            for _ in 0..round_rate(slice * rng.gen_range(0.8..1.2), rng) {
                let loss = group.pick_loss(rng);
                let join = group.join_with(Some(DurationClass::Short), loss);
                self.crowd.push(join.member);
                ops.joins.push(join);
            }
        } else {
            // Plateau: near-silent, the occasional zapper.
            if rng.gen::<f64>() < 0.2 {
                ops.joins.push(group.join(rng));
            }
            if rng.gen::<f64>() < 0.1 {
                if let Some(m) = group.leave_random(rng) {
                    self.crowd.retain(|&c| c != m);
                    ops.leaves.push(m);
                }
            }
        }

        if frac >= drain_start && !self.crowd.is_empty() {
            // Mass departure: a large slice of the remaining crowd
            // leaves every interval until it is gone.
            let n = round_rate(self.crowd.len() as f64 * self.drain_frac, rng).max(1);
            for _ in 0..n.min(self.crowd.len()) {
                let idx = rng.gen_range(0..self.crowd.len());
                let member = self.crowd.swap_remove(idx);
                if group.leave_member(member) {
                    ops.leaves.push(member);
                }
            }
        }
        ops
    }
}

/// Short-lived rejoin-heavy sessions: each arrival is flappy with some
/// probability, leaves after 1–3 intervals, and usually rejoins in the
/// same interval it left (as a fresh member id — ids are never reused
/// within a scenario, so a flap shows up as leave + join).
#[derive(Debug, Clone)]
pub struct MobileFlap {
    /// Probability an arrival is flappy (short session + rejoin).
    pub flap_prob: f64,
    /// Probability a flappy session ending triggers an immediate
    /// rejoin.
    pub rejoin_prob: f64,
    /// Mean fresh arrivals per interval.
    pub arrivals: f64,
    /// Flappy sessions in flight: `(member, leave_at_interval)`.
    sessions: Vec<(u64, usize)>,
}

impl Default for MobileFlap {
    fn default() -> Self {
        MobileFlap {
            flap_prob: 0.6,
            rejoin_prob: 0.8,
            arrivals: 4.0,
            sessions: Vec::new(),
        }
    }
}

impl MobileFlap {
    fn admit_flappy(&mut self, t: usize, group: &mut GroupState, rng: &mut StdRng) -> JoinOp {
        let loss = group.pick_loss(rng);
        let join = group.join_with(Some(DurationClass::Short), loss);
        self.sessions.push((join.member, t + rng.gen_range(1..4)));
        join
    }
}

impl Workload for MobileFlap {
    fn name(&self) -> &'static str {
        "mobile-flap"
    }

    fn interval(
        &mut self,
        t: usize,
        _total: usize,
        group: &mut GroupState,
        rng: &mut StdRng,
    ) -> IntervalOps {
        let mut ops = IntervalOps::default();

        // Expire due flappy sessions; most rejoin immediately.
        let due: Vec<u64> = self
            .sessions
            .iter()
            .filter(|&&(_, end)| end <= t)
            .map(|&(m, _)| m)
            .collect();
        self.sessions.retain(|&(_, end)| end > t);
        for member in due {
            if group.leave_member(member) {
                ops.leaves.push(member);
                if rng.gen::<f64>() < self.rejoin_prob {
                    ops.joins.push(self.admit_flappy(t, group, rng));
                }
            }
        }

        // Fresh arrivals, each flappy with `flap_prob`.
        for _ in 0..round_rate(self.arrivals * rng.gen_range(0.5..1.5), rng) {
            if rng.gen::<f64>() < self.flap_prob {
                ops.joins.push(self.admit_flappy(t, group, rng));
            } else {
                ops.joins.push(group.join(rng));
            }
        }

        // Stable members trickle out too.
        if rng.gen::<f64>() < 0.15 {
            if let Some(m) = group.leave_random(rng) {
                self.sessions.retain(|&(s, _)| s != m);
                ops.leaves.push(m);
            }
        }
        ops
    }
}

/// Correlated loss-class shifts over member cohorts: members belong to
/// a region (`id % regions`); a region degrades as one event — every
/// present member of the cohort shifts to the degraded loss class in
/// the same interval — and later recovers the same way.
#[derive(Debug, Clone)]
pub struct RegionalLoss {
    /// Number of regions members are hashed into.
    pub regions: u64,
    /// Per-interval probability that some healthy region degrades.
    pub event_prob: f64,
    /// Per-interval probability that some degraded region recovers.
    pub recover_prob: f64,
    /// Loss rate of a degraded region.
    pub degraded_loss: f64,
    /// Loss rate regions recover to.
    pub healthy_loss: f64,
    /// Degraded regions.
    down: Vec<u64>,
}

impl Default for RegionalLoss {
    fn default() -> Self {
        RegionalLoss {
            regions: 4,
            event_prob: 0.15,
            recover_prob: 0.4,
            degraded_loss: 0.25,
            healthy_loss: 0.02,
            down: Vec::new(),
        }
    }
}

impl RegionalLoss {
    /// Shifts every present member of `region` to `loss`.
    fn shift_cohort(&self, region: u64, loss: f64, group: &GroupState, ops: &mut IntervalOps) {
        for &m in group.present() {
            if m % self.regions == region {
                ops.loss_changes.push((m, loss));
            }
        }
    }
}

impl Workload for RegionalLoss {
    fn name(&self) -> &'static str {
        "regional-loss"
    }

    fn interval(
        &mut self,
        _t: usize,
        _total: usize,
        group: &mut GroupState,
        rng: &mut StdRng,
    ) -> IntervalOps {
        let mut ops = IntervalOps::default();

        // Background churn keeps the cohorts evolving.
        if rng.gen::<f64>() < 0.5 {
            if let Some(m) = group.leave_random(rng) {
                ops.leaves.push(m);
            }
        }
        for _ in 0..rng.gen_range(1u32..4) {
            ops.joins.push(group.join(rng));
        }

        // Region recovery first (a region cannot flap within one
        // interval), then degradation of a healthy region.
        if !self.down.is_empty() && rng.gen::<f64>() < self.recover_prob {
            let region = self.down.swap_remove(rng.gen_range(0..self.down.len()));
            self.shift_cohort(region, self.healthy_loss, group, &mut ops);
        }
        let healthy: Vec<u64> = (0..self.regions)
            .filter(|r| !self.down.contains(r))
            .collect();
        if !healthy.is_empty() && rng.gen::<f64>() < self.event_prob {
            let region = healthy[rng.gen_range(0..healthy.len())];
            self.down.push(region);
            self.shift_cohort(region, self.degraded_loss, group, &mut ops);
        }
        ops
    }
}

/// Every named workload generator, in the canonical sweep order.
pub const WORKLOAD_NAMES: [&str; 5] = [
    "uniform",
    "diurnal",
    "flash-crowd",
    "mobile-flap",
    "regional-loss",
];

/// Constructs the named generator with its default tuning, or `None`
/// for an unknown name.
pub fn workload_by_name(name: &str) -> Option<Box<dyn Workload>> {
    match name {
        "uniform" => Some(Box::new(Uniform)),
        "diurnal" => Some(Box::new(Diurnal::default())),
        "flash-crowd" => Some(Box::new(FlashCrowd::default())),
        "mobile-flap" => Some(Box::new(MobileFlap::default())),
        "regional-loss" => Some(Box::new(RegionalLoss::default())),
        _ => None,
    }
}

/// All named generators with default tuning, in [`WORKLOAD_NAMES`]
/// order.
pub fn all_workloads() -> Vec<Box<dyn Workload>> {
    WORKLOAD_NAMES
        .iter()
        .map(|name| workload_by_name(name).expect("registered name"))
        .collect()
}

/// The per-workload members gauge name (recorded every interval of an
/// observed run). Static names because the obs [`Recorder`] interns
/// `&'static str`; the generator set is closed, so a `match` is the
/// whole intern table.
///
/// [`Recorder`]: rekey_obs::Recorder
pub fn members_gauge(workload: &str) -> &'static str {
    match workload {
        "uniform" => "workload.uniform.members",
        "diurnal" => "workload.diurnal.members",
        "flash-crowd" => "workload.flash_crowd.members",
        "mobile-flap" => "workload.mobile_flap.members",
        "regional-loss" => "workload.regional_loss.members",
        _ => "workload.other.members",
    }
}

/// The per-workload multicast-bytes counter name.
pub fn bytes_counter(workload: &str) -> &'static str {
    match workload {
        "uniform" => "workload.uniform.bytes",
        "diurnal" => "workload.diurnal.bytes",
        "flash-crowd" => "workload.flash_crowd.bytes",
        "mobile-flap" => "workload.mobile_flap.bytes",
        "regional-loss" => "workload.regional_loss.bytes",
        _ => "workload.other.bytes",
    }
}

/// Aggregates of one observed workload run: the plain [`RunStats`]
/// plus the per-interval series the sweep reports.
#[derive(Debug, Clone)]
pub struct WorkloadRun {
    /// The underlying oracle-checked run.
    pub stats: RunStats,
    /// Largest group size reached after any interval — the peak key
    /// tree size.
    pub peak_members: usize,
    /// Largest multicast payload of any single interval, in bytes.
    pub max_interval_bytes: usize,
    /// Mean multicast bytes per interval.
    pub mean_interval_bytes: f64,
    /// Per-interval `process_interval` wall-clock latency, as a log₂
    /// histogram (p50/p90/p99/max via [`Log2Histogram::quantile`]).
    pub latency_ns: Log2Histogram,
}

/// Runs a compiled workload scenario with per-interval observation:
/// like [`crate::runner::run_scenario`], but additionally tracks peak
/// group size, per-interval bandwidth, and rekey latency percentiles,
/// and records the per-workload obs gauges/counters (visible in any
/// installed [`rekey_obs::Recorder`]).
pub fn run_workload(
    workload_name: &str,
    factory: &ManagerFactory,
    scenario: &Scenario,
    opts: &RunOptions,
) -> Result<WorkloadRun, Violation> {
    let members_gauge = members_gauge(workload_name);
    let bytes_counter = bytes_counter(workload_name);
    let mut peak_members = 0usize;
    let mut max_interval_bytes = 0usize;
    let mut latency_ns = Log2Histogram::new();
    let stats = run_scenario_with(factory, scenario, opts, &mut |obs| {
        peak_members = peak_members.max(obs.members);
        max_interval_bytes = max_interval_bytes.max(obs.bytes);
        latency_ns.record(obs.process_ns);
        rekey_obs::sample(members_gauge, obs.members as f64);
        rekey_obs::count(bytes_counter, obs.bytes as u64);
    })?;
    let mean_interval_bytes = stats.total_bytes as f64 / stats.intervals.max(1) as f64;
    Ok(WorkloadRun {
        stats,
        peak_members,
        max_interval_bytes,
        mean_interval_bytes,
        latency_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_matches_the_fuzzer_generator() {
        let params = GenParams::default();
        let compiled = Uniform.compile(42, 30, &params);
        let direct = Scenario::generate(42, 30, &params);
        assert_eq!(compiled, direct);
        assert_eq!(compiled.encode(), direct.encode());
    }

    #[test]
    fn all_generators_compile_valid_scenarios() {
        let params = GenParams::default();
        for mut workload in all_workloads() {
            let scenario = workload.compile(7, 60, &params);
            let mut sanitized = scenario.clone();
            sanitized.sanitize();
            assert_eq!(
                scenario,
                sanitized,
                "{}: compiled an op sanitize() had to repair",
                workload.name()
            );
            scenario
                .validate()
                .unwrap_or_else(|e| panic!("{}: compiled invalid scenario: {e}", workload.name()));
            assert_eq!(scenario.intervals.len(), 61);
        }
    }

    #[test]
    fn generators_draw_distinct_streams_per_name() {
        let params = GenParams::default();
        let diurnal = Diurnal::default().compile(9, 40, &params);
        let flap = MobileFlap::default().compile(9, 40, &params);
        assert_ne!(diurnal.encode(), flap.encode());
    }

    #[test]
    fn flash_crowd_peaks_then_drains() {
        let params = GenParams::default();
        let scenario = FlashCrowd::default().compile(3, 100, &params);
        let mut present = 0i64;
        let mut sizes = Vec::new();
        for iv in &scenario.intervals {
            present += iv.joins.len() as i64 - iv.leaves.len() as i64;
            sizes.push(present);
        }
        let peak = *sizes.iter().max().unwrap();
        let end = *sizes.last().unwrap();
        assert!(
            peak >= end + 100,
            "no crowd: peak {peak} vs end {end} (expected a mass join + mass leave)"
        );
    }

    #[test]
    fn mobile_flap_is_rejoin_heavy() {
        let params = GenParams::default();
        let scenario = MobileFlap::default().compile(4, 80, &params);
        // Plenty of intervals where a leave and a join land together —
        // the flap signature.
        let flappy = scenario
            .intervals
            .iter()
            .filter(|iv| !iv.leaves.is_empty() && !iv.joins.is_empty())
            .count();
        assert!(flappy >= 20, "only {flappy} flap intervals");
    }

    #[test]
    fn regional_loss_shifts_whole_cohorts() {
        let params = GenParams::default();
        let workload = RegionalLoss::default();
        let regions = workload.regions;
        let scenario = { workload }.compile(5, 80, &params);
        // Find a degradation event and check the cohort moved as one:
        // every loss change of that interval names the same region.
        let mut saw_event = false;
        for iv in &scenario.intervals {
            if iv.loss_changes.len() >= 3 {
                let region = iv.loss_changes[0].0 % regions;
                let same_loss = iv.loss_changes[0].1;
                if iv
                    .loss_changes
                    .iter()
                    .all(|&(m, l)| m % regions == region && l == same_loss)
                {
                    saw_event = true;
                    break;
                }
            }
        }
        assert!(saw_event, "no correlated cohort shift found");
    }

    #[test]
    fn registry_is_complete() {
        for name in WORKLOAD_NAMES {
            let workload = workload_by_name(name).expect("registered");
            assert_eq!(workload.name(), name);
            assert!(members_gauge(name).starts_with("workload."));
            assert!(bytes_counter(name).starts_with("workload."));
        }
        assert!(workload_by_name("nope").is_none());
        assert_eq!(all_workloads().len(), WORKLOAD_NAMES.len());
    }
}
