//! Crash-simulation harness: scenario-driven crash/recovery
//! equivalence over an in-memory [`Storage`].
//!
//! [`run_with_crashes`] drives a [`GroupKeyManager`] through a
//! [`Scenario`] with every interval journaled to a [`MemStorage`], and
//! "crashes" the process every `crash_every` intervals: the manager,
//! RNG, and journal are thrown away and only the sealed storage bytes
//! — exactly what [`rekey_storage::DirStorage`] would have forced to
//! disk — survive into a fresh manager built by the factory. After
//! every crash the recovered replay, and at the end the full run
//! digest, must be byte-identical to an uninterrupted run of the same
//! scenario. Same seed, any crash schedule ⇒ same digest.
//!
//! [`Storage`]: rekey_storage::Storage
//! [`GroupKeyManager`]: rekey_core::GroupKeyManager

use crate::runner::ManagerFactory;
use crate::scenario::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::{Join, Journal};
use rekey_crypto::sha256::Sha256;
use rekey_keytree::message::codec;
use rekey_keytree::MemberId;
use rekey_storage::MemStorage;

/// Aggregates of a crash/recovery-equivalence run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrashSimReport {
    /// Intervals executed.
    pub intervals: usize,
    /// Crash/recover cycles injected.
    pub crashes: usize,
    /// WAL records replayed across all recoveries.
    pub replayed: usize,
    /// Snapshot loads across all recoveries.
    pub snapshots_loaded: usize,
    /// SHA-256 over the concatenated wire bytes of every interval —
    /// equals the uninterrupted run's digest by construction.
    pub digest: [u8; 32],
}

/// The per-interval churn batch of `scenario`, drawing join keys from
/// `churn_rng` exactly as [`crate::runner::run_scenario`] does. The
/// draws ride the same RNG the engine consumes, so a recovered RNG
/// position regenerates the identical keys.
fn batch(
    scenario: &Scenario,
    interval: usize,
    churn_rng: &mut StdRng,
) -> (Vec<Join>, Vec<MemberId>) {
    let ops = &scenario.intervals[interval];
    let mut joins = Vec::with_capacity(ops.joins.len());
    for op in &ops.joins {
        let key = rekey_crypto::Key::generate(churn_rng);
        let mut join = Join::new(MemberId(op.member), key).with_loss_rate(op.loss);
        if let Some(class) = op.class {
            join = join.with_class(class);
        }
        joins.push(join);
    }
    let leaves: Vec<MemberId> = ops.leaves.iter().map(|&m| MemberId(m)).collect();
    (joins, leaves)
}

/// Runs `scenario` with a journaled manager, crashing and recovering
/// every `crash_every` intervals (`0` = never), and checks every
/// replayed and every live epoch against an uninterrupted reference
/// run. `snapshot_every` is forwarded to the journal (`0` = WAL only).
///
/// # Errors
///
/// A human-readable description of the first divergence or recovery
/// failure.
pub fn run_with_crashes(
    factory: &ManagerFactory,
    scenario: &Scenario,
    crash_every: usize,
    snapshot_every: u64,
) -> Result<CrashSimReport, String> {
    // The uninterrupted reference: plain process_interval, no journal.
    let mut reference: Vec<Vec<u8>> = Vec::with_capacity(scenario.intervals.len());
    {
        let mut manager = factory(scenario);
        let mut churn_rng = StdRng::seed_from_u64(scenario.seed ^ 0x9E37_79B9_7F4A_7C15);
        for interval in 0..scenario.intervals.len() {
            let (joins, leaves) = batch(scenario, interval, &mut churn_rng);
            let out = manager
                .process_interval(&joins, &leaves, &mut churn_rng)
                .map_err(|e| format!("reference interval {interval}: {e}"))?;
            reference.push(codec::encode_message(&out.message));
        }
    }

    let mut manager = factory(scenario);
    let mut churn_rng = StdRng::seed_from_u64(scenario.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut journal = Journal::new(MemStorage::new(), snapshot_every);
    let mut hasher = Sha256::new();
    let mut crashes = 0usize;
    let mut replayed = 0usize;
    let mut snapshots_loaded = 0usize;

    for interval in 0..scenario.intervals.len() {
        let epoch = interval as u64 + 1;
        let (joins, leaves) = batch(scenario, interval, &mut churn_rng);
        let mut published = Vec::new();
        journal
            .durable_interval(
                manager.as_mut(),
                &joins,
                &leaves,
                &mut churn_rng,
                &mut |message: &rekey_keytree::message::RekeyMessage| {
                    published.push(codec::encode_message(message));
                },
            )
            .map_err(|e| format!("interval {interval}: {e}"))?;
        let [bytes] = &published[..] else {
            return Err(format!(
                "interval {interval}: expected exactly one fanned-out message, got {}",
                published.len()
            ));
        };
        if *bytes != reference[interval] {
            return Err(format!(
                "interval {interval}: journaled epoch diverged from the reference run"
            ));
        }
        hasher.update(bytes);

        if crash_every > 0 && (interval + 1) % crash_every == 0 {
            // Crash: everything in memory dies; only the sealed
            // storage bytes cross the line, byte-for-byte.
            let storage = journal.into_storage();
            let sealed =
                MemStorage::from_parts(storage.wal_bytes().to_vec(), storage.snapshot_bytes());
            manager = factory(scenario);
            journal = Journal::new(sealed, snapshot_every);
            let recovery = journal
                .recover(manager.as_mut())
                .map_err(|e| format!("recovery after interval {interval}: {e}"))?;
            if recovery.epoch != epoch {
                return Err(format!(
                    "recovery after interval {interval}: resumed at epoch {} instead of {epoch}",
                    recovery.epoch
                ));
            }
            for message in &recovery.messages {
                if codec::encode_message(message) != reference[(message.epoch - 1) as usize] {
                    return Err(format!(
                        "recovery after interval {interval}: replayed epoch {} diverged",
                        message.epoch
                    ));
                }
            }
            churn_rng = recovery.rng.ok_or_else(|| {
                format!("recovery after interval {interval}: no RNG position recovered")
            })?;
            crashes += 1;
            replayed += recovery.replayed;
            snapshots_loaded += usize::from(recovery.snapshot_loaded);
        }
    }

    Ok(CrashSimReport {
        intervals: scenario.intervals.len(),
        crashes,
        replayed,
        snapshots_loaded,
        digest: hasher.finalize(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factory_for;
    use crate::scenario::GenParams;
    use rekey_core::Scheme;

    /// Digest of the uninterrupted run, via the same harness with
    /// crashes disabled.
    fn baseline(scheme: Scheme, scenario: &Scenario) -> [u8; 32] {
        run_with_crashes(&factory_for(scheme), scenario, 0, 0)
            .expect("uninterrupted run")
            .digest
    }

    #[test]
    fn every_engine_scheme_survives_repeated_crashes() {
        let scenario = Scenario::generate(77, 18, &GenParams::default());
        for scheme in [
            Scheme::OneTree,
            Scheme::Tt,
            Scheme::Qt,
            Scheme::Pt,
            Scheme::LossForest,
            Scheme::Combined,
        ] {
            let expected = baseline(scheme, &scenario);
            let report = run_with_crashes(&factory_for(scheme), &scenario, 4, 3)
                .unwrap_or_else(|e| panic!("{scheme}: {e}"));
            assert_eq!(report.crashes, 4, "{scheme}: crash schedule");
            assert_eq!(
                report.digest, expected,
                "{scheme}: crashed run diverged from uninterrupted run"
            );
            assert!(
                report.snapshots_loaded > 0,
                "{scheme}: snapshots never used"
            );
        }
    }

    #[test]
    fn crash_every_interval_with_wal_only() {
        // The hardest schedule — a crash after every single interval,
        // no snapshots at all — still reproduces the reference stream.
        let scenario = Scenario::generate(78, 10, &GenParams::default());
        let expected = baseline(Scheme::Combined, &scenario);
        let report =
            run_with_crashes(&factory_for(Scheme::Combined), &scenario, 1, 0).expect("run");
        assert_eq!(report.crashes, report.intervals, "one crash per interval");
        assert_eq!(report.digest, expected);
        assert_eq!(report.snapshots_loaded, 0);
    }
}
