//! Shadow key-knowledge oracle.
//!
//! A pure model of *who can know what*, built from nothing but the
//! rekey messages a server multicasts — completely independent of
//! `LkhServer`'s internal bookkeeping, so a server bug cannot also
//! corrupt the oracle's verdicts.
//!
//! The model: an entry `{target@tv} under@uv` lets any principal
//! holding `under@uv` learn `target@tv`. The base case is an entry
//! addressed to a member's individual (leaf) key — that grants the
//! recipient both the leaf pair and the target pair. Knowledge is
//! cumulative and never revoked: a member that once learned a key
//! keeps it forever (members may be compromised or replay traffic
//! after leaving). Secrecy must therefore come from *versioning*: a
//! correct server never wraps a fresh key under a key a departed
//! member holds, which the oracle checks by intersecting the holder
//! set of every newly born `(node, version)` pair with the departed
//! set.
//!
//! Soundness rests on node ids never being reused across tree
//! rebuilds (the servers draw ids from per-generation namespaces), so
//! `(NodeId, version)` uniquely names one key for all time.

use rekey_keytree::message::RekeyMessage;
use rekey_keytree::{MemberId, NodeId};
use std::collections::{BTreeSet, HashMap};

/// What one [`KnowledgeOracle::observe`] call learned from a message.
#[derive(Debug, Default)]
pub struct ObserveReport {
    /// `(node, version)` pairs first seen in this message — the keys
    /// "born" this interval. Forward secrecy is exactly: no departed
    /// member is ever entitled to a born pair.
    pub born: Vec<(NodeId, u64)>,
    /// Every entitlement added by this message, `(member, node,
    /// version)`. Liveness checks only need these deltas: once a
    /// member is entitled and synced, it can never silently fall
    /// behind without a newer grant appearing here first.
    pub granted: Vec<(MemberId, NodeId, u64)>,
}

/// Cumulative key-knowledge model over a whole run.
#[derive(Debug, Default)]
pub struct KnowledgeOracle {
    /// Every `(node, version)` ever seen on the wire, mapped to the
    /// exact set of members entitled to it.
    holders: HashMap<(NodeId, u64), BTreeSet<MemberId>>,
    /// Highest version seen per node.
    latest: HashMap<NodeId, u64>,
}

impl KnowledgeOracle {
    /// An empty oracle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a member's individual key as `(leaf, version)` known
    /// only to that member before any wire traffic references it.
    /// (Servers address bootstrap entries *under* leaves, which the
    /// observe base case handles, so this is only needed for direct
    /// white-box tests.)
    pub fn grant_leaf(&mut self, member: MemberId, leaf: NodeId, version: u64) {
        self.note_pair(leaf, version, &mut Vec::new());
        self.holders
            .get_mut(&(leaf, version))
            .expect("pair just noted")
            .insert(member);
    }

    /// Folds one multicast message into the model and reports the
    /// newly born pairs.
    ///
    /// Entitlement propagates to a fixpoint *within* the message (an
    /// entry earlier in the vector may be decryptable only via a key
    /// granted by a later one — order must not matter to the model,
    /// only to single-pass receivers), and against everything learned
    /// from all prior messages.
    pub fn observe(&mut self, message: &RekeyMessage) -> ObserveReport {
        let mut report = ObserveReport::default();

        // Register every pair the message mentions (even ones nobody
        // can decrypt yet) and apply the leaf-addressed base case.
        for entry in &message.entries {
            self.note_pair(entry.target, entry.target_version, &mut report.born);
            self.note_pair(entry.under, entry.under_version, &mut report.born);
            if entry.under_is_leaf {
                if let Some(recipient) = entry.recipient {
                    if self
                        .holders
                        .get_mut(&(entry.under, entry.under_version))
                        .expect("pair just noted")
                        .insert(recipient)
                    {
                        report
                            .granted
                            .push((recipient, entry.under, entry.under_version));
                    }
                }
            }
        }

        // Propagate until stable: whoever holds `under@uv` learns
        // `target@tv`.
        loop {
            let mut changed = false;
            for entry in &message.entries {
                let sources: Vec<MemberId> =
                    match self.holders.get(&(entry.under, entry.under_version)) {
                        Some(set) if !set.is_empty() => set.iter().copied().collect(),
                        _ => continue,
                    };
                let sink = self
                    .holders
                    .get_mut(&(entry.target, entry.target_version))
                    .expect("pair noted above");
                for member in sources {
                    if sink.insert(member) {
                        changed = true;
                        report
                            .granted
                            .push((member, entry.target, entry.target_version));
                    }
                }
            }
            if !changed {
                break;
            }
        }

        report
    }

    /// The members entitled to `(node, version)`, if the pair has ever
    /// been seen.
    pub fn entitled(&self, node: NodeId, version: u64) -> Option<&BTreeSet<MemberId>> {
        self.holders.get(&(node, version))
    }

    /// Whether `member` is entitled to `(node, version)`.
    pub fn is_entitled(&self, member: MemberId, node: NodeId, version: u64) -> bool {
        self.holders
            .get(&(node, version))
            .is_some_and(|set| set.contains(&member))
    }

    /// Highest version the wire has ever carried for `node`.
    pub fn latest(&self, node: NodeId) -> Option<u64> {
        self.latest.get(&node).copied()
    }

    /// Iterates over every node with its latest version.
    pub fn latest_pairs(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.latest.iter().map(|(&n, &v)| (n, v))
    }

    /// Number of distinct `(node, version)` pairs tracked.
    pub fn pair_count(&self) -> usize {
        self.holders.len()
    }

    fn note_pair(&mut self, node: NodeId, version: u64, born: &mut Vec<(NodeId, u64)>) {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.holders.entry((node, version))
        {
            slot.insert(BTreeSet::new());
            born.push((node, version));
            let latest = self.latest.entry(node).or_insert(version);
            if version > *latest {
                *latest = version;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_core::one_tree::OneTreeManager;
    use rekey_core::{GroupKeyManager, Join};
    use rekey_crypto::Key;

    fn join(id: u64, rng: &mut StdRng) -> Join {
        Join::new(MemberId(id), Key::generate(rng))
    }

    #[test]
    fn oracle_tracks_join_and_leave_entitlement() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut mgr = OneTreeManager::new(2);
        let mut oracle = KnowledgeOracle::new();

        let joins: Vec<Join> = (0..4).map(|i| join(i, &mut rng)).collect();
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();
        let report = oracle.observe(&out.message);
        assert!(!report.born.is_empty());
        let dek = mgr.dek_node();
        let v0 = oracle.latest(dek).unwrap();
        let entitled = oracle.entitled(dek, v0).unwrap();
        assert_eq!(entitled.len(), 4, "all members entitled to the root");

        let out = mgr.process_interval(&[], &[MemberId(1)], &mut rng).unwrap();
        let report = oracle.observe(&out.message);
        let v1 = oracle.latest(dek).unwrap();
        assert!(v1 > v0, "root must rotate on leave");
        // Every pair born by the leave excludes the departed member.
        assert!(!report.born.is_empty());
        for &(n, v) in &report.born {
            assert!(
                !oracle.is_entitled(MemberId(1), n, v),
                "departed member entitled to fresh {n:?}@{v}"
            );
        }
        // Old knowledge is never revoked.
        assert!(oracle.is_entitled(MemberId(1), dek, v0));
        // Survivors are entitled to the new root.
        for id in [0u64, 2, 3] {
            assert!(oracle.is_entitled(MemberId(id), dek, v1));
        }
    }

    #[test]
    fn propagation_reaches_fixpoint_regardless_of_entry_order() {
        let mut rng = StdRng::seed_from_u64(10);
        let mut mgr = OneTreeManager::new(2);
        let mut oracle = KnowledgeOracle::new();
        let joins: Vec<Join> = (0..4).map(|i| join(i, &mut rng)).collect();
        let out = mgr.process_interval(&joins, &[], &mut rng).unwrap();

        let mut reversed = out.message.clone();
        reversed.entries.reverse();
        let mut oracle_rev = KnowledgeOracle::new();
        oracle.observe(&out.message);
        oracle_rev.observe(&reversed);

        let dek = mgr.dek_node();
        let v = oracle.latest(dek).unwrap();
        assert_eq!(oracle.entitled(dek, v), oracle_rev.entitled(dek, v));
        assert_eq!(oracle.pair_count(), oracle_rev.pair_count());
    }
}
