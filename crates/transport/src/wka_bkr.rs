//! The WKA-BKR reliable rekey transport protocol \[SZJ02\] (§2.2.1).
//!
//! **Weighted key assignment (WKA):** before the first multicast
//! round, every entry gets a weight — the expected number of
//! transmissions needed for its whole audience to receive it
//! (Appendix B, equation (14), evaluated on the *actual* audience).
//! Entries are replicated `weight` times, replicas are striped across
//! distinct packets, and packets are multicast to the group.
//!
//! **Batched key retransmission (BKR):** after each round the server
//! collects NACKs, computes the set of *keys* (not packets) still
//! needed, re-weights them against their remaining audiences, packs
//! fresh packets, and multicasts again — exploiting the sparseness of
//! the rekey payload.

use crate::interest::InterestMap;
use crate::loss::Population;
use crate::packet::{pack, Packet, PacketConfig};
use crate::DeliveryReport;
use rand::Rng;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::MemberId;
use std::collections::{BTreeMap, BTreeSet};

/// How entries are ordered before striping into packets (§2.2.1
/// mentions both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Packing {
    /// Top-of-tree keys first (most valuable first).
    #[default]
    BreadthFirst,
    /// Keys clustered by the subtree that needs them.
    DepthFirst,
}

/// Configuration of a WKA-BKR delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WkaBkrConfig {
    /// Packet capacity in entries.
    pub packet: PacketConfig,
    /// Entry ordering before packing.
    pub packing: Packing,
    /// Cap weights to avoid pathological replication.
    pub max_weight: usize,
    /// Round budget; delivery reports `complete = false` if exceeded.
    pub max_rounds: usize,
}

impl Default for WkaBkrConfig {
    fn default() -> Self {
        WkaBkrConfig {
            packet: PacketConfig::default(),
            packing: Packing::BreadthFirst,
            max_weight: 8,
            max_rounds: 64,
        }
    }
}

/// Expected transmissions for an audience with the given loss rates —
/// equation (14) evaluated on an explicit audience, grouped by
/// distinct loss value for efficiency.
pub fn expected_transmissions(losses: &[f64]) -> f64 {
    if losses.is_empty() {
        return 0.0;
    }
    let mut groups: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
    for &p in losses {
        let e = groups.entry(p.to_bits()).or_insert((p, 0.0));
        e.1 += 1.0;
    }
    let mut total = 0.0;
    for m in 1..10_000u32 {
        let mut all = 1.0f64;
        for &(p, count) in groups.values() {
            let p_pow = p.powi(m as i32 - 1);
            all *= (1.0 - p_pow).powf(count);
        }
        let term = 1.0 - all;
        total += term;
        if term < 1e-9 {
            break;
        }
    }
    total
}

/// State of one delivery in progress; exposed so callers (e.g. the
/// loss-estimation logic of §4.2) can observe per-round NACKs.
#[derive(Debug, Clone)]
pub struct RoundTrace {
    /// Packets sent this round.
    pub packets: usize,
    /// Keys (incl. replicas) sent this round.
    pub keys: usize,
    /// Receivers that still miss something after this round.
    pub pending_receivers: usize,
}

/// Full result of a WKA-BKR delivery.
#[derive(Debug, Clone)]
pub struct WkaBkrOutcome {
    /// Aggregate totals.
    pub report: DeliveryReport,
    /// Per-round details.
    pub rounds: Vec<RoundTrace>,
    /// Packets each member failed to receive, tallied over the run —
    /// the information a member piggybacks on NACKs for the loss
    /// estimation of §4.2.
    pub lost_packets: BTreeMap<MemberId, (u64, u64)>,
    /// Encrypted keys each member actually received over the run
    /// (needed or not) — the receiver-bandwidth / inter-receiver
    /// fairness metric of §4.4: members keep receiving every multicast
    /// round even after they are satisfied.
    pub received_keys: BTreeMap<MemberId, u64>,
    /// Message-entry indices each member actually received over the
    /// whole run (union over rounds, needed or not). Deterministic
    /// delivery hook for replay harnesses: feeding exactly these
    /// entries to each member reproduces what the lossy multicast
    /// delivered.
    pub delivered: BTreeMap<MemberId, BTreeSet<usize>>,
}

/// Delivers `message` to every interested receiver over a lossy
/// multicast channel, returning the bandwidth spent.
pub fn deliver<R: Rng>(
    message: &RekeyMessage,
    interest: &InterestMap,
    population: &Population,
    config: &WkaBkrConfig,
    rng: &mut R,
) -> WkaBkrOutcome {
    let mut pending: BTreeMap<MemberId, BTreeSet<usize>> = interest
        .iter()
        .filter(|(_, set)| !set.is_empty())
        .map(|(&m, set)| (m, set.clone()))
        .collect();

    let all_members: Vec<MemberId> = interest.keys().copied().collect();
    let mut report = DeliveryReport::default();
    let mut rounds = Vec::new();
    let mut lost_packets: BTreeMap<MemberId, (u64, u64)> = BTreeMap::new();
    let mut received_keys: BTreeMap<MemberId, u64> = BTreeMap::new();
    let mut delivered: BTreeMap<MemberId, BTreeSet<usize>> = BTreeMap::new();
    let mut seq = 0u64;

    while !pending.is_empty() && report.rounds < config.max_rounds {
        report.rounds += 1;

        // Remaining audience per entry.
        let mut audience: BTreeMap<usize, Vec<f64>> = BTreeMap::new();
        for (&member, set) in &pending {
            let p = population.loss_of(member);
            for &idx in set {
                audience.entry(idx).or_default().push(p);
            }
        }

        // WKA weights on the remaining audiences.
        let mut weighted: Vec<(usize, usize)> = audience
            .iter()
            .map(|(&idx, losses)| {
                let w = expected_transmissions(losses).round().max(1.0) as usize;
                (idx, w.min(config.max_weight))
            })
            .collect();
        match config.packing {
            Packing::BreadthFirst => weighted.sort_by_key(|&(idx, _)| {
                (
                    message.entries[idx].target_depth,
                    message.entries[idx].under.0,
                )
            }),
            Packing::DepthFirst => weighted.sort_by_key(|&(idx, _)| {
                (
                    message.entries[idx].under.0,
                    message.entries[idx].target_depth,
                )
            }),
        }

        // Stripe replicas: stripe j carries the (j+1)-th copy of every
        // entry with weight > j, so replicas never share a packet.
        let max_w = weighted.iter().map(|&(_, w)| w).max().unwrap_or(1);
        let mut packets: Vec<Packet> = Vec::new();
        for stripe in 0..max_w {
            let stripe_entries: Vec<usize> = weighted
                .iter()
                .filter(|&&(_, w)| w > stripe)
                .map(|&(idx, _)| idx)
                .collect();
            let stripe_packets = pack(&stripe_entries, config.packet.capacity, seq);
            seq += stripe_packets.len() as u64;
            packets.extend(stripe_packets);
        }

        let keys_this_round: usize = packets.iter().map(Packet::key_count).sum();
        report.packets += packets.len();
        report.keys_transmitted += keys_this_round;

        // Simulated multicast: every group member — satisfied or not —
        // independently receives each packet.
        for &member in &all_members {
            let mut received: BTreeSet<usize> = BTreeSet::new();
            let stats = lost_packets.entry(member).or_insert((0, 0));
            let volume = received_keys.entry(member).or_insert(0);
            for packet in &packets {
                stats.1 += 1;
                if population.delivered(member, rng) {
                    *volume += packet.entries.len() as u64;
                    received.extend(&packet.entries);
                } else {
                    stats.0 += 1;
                }
            }
            if let Some(set) = pending.get_mut(&member) {
                for &idx in &received {
                    set.remove(&idx);
                }
                if set.is_empty() {
                    pending.remove(&member);
                }
            }
            delivered.entry(member).or_default().extend(received);
        }

        rounds.push(RoundTrace {
            packets: packets.len(),
            keys: keys_this_round,
            pending_receivers: pending.len(),
        });
    }

    report.complete = pending.is_empty();
    WkaBkrOutcome {
        report,
        rounds,
        lost_packets,
        received_keys,
        delivered,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interest::interest_map;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_crypto::Key;
    use rekey_keytree::server::LkhServer;

    fn setup(n: u64, leavers: &[u64]) -> (LkhServer, RekeyMessage, Vec<MemberId>) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut server = LkhServer::new(4, 0);
        let joins: Vec<(MemberId, Key)> = (0..n)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        server.apply_batch(&joins, &[], &mut rng);
        let leaving: Vec<MemberId> = leavers.iter().map(|&i| MemberId(i)).collect();
        let outcome = server.apply_batch(&[], &leaving, &mut rng);
        let members: Vec<MemberId> = (0..n)
            .filter(|i| !leavers.contains(i))
            .map(MemberId)
            .collect();
        (server, outcome.message, members)
    }

    #[test]
    fn lossless_delivery_takes_one_round() {
        let (server, message, members) = setup(64, &[3]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = deliver(
            &message,
            &interest,
            &pop,
            &WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(outcome.report.complete);
        assert_eq!(outcome.report.rounds, 1);
        // No loss → no replication: exactly the message's entries.
        assert_eq!(outcome.report.keys_transmitted, message.entries.len());
    }

    #[test]
    fn lossy_delivery_completes() {
        let (server, message, members) = setup(256, &[1, 50, 99, 200]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let mut rng = StdRng::seed_from_u64(2);
        let pop = Population::two_point(&members, 0.2, 0.2, 0.02, &mut rng);
        let outcome = deliver(
            &message,
            &interest,
            &pop,
            &WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(outcome.report.complete);
        assert!(
            outcome.report.rounds >= 2,
            "loss should force retransmission"
        );
        assert!(outcome.report.keys_transmitted > message.entries.len());
    }

    #[test]
    fn retransmissions_shrink_across_rounds() {
        let (server, message, members) = setup(256, &[0, 64, 128]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.15);
        let mut rng = StdRng::seed_from_u64(3);
        let outcome = deliver(
            &message,
            &interest,
            &pop,
            &WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(outcome.report.complete);
        // BKR retransmits keys, so later rounds are much smaller.
        if outcome.rounds.len() >= 2 {
            assert!(
                outcome.rounds[1].keys < outcome.rounds[0].keys,
                "round 2 ({}) not smaller than round 1 ({})",
                outcome.rounds[1].keys,
                outcome.rounds[0].keys
            );
        }
    }

    #[test]
    fn weights_replicate_valuable_keys() {
        // With high loss, the root entries (audience = everyone) must
        // appear multiple times in round 1.
        let (server, message, members) = setup(256, &[7]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.2);
        let mut rng = StdRng::seed_from_u64(4);
        let outcome = deliver(
            &message,
            &interest,
            &pop,
            &WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(
            outcome.rounds[0].keys > message.entries.len(),
            "round 1 sent {} keys for {} entries — no proactive replication",
            outcome.rounds[0].keys,
            message.entries.len()
        );
    }

    #[test]
    fn expected_transmissions_formula() {
        assert_eq!(expected_transmissions(&[]), 0.0);
        assert!((expected_transmissions(&[0.0]) - 1.0).abs() < 1e-9);
        assert!((expected_transmissions(&[0.5]) - 2.0).abs() < 1e-6);
        // Larger audiences need more transmissions.
        let small = expected_transmissions(&[0.1; 4]);
        let large = expected_transmissions(&[0.1; 400]);
        assert!(large > small);
    }

    #[test]
    fn loss_stats_are_collected() {
        let (server, message, members) = setup(64, &[2]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.3);
        let mut rng = StdRng::seed_from_u64(5);
        let outcome = deliver(
            &message,
            &interest,
            &pop,
            &WkaBkrConfig::default(),
            &mut rng,
        );
        // Every receiver observed some packets; loss fractions should
        // be near 0.3 in aggregate.
        let (lost, seen): (u64, u64) = outcome
            .lost_packets
            .values()
            .fold((0, 0), |(l, s), &(dl, ds)| (l + dl, s + ds));
        assert!(seen > 0);
        let rate = lost as f64 / seen as f64;
        assert!((rate - 0.3).abs() < 0.1, "observed loss {rate}");
    }

    #[test]
    fn receiver_volume_accounts_all_rounds() {
        let (server, message, members) = setup(128, &[3, 64]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.1);
        let mut rng = StdRng::seed_from_u64(8);
        let outcome = deliver(
            &message,
            &interest,
            &pop,
            &WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(outcome.report.complete);
        // Every interested member received something, and aggregate
        // receiver volume ≈ keys_transmitted × (1 - p) × members.
        assert_eq!(outcome.received_keys.len(), interest.len());
        let total: u64 = outcome.received_keys.values().sum();
        let expected = outcome.report.keys_transmitted as f64 * 0.9 * interest.len() as f64;
        let ratio = total as f64 / expected;
        assert!(
            (0.9..1.1).contains(&ratio),
            "receiver volume {total} vs expected {expected:.0}"
        );
    }

    #[test]
    fn delivered_indices_cover_interest_when_complete() {
        let (server, message, members) = setup(128, &[5, 40]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.15);
        let mut rng = StdRng::seed_from_u64(11);
        let outcome = deliver(
            &message,
            &interest,
            &pop,
            &WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(outcome.report.complete);
        // A complete delivery means every member received at least its
        // needed entries; the delivered sets record the full union.
        for (m, needed) in &interest {
            let got = outcome.delivered.get(m).expect("member saw packets");
            assert!(
                needed.is_subset(got),
                "member {m} missing entries: needed {needed:?}, got {got:?}"
            );
        }
    }

    #[test]
    fn depth_first_packing_also_completes() {
        let (server, message, members) = setup(128, &[9, 70]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.1);
        let cfg = WkaBkrConfig {
            packing: Packing::DepthFirst,
            ..WkaBkrConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(6);
        let outcome = deliver(&message, &interest, &pop, &cfg, &mut rng);
        assert!(outcome.report.complete);
    }
}
