//! Reliable rekey transport protocols for secure multicast (§2.2 of
//! the paper).
//!
//! Rekey payloads differ from generic multicast traffic in two ways
//! the protocols here exploit: delivery has a *soft real-time*
//! deadline (the next rekey interval), and the payload is *sparse* —
//! each receiver only needs the handful of entries on its own key
//! path. This crate provides executable implementations of the three
//! protocols the paper discusses, all driven by simulated per-receiver
//! Bernoulli packet loss:
//!
//! - [`wka_bkr`] — WKA-BKR \[SZJ02\]: weighted key assignment
//!   (proactively replicate valuable keys) plus batched key
//!   retransmission (retransmit *keys*, not packets),
//! - [`fec`] — proactive FEC \[YLZL01\] over real Reed–Solomon erasure
//!   codes ([`rs`], on [`gf256`] arithmetic),
//! - [`multisend`] — the naive multi-send baseline \[MSEC\],
//!
//! together with the supporting pieces: [`packet`] (wire encoding and
//! packetization), [`loss`] (receiver populations), and [`interest`]
//! (per-receiver interest sets — the sparseness property).
//!
//! The measured outputs ([`DeliveryReport`]) are directly comparable
//! to the analytic predictions in `rekey-analytic::appendix_b`; the
//! integration tests cross-validate the two.

// Unsafe is denied crate-wide and allowed back in only inside the
// `x86` intrinsic submodule of `gf256`, whose safety argument lives
// next to the code (see DESIGN.md §3h).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fec;
pub mod gf256;
pub mod interest;
pub mod loss;
pub mod multisend;
pub mod packet;
pub mod rs;
pub mod wka_bkr;

/// Outcome of delivering one rekey message to every receiver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryReport {
    /// Number of multicast rounds (1 = everything arrived
    /// proactively).
    pub rounds: usize,
    /// Packets transmitted across all rounds.
    pub packets: usize,
    /// Encrypted keys transmitted (counting replicas and
    /// retransmissions) — the paper's bandwidth metric.
    pub keys_transmitted: usize,
    /// Whether every receiver obtained all its keys within the round
    /// budget.
    pub complete: bool,
}
