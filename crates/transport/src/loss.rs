//! Receiver populations with heterogeneous packet-loss rates.
//!
//! Models the loss heterogeneity observed for Internet multicast
//! \[Handley97\] that motivates §4 of the paper: a fraction of
//! receivers see high loss while the rest see low loss. Loss events
//! are independent Bernoulli trials per receiver and packet, matching
//! the analytic model in Appendix B.

use rand::Rng;
use rekey_keytree::MemberId;
use std::collections::BTreeMap;

/// Per-receiver loss probabilities.
#[derive(Debug, Clone, Default)]
pub struct Population {
    losses: BTreeMap<MemberId, f64>,
}

impl Population {
    /// Every receiver loses packets with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn homogeneous(members: &[MemberId], p: f64) -> Self {
        assert!((0.0..1.0).contains(&p), "loss probability out of range");
        Population {
            losses: members.iter().map(|&m| (m, p)).collect(),
        }
    }

    /// A two-point population (§4.3): a fraction `alpha` of receivers
    /// (chosen uniformly at random) lose at `p_high`, the rest at
    /// `p_low`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range probabilities or `alpha`.
    pub fn two_point<R: Rng>(
        members: &[MemberId],
        alpha: f64,
        p_high: f64,
        p_low: f64,
        rng: &mut R,
    ) -> Self {
        assert!((0.0..=1.0).contains(&alpha), "alpha out of range");
        assert!((0.0..1.0).contains(&p_high) && (0.0..1.0).contains(&p_low));
        let mut idx: Vec<usize> = (0..members.len()).collect();
        // Fisher–Yates partial shuffle to pick the high-loss subset.
        let n_high = (alpha * members.len() as f64).round() as usize;
        for i in 0..n_high.min(members.len().saturating_sub(1)) {
            let j = rng.gen_range(i..members.len());
            idx.swap(i, j);
        }
        let mut losses = BTreeMap::new();
        for (pos, &i) in idx.iter().enumerate() {
            let p = if pos < n_high { p_high } else { p_low };
            losses.insert(members[i], p);
        }
        Population { losses }
    }

    /// Builds a population from explicit assignments.
    pub fn from_map(losses: BTreeMap<MemberId, f64>) -> Self {
        for &p in losses.values() {
            assert!((0.0..1.0).contains(&p), "loss probability out of range");
        }
        Population { losses }
    }

    /// Loss probability of `member` (0 if unknown).
    pub fn loss_of(&self, member: MemberId) -> f64 {
        self.losses.get(&member).copied().unwrap_or(0.0)
    }

    /// Sets/overrides one member's loss rate.
    pub fn set(&mut self, member: MemberId, p: f64) {
        assert!((0.0..1.0).contains(&p), "loss probability out of range");
        self.losses.insert(member, p);
    }

    /// Removes a member from the population.
    pub fn remove(&mut self, member: MemberId) {
        self.losses.remove(&member);
    }

    /// Iterates over `(member, loss)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (MemberId, f64)> + '_ {
        self.losses.iter().map(|(&m, &p)| (m, p))
    }

    /// Number of receivers.
    pub fn len(&self) -> usize {
        self.losses.len()
    }

    /// Whether the population is empty.
    pub fn is_empty(&self) -> bool {
        self.losses.is_empty()
    }

    /// Samples one delivery attempt to `member`: `true` if the packet
    /// arrives.
    pub fn delivered<R: Rng>(&self, member: MemberId, rng: &mut R) -> bool {
        rng.gen::<f64>() >= self.loss_of(member)
    }

    /// Mean loss rate across the population.
    pub fn mean_loss(&self) -> f64 {
        if self.losses.is_empty() {
            return 0.0;
        }
        self.losses.values().sum::<f64>() / self.losses.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn members(n: u64) -> Vec<MemberId> {
        (0..n).map(MemberId).collect()
    }

    #[test]
    fn homogeneous_assigns_everyone() {
        let pop = Population::homogeneous(&members(10), 0.05);
        assert_eq!(pop.len(), 10);
        for (_, p) in pop.iter() {
            assert_eq!(p, 0.05);
        }
    }

    #[test]
    fn two_point_splits_population() {
        let mut rng = StdRng::seed_from_u64(1);
        let pop = Population::two_point(&members(1000), 0.2, 0.2, 0.02, &mut rng);
        let high = pop.iter().filter(|&(_, p)| p == 0.2).count();
        assert_eq!(high, 200);
        assert_eq!(pop.len(), 1000);
    }

    #[test]
    fn two_point_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        let all_low = Population::two_point(&members(50), 0.0, 0.2, 0.02, &mut rng);
        assert!(all_low.iter().all(|(_, p)| p == 0.02));
        let all_high = Population::two_point(&members(50), 1.0, 0.2, 0.02, &mut rng);
        assert!(all_high.iter().all(|(_, p)| p == 0.2));
    }

    #[test]
    fn delivery_rate_matches_loss() {
        let mut rng = StdRng::seed_from_u64(3);
        let pop = Population::homogeneous(&members(1), 0.3);
        let trials = 20_000;
        let delivered = (0..trials)
            .filter(|_| pop.delivered(MemberId(0), &mut rng))
            .count();
        let rate = delivered as f64 / trials as f64;
        assert!((rate - 0.7).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn unknown_member_never_loses() {
        let mut rng = StdRng::seed_from_u64(4);
        let pop = Population::default();
        assert!(pop.delivered(MemberId(42), &mut rng));
        assert_eq!(pop.loss_of(MemberId(42)), 0.0);
    }

    #[test]
    fn mean_loss() {
        let mut pop = Population::homogeneous(&members(2), 0.1);
        pop.set(MemberId(1), 0.3);
        assert!((pop.mean_loss() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "loss probability out of range")]
    fn invalid_loss_rejected() {
        Population::homogeneous(&members(1), 1.0);
    }
}
