//! Arithmetic in GF(2⁸) with the reduction polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11d, the one conventionally used for
//! Reed–Solomon codes) and primitive element 2.
//!
//! Substrate for the Reed–Solomon erasure codes used by the
//! proactive-FEC rekey transport ([`crate::rs`]).

/// The reduction polynomial (without the x⁸ term).
const POLY: u16 = 0x11d;

/// Log/antilog tables for fast multiplication.
#[derive(Debug)]
struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        #[allow(clippy::needless_range_loop)]
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

/// Full 256×256 product table (64 KiB): row `c` maps `s → c·s`.
/// Turning the log/exp/zero-check dance of a scalar multiply into a
/// single indexed load is what makes the wide bulk routines below
/// branch-free.
fn mul_table() -> &'static [[u8; 256]; 256] {
    use std::sync::OnceLock;
    static MUL: OnceLock<Box<[[u8; 256]; 256]>> = OnceLock::new();
    MUL.get_or_init(|| {
        let mut table = vec![[0u8; 256]; 256];
        for (c, row) in table.iter_mut().enumerate() {
            for (s, out) in row.iter_mut().enumerate() {
                *out = mul(c as u8, s as u8);
            }
        }
        table
            .into_boxed_slice()
            .try_into()
            .expect("table has exactly 256 rows")
    })
}

/// The multiplication-by-`c` row of the product table: `row[s] = c·s`.
#[inline]
pub fn mul_row(c: u8) -> &'static [u8; 256] {
    &mul_table()[c as usize]
}

/// Addition in GF(256) (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(256).
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on `a == 0` (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division: `a / b`.
///
/// # Panics
///
/// Panics on division by zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Exponentiation of the generator: `2^e`.
#[inline]
pub fn exp2(e: usize) -> u8 {
    tables().exp[e % 255]
}

/// `dst[i] ^= src[i]` with 8-byte word passes.
fn xor_acc_wide(dst: &mut [u8], src: &[u8]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (d8, s8) in (&mut d).zip(&mut s) {
        let word = u64::from_ne_bytes(d8.try_into().expect("chunk of 8"))
            ^ u64::from_ne_bytes(s8.try_into().expect("chunk of 8"));
        d8.copy_from_slice(&word.to_ne_bytes());
    }
    for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d1 ^= s1;
    }
}

/// `dst[i] ^= c * src[i]` — the inner loop of RS encoding/decoding.
///
/// Table-driven wide form: one 256-byte row lookup per call, then
/// eight branch-free table loads per pass over the data. Compared to
/// the scalar log/exp formulation this removes the per-byte zero check
/// and the two dependent table lookups from the hot loop.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    match c {
        0 => {}
        1 => xor_acc_wide(dst, src),
        _ => {
            let row = mul_row(c);
            let mut d = dst.chunks_exact_mut(8);
            let mut s = src.chunks_exact(8);
            for (d8, s8) in (&mut d).zip(&mut s) {
                d8[0] ^= row[s8[0] as usize];
                d8[1] ^= row[s8[1] as usize];
                d8[2] ^= row[s8[2] as usize];
                d8[3] ^= row[s8[3] as usize];
                d8[4] ^= row[s8[4] as usize];
                d8[5] ^= row[s8[5] as usize];
                d8[6] ^= row[s8[6] as usize];
                d8[7] ^= row[s8[7] as usize];
            }
            for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
                *d1 ^= row[*s1 as usize];
            }
        }
    }
}

/// `dst[i] = c * dst[i]` in place — the row-normalization step of RS
/// decoding, in the same wide table-driven form as [`mul_acc`].
pub fn scale(dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            let row = mul_row(c);
            let mut d = dst.chunks_exact_mut(8);
            for d8 in &mut d {
                d8[0] = row[d8[0] as usize];
                d8[1] = row[d8[1] as usize];
                d8[2] = row[d8[2] as usize];
                d8[3] = row[d8[3] as usize];
                d8[4] = row[d8[4] as usize];
                d8[5] = row[d8[5] as usize];
                d8[6] = row[d8[6] as usize];
                d8[7] = row[d8[7] as usize];
            }
            for d1 in d.into_remainder() {
                *d1 = row[*d1 as usize];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn mul_commutative_and_associative() {
        for &(a, b, c) in &[(3u8, 7u8, 11u8), (0x53, 0xca, 0x02), (255, 254, 253)] {
            assert_eq!(mul(a, b), mul(b, a));
            assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }
    }

    #[test]
    fn distributive_over_add() {
        for a in [1u8, 2, 87, 255] {
            for b in [3u8, 91, 200] {
                for c in [5u8, 127] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
    }

    /// Schoolbook carry-less multiply + reduction by 0x11d.
    fn mul_slow(a: u8, b: u8) -> u8 {
        let (mut a, mut acc) = (a as u16, 0u16);
        let mut b = b;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= POLY;
            }
            b >>= 1;
        }
        acc as u8
    }

    #[test]
    fn table_mul_matches_schoolbook() {
        for a in (0..=255u8).step_by(7) {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_slow(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group: 2^255 = 1, and no
        // smaller positive power is 1.
        let mut x = 1u8;
        for i in 1..=255 {
            x = mul(x, 2);
            if i < 255 {
                assert_ne!(x, 1, "generator order divides {i}");
            }
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn mul_acc_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 77, 255] {
            let mut fast = vec![0xAA; 256];
            let mut slow = vec![0xAA; 256];
            mul_acc(&mut fast, &src, c);
            for (d, s) in slow.iter_mut().zip(&src) {
                *d ^= mul(c, *s);
            }
            assert_eq!(fast, slow, "c = {c}");
        }
    }

    #[test]
    fn mul_acc_handles_non_multiple_of_eight_lengths() {
        // Exercise the remainder path of the 8-wide loop.
        for len in [0usize, 1, 7, 8, 9, 13, 63, 257] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 5) as u8).collect();
            for c in [0u8, 1, 29, 255] {
                let mut fast = vec![0x5C; len];
                let mut slow = fast.clone();
                mul_acc(&mut fast, &src, c);
                for (d, s) in slow.iter_mut().zip(&src) {
                    *d ^= mul(c, *s);
                }
                assert_eq!(fast, slow, "len = {len}, c = {c}");
            }
        }
    }

    #[test]
    fn mul_row_matches_scalar_mul() {
        for c in [0u8, 1, 2, 142, 255] {
            let row = mul_row(c);
            for s in 0..=255u8 {
                assert_eq!(row[s as usize], mul(c, s), "c={c} s={s}");
            }
        }
    }

    #[test]
    fn scale_matches_scalar_mul() {
        for len in [0usize, 5, 8, 21, 256] {
            let base: Vec<u8> = (0..len).map(|i| (i * 11 + 3) as u8).collect();
            for c in [0u8, 1, 77, 254] {
                let mut fast = base.clone();
                scale(&mut fast, c);
                let slow: Vec<u8> = base.iter().map(|&b| mul(c, b)).collect();
                assert_eq!(fast, slow, "len = {len}, c = {c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn inv_zero_panics() {
        inv(0);
    }
}
