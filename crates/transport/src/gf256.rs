//! Arithmetic in GF(2⁸) with the reduction polynomial
//! `x⁸ + x⁴ + x³ + x² + 1` (0x11d, the one conventionally used for
//! Reed–Solomon codes) and primitive element 2.
//!
//! Substrate for the Reed–Solomon erasure codes used by the
//! proactive-FEC rekey transport ([`crate::rs`]).
//!
//! # SIMD bulk routines
//!
//! The RS hot loops ([`mul_acc`], [`scale`]) dispatch via
//! [`rekey_crypto::simd`] to `pshufb` nibble-table kernels: the
//! 256-byte product row for a constant `c` compresses to two 16-byte
//! tables (`lo[n] = c·n`, `hi[n] = c·(n·16)`), and
//! `c·x = lo[x & 0xF] ⊕ hi[x >> 4]` becomes two byte shuffles per
//! 16-byte (SSE) or 32-byte (AVX2) vector. The 128-bit form needs
//! SSSE3 (`pshufb` is not in SSE2), so the `Sse2` tier silently runs
//! the scalar table loop on CPUs without SSSE3 — counted as scalar in
//! the per-backend obs counters.

use rekey_crypto::simd::{self, Backend};

/// The reduction polynomial (without the x⁸ term).
const POLY: u16 = 0x11d;

/// Log/antilog tables for fast multiplication.
#[derive(Debug)]
struct Tables {
    log: [u8; 256],
    exp: [u8; 512],
}

fn tables() -> &'static Tables {
    use std::sync::OnceLock;
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut log = [0u8; 256];
        let mut exp = [0u8; 512];
        let mut x: u16 = 1;
        #[allow(clippy::needless_range_loop)]
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u8;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= POLY;
            }
        }
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { log, exp }
    })
}

/// Full 256×256 product table (64 KiB): row `c` maps `s → c·s`.
/// Turning the log/exp/zero-check dance of a scalar multiply into a
/// single indexed load is what makes the wide bulk routines below
/// branch-free.
fn mul_table() -> &'static [[u8; 256]; 256] {
    use std::sync::OnceLock;
    static MUL: OnceLock<Box<[[u8; 256]; 256]>> = OnceLock::new();
    MUL.get_or_init(|| {
        let mut table = vec![[0u8; 256]; 256];
        for (c, row) in table.iter_mut().enumerate() {
            for (s, out) in row.iter_mut().enumerate() {
                *out = mul(c as u8, s as u8);
            }
        }
        table
            .into_boxed_slice()
            .try_into()
            .expect("table has exactly 256 rows")
    })
}

/// The multiplication-by-`c` row of the product table: `row[s] = c·s`.
#[inline]
pub fn mul_row(c: u8) -> &'static [u8; 256] {
    &mul_table()[c as usize]
}

/// Addition in GF(256) (XOR).
#[inline]
pub fn add(a: u8, b: u8) -> u8 {
    a ^ b
}

/// Multiplication in GF(256).
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        return 0;
    }
    let t = tables();
    t.exp[t.log[a as usize] as usize + t.log[b as usize] as usize]
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on `a == 0` (zero has no inverse).
#[inline]
pub fn inv(a: u8) -> u8 {
    assert_ne!(a, 0, "zero has no inverse in GF(256)");
    let t = tables();
    t.exp[255 - t.log[a as usize] as usize]
}

/// Division: `a / b`.
///
/// # Panics
///
/// Panics on division by zero.
#[inline]
pub fn div(a: u8, b: u8) -> u8 {
    mul(a, inv(b))
}

/// Exponentiation of the generator: `2^e`.
#[inline]
pub fn exp2(e: usize) -> u8 {
    tables().exp[e % 255]
}

/// `dst[i] ^= src[i]` with 8-byte word passes.
fn xor_acc_wide(dst: &mut [u8], src: &[u8]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (d8, s8) in (&mut d).zip(&mut s) {
        let word = u64::from_ne_bytes(d8.try_into().expect("chunk of 8"))
            ^ u64::from_ne_bytes(s8.try_into().expect("chunk of 8"));
        d8.copy_from_slice(&word.to_ne_bytes());
    }
    for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d1 ^= s1;
    }
}

/// Scalar general path of [`mul_acc`]: eight branch-free table loads
/// per pass. Compared to the log/exp formulation this removes the
/// per-byte zero check and the two dependent lookups from the hot
/// loop.
fn mul_acc_row_scalar(dst: &mut [u8], src: &[u8], row: &[u8; 256]) {
    let mut d = dst.chunks_exact_mut(8);
    let mut s = src.chunks_exact(8);
    for (d8, s8) in (&mut d).zip(&mut s) {
        d8[0] ^= row[s8[0] as usize];
        d8[1] ^= row[s8[1] as usize];
        d8[2] ^= row[s8[2] as usize];
        d8[3] ^= row[s8[3] as usize];
        d8[4] ^= row[s8[4] as usize];
        d8[5] ^= row[s8[5] as usize];
        d8[6] ^= row[s8[6] as usize];
        d8[7] ^= row[s8[7] as usize];
    }
    for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d1 ^= row[*s1 as usize];
    }
}

/// Scalar general path of [`scale`].
fn scale_row_scalar(dst: &mut [u8], row: &[u8; 256]) {
    let mut d = dst.chunks_exact_mut(8);
    for d8 in &mut d {
        d8[0] = row[d8[0] as usize];
        d8[1] = row[d8[1] as usize];
        d8[2] = row[d8[2] as usize];
        d8[3] = row[d8[3] as usize];
        d8[4] = row[d8[4] as usize];
        d8[5] = row[d8[5] as usize];
        d8[6] = row[d8[6] as usize];
        d8[7] = row[d8[7] as usize];
    }
    for d1 in d.into_remainder() {
        *d1 = row[*d1 as usize];
    }
}

/// The tier the GF(256) kernels actually run for `backend`: the
/// 128-bit nibble kernel needs SSSE3 `pshufb`, so `Sse2` degrades to
/// scalar on CPUs without it (AVX2 brings its own shuffle).
fn gf_effective(backend: Backend) -> Backend {
    #[cfg(target_arch = "x86_64")]
    {
        match backend {
            Backend::Avx2 => Backend::Avx2,
            Backend::Sse2 if simd::detect().ssse3 => Backend::Sse2,
            _ => Backend::Scalar,
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        let _ = backend;
        Backend::Scalar
    }
}

fn count_gf_bytes(effective: Backend, bytes: usize) {
    rekey_obs::count(
        match effective {
            Backend::Scalar => "transport.gf256_bytes.scalar",
            Backend::Sse2 => "transport.gf256_bytes.sse2",
            Backend::Avx2 => "transport.gf256_bytes.avx2",
        },
        bytes as u64,
    );
}

/// `dst[i] ^= c * src[i]` — the inner loop of RS encoding/decoding —
/// on the process-wide SIMD backend.
pub fn mul_acc(dst: &mut [u8], src: &[u8], c: u8) {
    mul_acc_with(simd::active(), dst, src, c)
}

/// [`mul_acc`] on an explicit backend.
///
/// Entry point for the SIMD equivalence tests and per-backend benches;
/// production callers use [`mul_acc`].
pub fn mul_acc_with(backend: Backend, dst: &mut [u8], src: &[u8], c: u8) {
    debug_assert_eq!(dst.len(), src.len());
    match c {
        0 => {}
        1 => xor_acc_wide(dst, src),
        _ => {
            let row = mul_row(c);
            let effective = gf_effective(backend);
            #[cfg(target_arch = "x86_64")]
            let done = match effective {
                Backend::Avx2 => x86::mul_acc_avx2(dst, src, row),
                Backend::Sse2 => x86::mul_acc_ssse3(dst, src, row),
                Backend::Scalar => 0,
            };
            #[cfg(not(target_arch = "x86_64"))]
            let done = 0;
            mul_acc_row_scalar(&mut dst[done..], &src[done..], row);
            count_gf_bytes(effective, dst.len());
        }
    }
}

/// `dst[i] = c * dst[i]` in place — the row-normalization step of RS
/// decoding — on the process-wide SIMD backend.
pub fn scale(dst: &mut [u8], c: u8) {
    scale_with(simd::active(), dst, c)
}

/// [`scale`] on an explicit backend.
pub fn scale_with(backend: Backend, dst: &mut [u8], c: u8) {
    match c {
        0 => dst.fill(0),
        1 => {}
        _ => {
            let row = mul_row(c);
            let effective = gf_effective(backend);
            #[cfg(target_arch = "x86_64")]
            let done = match effective {
                Backend::Avx2 => x86::scale_avx2(dst, row),
                Backend::Sse2 => x86::scale_ssse3(dst, row),
                Backend::Scalar => 0,
            };
            #[cfg(not(target_arch = "x86_64"))]
            let done = 0;
            scale_row_scalar(&mut dst[done..], row);
            count_gf_bytes(effective, dst.len());
        }
    }
}

/// `pshufb` nibble-table kernels. A 256-entry product row collapses to
/// two 16-byte tables indexed by the low/high nibble; one multiply =
/// two byte shuffles + one XOR per vector.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use core::arch::x86_64::*;

    /// Splits a product row into its low-/high-nibble tables:
    /// `lo[n] = c·n`, `hi[n] = c·(n·16)`; by linearity of GF(256)
    /// multiplication over XOR, `c·x = lo[x & 0xF] ⊕ hi[x >> 4]`.
    fn nibble_tables(row: &[u8; 256]) -> ([u8; 16], [u8; 16]) {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16 {
            lo[n] = row[n];
            hi[n] = row[n << 4];
        }
        (lo, hi)
    }

    /// Safe entries. Each checks the required CPU feature itself and
    /// returns 0 (no bytes processed; the caller's scalar path covers
    /// everything) when it is absent, so the internal `unsafe` blocks
    /// are sound unconditionally: the `target_feature` kernels are only
    /// entered after `is_x86_feature_detected!` confirms the feature.
    pub fn mul_acc_ssse3(dst: &mut [u8], src: &[u8], row: &[u8; 256]) -> usize {
        if !std::arch::is_x86_feature_detected!("ssse3") {
            return 0;
        }
        // SAFETY: SSSE3 confirmed above.
        unsafe { mul_acc_ssse3_impl(dst, src, row) }
    }

    /// See [`mul_acc_ssse3`].
    pub fn mul_acc_avx2(dst: &mut [u8], src: &[u8], row: &[u8; 256]) -> usize {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return 0;
        }
        // SAFETY: AVX2 confirmed above.
        unsafe { mul_acc_avx2_impl(dst, src, row) }
    }

    /// See [`mul_acc_ssse3`].
    pub fn scale_ssse3(dst: &mut [u8], row: &[u8; 256]) -> usize {
        if !std::arch::is_x86_feature_detected!("ssse3") {
            return 0;
        }
        // SAFETY: SSSE3 confirmed above.
        unsafe { scale_ssse3_impl(dst, row) }
    }

    /// See [`mul_acc_ssse3`].
    pub fn scale_avx2(dst: &mut [u8], row: &[u8; 256]) -> usize {
        if !std::arch::is_x86_feature_detected!("avx2") {
            return 0;
        }
        // SAFETY: AVX2 confirmed above.
        unsafe { scale_avx2_impl(dst, row) }
    }

    /// `c·x` for one 128-bit vector via two nibble shuffles.
    #[inline]
    #[target_feature(enable = "ssse3")]
    unsafe fn mul128(x: __m128i, lo: __m128i, hi: __m128i, mask: __m128i) -> __m128i {
        _mm_xor_si128(
            _mm_shuffle_epi8(lo, _mm_and_si128(x, mask)),
            _mm_shuffle_epi8(hi, _mm_and_si128(_mm_srli_epi16(x, 4), mask)),
        )
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn mul_acc_ssse3_impl(dst: &mut [u8], src: &[u8], row: &[u8; 256]) -> usize {
        let (lo_t, hi_t) = nibble_tables(row);
        let lo = _mm_loadu_si128(lo_t.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(hi_t.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let n = dst.len().min(src.len()) & !15;
        let mut i = 0;
        while i < n {
            let x = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            let p = mul128(x, lo, hi, mask);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(d, p));
            i += 16;
        }
        n
    }

    #[target_feature(enable = "ssse3")]
    unsafe fn scale_ssse3_impl(dst: &mut [u8], row: &[u8; 256]) -> usize {
        let (lo_t, hi_t) = nibble_tables(row);
        let lo = _mm_loadu_si128(lo_t.as_ptr() as *const __m128i);
        let hi = _mm_loadu_si128(hi_t.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0f);
        let n = dst.len() & !15;
        let mut i = 0;
        while i < n {
            let x = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            let p = mul128(x, lo, hi, mask);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, p);
            i += 16;
        }
        n
    }

    /// `c·x` for one 256-bit vector; `_mm256_shuffle_epi8` shuffles
    /// within each 128-bit lane, which is exactly right for a 16-entry
    /// table broadcast to both lanes.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn mul256(x: __m256i, lo: __m256i, hi: __m256i, mask: __m256i) -> __m256i {
        _mm256_xor_si256(
            _mm256_shuffle_epi8(lo, _mm256_and_si256(x, mask)),
            _mm256_shuffle_epi8(hi, _mm256_and_si256(_mm256_srli_epi16(x, 4), mask)),
        )
    }

    #[target_feature(enable = "avx2")]
    unsafe fn mul_acc_avx2_impl(dst: &mut [u8], src: &[u8], row: &[u8; 256]) -> usize {
        let (lo_t, hi_t) = nibble_tables(row);
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo_t.as_ptr() as *const __m128i));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi_t.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        let n = dst.len().min(src.len()) & !31;
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            let p = mul256(x, lo, hi, mask);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(d, p),
            );
            i += 32;
        }
        n
    }

    #[target_feature(enable = "avx2")]
    unsafe fn scale_avx2_impl(dst: &mut [u8], row: &[u8; 256]) -> usize {
        let (lo_t, hi_t) = nibble_tables(row);
        let lo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo_t.as_ptr() as *const __m128i));
        let hi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi_t.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0f);
        let n = dst.len() & !31;
        let mut i = 0;
        while i < n {
            let x = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            let p = mul256(x, lo, hi, mask);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i) as *mut __m256i, p);
            i += 32;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_identity_and_zero() {
        for a in 0..=255u8 {
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
            assert_eq!(mul(0, a), 0);
        }
    }

    #[test]
    fn mul_commutative_and_associative() {
        for &(a, b, c) in &[(3u8, 7u8, 11u8), (0x53, 0xca, 0x02), (255, 254, 253)] {
            assert_eq!(mul(a, b), mul(b, a));
            assert_eq!(mul(mul(a, b), c), mul(a, mul(b, c)));
        }
    }

    #[test]
    fn distributive_over_add() {
        for a in [1u8, 2, 87, 255] {
            for b in [3u8, 91, 200] {
                for c in [5u8, 127] {
                    assert_eq!(mul(a, add(b, c)), add(mul(a, b), mul(a, c)));
                }
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a = {a}");
        }
    }

    /// Schoolbook carry-less multiply + reduction by 0x11d.
    fn mul_slow(a: u8, b: u8) -> u8 {
        let (mut a, mut acc) = (a as u16, 0u16);
        let mut b = b;
        while b != 0 {
            if b & 1 != 0 {
                acc ^= a;
            }
            a <<= 1;
            if a & 0x100 != 0 {
                a ^= POLY;
            }
            b >>= 1;
        }
        acc as u8
    }

    #[test]
    fn table_mul_matches_schoolbook() {
        for a in (0..=255u8).step_by(7) {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul_slow(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn generator_has_full_order() {
        // 2 generates the multiplicative group: 2^255 = 1, and no
        // smaller positive power is 1.
        let mut x = 1u8;
        for i in 1..=255 {
            x = mul(x, 2);
            if i < 255 {
                assert_ne!(x, 1, "generator order divides {i}");
            }
        }
        assert_eq!(x, 1);
    }

    #[test]
    fn mul_acc_matches_scalar_loop() {
        let src: Vec<u8> = (0..=255).collect();
        for c in [0u8, 1, 2, 77, 255] {
            let mut fast = vec![0xAA; 256];
            let mut slow = vec![0xAA; 256];
            mul_acc(&mut fast, &src, c);
            for (d, s) in slow.iter_mut().zip(&src) {
                *d ^= mul(c, *s);
            }
            assert_eq!(fast, slow, "c = {c}");
        }
    }

    #[test]
    fn mul_acc_handles_non_multiple_of_eight_lengths() {
        // Exercise the remainder path of the 8-wide loop.
        for len in [0usize, 1, 7, 8, 9, 13, 63, 257] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 5) as u8).collect();
            for c in [0u8, 1, 29, 255] {
                let mut fast = vec![0x5C; len];
                let mut slow = fast.clone();
                mul_acc(&mut fast, &src, c);
                for (d, s) in slow.iter_mut().zip(&src) {
                    *d ^= mul(c, *s);
                }
                assert_eq!(fast, slow, "len = {len}, c = {c}");
            }
        }
    }

    #[test]
    fn mul_row_matches_scalar_mul() {
        for c in [0u8, 1, 2, 142, 255] {
            let row = mul_row(c);
            for s in 0..=255u8 {
                assert_eq!(row[s as usize], mul(c, s), "c={c} s={s}");
            }
        }
    }

    #[test]
    fn scale_matches_scalar_mul() {
        for len in [0usize, 5, 8, 21, 256] {
            let base: Vec<u8> = (0..len).map(|i| (i * 11 + 3) as u8).collect();
            for c in [0u8, 1, 77, 254] {
                let mut fast = base.clone();
                scale(&mut fast, c);
                let slow: Vec<u8> = base.iter().map(|&b| mul(c, b)).collect();
                assert_eq!(fast, slow, "len = {len}, c = {c}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "zero has no inverse")]
    fn inv_zero_panics() {
        inv(0);
    }

    /// Every backend the CPU supports produces the scalar bytes, at
    /// lengths straddling the 16- and 32-byte vector boundaries.
    #[test]
    fn simd_backends_match_scalar_reference() {
        let feats = simd::detect();
        let mut backends = vec![Backend::Scalar];
        if feats.sse2 {
            backends.push(Backend::Sse2);
        }
        if feats.avx2 {
            backends.push(Backend::Avx2);
        }
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 64, 100, 257] {
            let src: Vec<u8> = (0..len).map(|i| (i * 37 + 5) as u8).collect();
            let base: Vec<u8> = (0..len).map(|i| (i * 11 + 3) as u8).collect();
            for c in [0u8, 1, 2, 29, 142, 255] {
                let mut acc_ref = base.clone();
                mul_acc_with(Backend::Scalar, &mut acc_ref, &src, c);
                let mut scale_ref = base.clone();
                scale_with(Backend::Scalar, &mut scale_ref, c);
                for &backend in &backends[1..] {
                    let mut acc = base.clone();
                    mul_acc_with(backend, &mut acc, &src, c);
                    assert_eq!(acc, acc_ref, "mul_acc len={len} c={c} {backend}");
                    let mut scaled = base.clone();
                    scale_with(backend, &mut scaled, c);
                    assert_eq!(scaled, scale_ref, "scale len={len} c={c} {backend}");
                }
            }
        }
    }
}
