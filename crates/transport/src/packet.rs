//! Packetization of rekey messages.
//!
//! One [`Packet`] carries up to [`PacketConfig::capacity`] encrypted
//! keys. The default capacity models a 1400-byte UDP payload holding
//! ~100-byte serialized entries. Entries are referenced by their index
//! in the originating [`RekeyMessage`] so the simulation layer can
//! track interest and delivery cheaply; the actual byte format lives
//! in one place — [`rekey_keytree::message::codec`] — and this module
//! re-exports it. [`Packet::to_bytes`] emits the codec's versioned
//! block envelope (version byte, entry count, entries), which is what
//! the FEC transport feeds to Reed–Solomon so parity is computed over
//! genuine wire bytes.

use rekey_keytree::message::codec;
use rekey_keytree::message::RekeyMessage;

pub use rekey_keytree::message::codec::{decode_block, decode_entry, encode_entry, ENTRY_WIRE_LEN};

/// Packetization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketConfig {
    /// Maximum entries per packet.
    pub capacity: usize,
}

impl Default for PacketConfig {
    fn default() -> Self {
        // 1400-byte payload / ~100-byte entries.
        PacketConfig { capacity: 14 }
    }
}

/// A multicast packet: a set of entry indices into the rekey message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sequence number unique within one delivery.
    pub seq: u64,
    /// Indices into [`RekeyMessage::entries`].
    pub entries: Vec<usize>,
}

impl Packet {
    /// Number of encrypted keys this packet carries.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Serializes the packet's entries as a versioned entry block
    /// (see [`codec::encode_block`]); decode with
    /// [`codec::decode_block`].
    pub fn to_bytes(&self, message: &RekeyMessage) -> Vec<u8> {
        let mut buf = Vec::new();
        codec::encode_block(
            self.entries.iter().map(|&idx| &message.entries[idx]),
            &mut buf,
        );
        buf
    }
}

/// Packs entry indices into packets of at most `capacity` entries, in
/// the given order, assigning sequence numbers starting at `first_seq`.
pub fn pack(indices: &[usize], capacity: usize, first_seq: u64) -> Vec<Packet> {
    assert!(capacity >= 1, "packet capacity must be at least 1");
    indices
        .chunks(capacity)
        .enumerate()
        .map(|(i, chunk)| Packet {
            seq: first_seq + i as u64,
            entries: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_crypto::Key;
    use rekey_keytree::server::LkhServer;
    use rekey_keytree::MemberId;

    fn sample_message() -> RekeyMessage {
        let mut rng = StdRng::seed_from_u64(11);
        let mut server = LkhServer::new(4, 0);
        let joins: Vec<(MemberId, Key)> = (0..32)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        server.apply_batch(&joins, &[], &mut rng);
        server
            .apply_batch(&[], &[MemberId(3), MemberId(17)], &mut rng)
            .message
    }

    #[test]
    fn entry_wire_roundtrip() {
        let msg = sample_message();
        for entry in &msg.entries {
            let mut buf = Vec::new();
            encode_entry(entry, &mut buf);
            assert_eq!(buf.len(), ENTRY_WIRE_LEN);
            let mut slice = buf.as_slice();
            let decoded = decode_entry(&mut slice).unwrap();
            assert_eq!(&decoded, entry);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn decode_rejects_truncated() {
        let msg = sample_message();
        let mut buf = Vec::new();
        encode_entry(&msg.entries[0], &mut buf);
        let mut slice = &buf[..ENTRY_WIRE_LEN - 1];
        assert!(decode_entry(&mut slice).is_none());
    }

    #[test]
    fn wire_size_matches_message_estimate() {
        // The keytree crate's byte_len estimate must equal the actual
        // encoded size.
        let msg = sample_message();
        let mut buf = Vec::new();
        encode_entry(&msg.entries[0], &mut buf);
        assert_eq!(buf.len(), msg.entries[0].byte_len());
        assert_eq!(ENTRY_WIRE_LEN, msg.entries[0].byte_len());
    }

    #[test]
    fn pack_respects_capacity() {
        let indices: Vec<usize> = (0..33).collect();
        let packets = pack(&indices, 14, 100);
        assert_eq!(packets.len(), 3);
        assert_eq!(packets[0].entries.len(), 14);
        assert_eq!(packets[2].entries.len(), 5);
        assert_eq!(packets[0].seq, 100);
        assert_eq!(packets[2].seq, 102);
    }

    #[test]
    fn packet_bytes_roundtrip_all_entries() {
        let msg = sample_message();
        let indices: Vec<usize> = (0..msg.entries.len()).collect();
        let packets = pack(&indices, 5, 0);
        for p in &packets {
            let bytes = p.to_bytes(&msg);
            let mut slice = bytes.as_slice();
            let decoded = decode_block(&mut slice).unwrap();
            assert!(slice.is_empty());
            let expected: Vec<_> = p
                .entries
                .iter()
                .map(|&idx| msg.entries[idx].clone())
                .collect();
            assert_eq!(decoded, expected);
        }
    }

    #[test]
    fn packet_bytes_reject_bad_version() {
        let msg = sample_message();
        let p = Packet {
            seq: 0,
            entries: vec![0, 1],
        };
        let mut bytes = p.to_bytes(&msg);
        bytes[0] ^= 0xFF;
        assert!(decode_block(&mut bytes.as_slice()).is_none());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        pack(&[0, 1], 0, 0);
    }
}
