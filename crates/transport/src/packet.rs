//! Packetization and wire encoding of rekey messages.
//!
//! One [`Packet`] carries up to [`PacketConfig::capacity`] encrypted
//! keys. The default capacity models a 1400-byte UDP payload holding
//! ~100-byte serialized entries. Entries are referenced by their index
//! in the originating [`RekeyMessage`] so the simulation layer can
//! track interest and delivery cheaply; [`encode_entry`] /
//! [`decode_entry`] provide the actual byte format used when real
//! payloads are needed (the FEC transport encodes packets to bytes so
//! Reed–Solomon operates on genuine data).

use bytes::{Buf, BufMut};
use rekey_crypto::keywrap::WrappedKey;
use rekey_keytree::message::{RekeyEntry, RekeyMessage};
use rekey_keytree::NodeId;

/// Serialized entry size: 4 fixed u64s + flags + recipient +
/// audience + depth + wrapped key.
pub const ENTRY_WIRE_LEN: usize =
    8 + 8 + 8 + 8 + 1 + 1 + 8 + 4 + 4 + rekey_crypto::keywrap::WRAPPED_LEN;

/// Packetization parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketConfig {
    /// Maximum entries per packet.
    pub capacity: usize,
}

impl Default for PacketConfig {
    fn default() -> Self {
        // 1400-byte payload / ~100-byte entries.
        PacketConfig { capacity: 14 }
    }
}

/// A multicast packet: a set of entry indices into the rekey message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Sequence number unique within one delivery.
    pub seq: u64,
    /// Indices into [`RekeyMessage::entries`].
    pub entries: Vec<usize>,
}

impl Packet {
    /// Number of encrypted keys this packet carries.
    pub fn key_count(&self) -> usize {
        self.entries.len()
    }

    /// Serializes the packet's entries to bytes (length-prefixed).
    pub fn to_bytes(&self, message: &RekeyMessage) -> Vec<u8> {
        let mut buf = Vec::with_capacity(4 + self.entries.len() * ENTRY_WIRE_LEN);
        buf.put_u32(self.entries.len() as u32);
        for &idx in &self.entries {
            encode_entry(&message.entries[idx], &mut buf);
        }
        buf
    }
}

/// Serializes one rekey entry into `buf`.
pub fn encode_entry(entry: &RekeyEntry, buf: &mut Vec<u8>) {
    buf.put_u64(entry.target.0);
    buf.put_u64(entry.target_version);
    buf.put_u64(entry.under.0);
    buf.put_u64(entry.under_version);
    buf.put_u8(u8::from(entry.under_is_leaf));
    buf.put_u8(u8::from(entry.recipient.is_some()));
    buf.put_u64(entry.recipient.map(|m| m.0).unwrap_or(0));
    buf.put_u32(entry.audience);
    buf.put_u32(entry.target_depth);
    buf.put_slice(&entry.wrapped.to_bytes());
}

/// Deserializes one rekey entry from `buf`.
///
/// Returns `None` on truncated or malformed input.
pub fn decode_entry(buf: &mut &[u8]) -> Option<RekeyEntry> {
    if buf.remaining() < ENTRY_WIRE_LEN {
        return None;
    }
    let target = NodeId(buf.get_u64());
    let target_version = buf.get_u64();
    let under = NodeId(buf.get_u64());
    let under_version = buf.get_u64();
    let under_is_leaf = buf.get_u8() != 0;
    let has_recipient = buf.get_u8() != 0;
    let recipient_raw = buf.get_u64();
    let recipient = has_recipient.then_some(rekey_keytree::MemberId(recipient_raw));
    let audience = buf.get_u32();
    let target_depth = buf.get_u32();
    let mut wrapped_bytes = [0u8; rekey_crypto::keywrap::WRAPPED_LEN];
    buf.copy_to_slice(&mut wrapped_bytes);
    let wrapped = WrappedKey::from_bytes(&wrapped_bytes).ok()?;
    Some(RekeyEntry {
        target,
        target_version,
        under,
        under_version,
        under_is_leaf,
        recipient,
        audience,
        target_depth,
        wrapped,
    })
}

/// Packs entry indices into packets of at most `capacity` entries, in
/// the given order, assigning sequence numbers starting at `first_seq`.
pub fn pack(indices: &[usize], capacity: usize, first_seq: u64) -> Vec<Packet> {
    assert!(capacity >= 1, "packet capacity must be at least 1");
    indices
        .chunks(capacity)
        .enumerate()
        .map(|(i, chunk)| Packet {
            seq: first_seq + i as u64,
            entries: chunk.to_vec(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_crypto::Key;
    use rekey_keytree::server::LkhServer;
    use rekey_keytree::MemberId;

    fn sample_message() -> RekeyMessage {
        let mut rng = StdRng::seed_from_u64(11);
        let mut server = LkhServer::new(4, 0);
        let joins: Vec<(MemberId, Key)> = (0..32)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        server.apply_batch(&joins, &[], &mut rng);
        server
            .apply_batch(&[], &[MemberId(3), MemberId(17)], &mut rng)
            .message
    }

    #[test]
    fn entry_wire_roundtrip() {
        let msg = sample_message();
        for entry in &msg.entries {
            let mut buf = Vec::new();
            encode_entry(entry, &mut buf);
            assert_eq!(buf.len(), ENTRY_WIRE_LEN);
            let mut slice = buf.as_slice();
            let decoded = decode_entry(&mut slice).unwrap();
            assert_eq!(&decoded, entry);
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn decode_rejects_truncated() {
        let msg = sample_message();
        let mut buf = Vec::new();
        encode_entry(&msg.entries[0], &mut buf);
        let mut slice = &buf[..ENTRY_WIRE_LEN - 1];
        assert!(decode_entry(&mut slice).is_none());
    }

    #[test]
    fn wire_size_matches_message_estimate() {
        // The keytree crate's byte_len estimate must equal the actual
        // encoded size.
        let msg = sample_message();
        let mut buf = Vec::new();
        encode_entry(&msg.entries[0], &mut buf);
        assert_eq!(buf.len(), msg.entries[0].byte_len());
        assert_eq!(ENTRY_WIRE_LEN, msg.entries[0].byte_len());
    }

    #[test]
    fn pack_respects_capacity() {
        let indices: Vec<usize> = (0..33).collect();
        let packets = pack(&indices, 14, 100);
        assert_eq!(packets.len(), 3);
        assert_eq!(packets[0].entries.len(), 14);
        assert_eq!(packets[2].entries.len(), 5);
        assert_eq!(packets[0].seq, 100);
        assert_eq!(packets[2].seq, 102);
    }

    #[test]
    fn packet_bytes_roundtrip_all_entries() {
        let msg = sample_message();
        let indices: Vec<usize> = (0..msg.entries.len()).collect();
        let packets = pack(&indices, 5, 0);
        for p in &packets {
            let bytes = p.to_bytes(&msg);
            let mut slice = &bytes[4..];
            for &idx in &p.entries {
                let decoded = decode_entry(&mut slice).unwrap();
                assert_eq!(&decoded, &msg.entries[idx]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_rejected() {
        pack(&[0, 1], 0, 0);
    }
}
