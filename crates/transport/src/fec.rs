//! Proactive-FEC rekey transport \[YLZL01\], on real Reed–Solomon
//! erasure codes.
//!
//! The rekey payload is packed into payload packets, grouped into FEC
//! blocks of `k` packets. Each block is extended with parity packets
//! computed by [`crate::rs::ReedSolomon`]; `⌈ρk⌉ − k` parity packets
//! are sent *proactively* with the first round (the protocol's answer
//! to the soft real-time requirement of key delivery). A receiver
//! reconstructs a block from any `k` of its shards; receivers still
//! short after a round NACK their deficit and the server multicasts
//! fresh parity — never previously-sent packets — sized to the largest
//! reported deficit.

use crate::interest::InterestMap;
use crate::loss::Population;
use crate::packet::{pack, Packet, PacketConfig};
use crate::rs::ReedSolomon;
use crate::DeliveryReport;
use rand::Rng;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::MemberId;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a proactive-FEC delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FecConfig {
    /// Packet capacity in entries.
    pub packet: PacketConfig,
    /// Payload packets per FEC block (`k`).
    pub block_packets: usize,
    /// Proactivity factor `ρ ≥ 1`.
    pub proactivity: f64,
    /// Round budget.
    pub max_rounds: usize,
    /// When set, every receiver's reconstruction is actually performed
    /// with the Reed–Solomon decoder and checked against the original
    /// bytes (slow; used by tests).
    pub verify_reconstruction: bool,
}

impl Default for FecConfig {
    fn default() -> Self {
        FecConfig {
            packet: PacketConfig::default(),
            block_packets: 8,
            proactivity: 1.25,
            max_rounds: 64,
            verify_reconstruction: false,
        }
    }
}

struct Block {
    /// Payload packets of this block.
    packets: Vec<Packet>,
    /// Serialized shard bytes (payload shards, padded to equal length).
    shards: Vec<Vec<u8>>,
    /// The erasure code (k = packets.len(), max parity).
    code: ReedSolomon,
    /// Parity shards generated so far (lazily extended).
    parity: Vec<Vec<u8>>,
    /// Shards transmitted so far (indices into data+parity space).
    sent: usize,
}

impl Block {
    fn new(packets: Vec<Packet>, message: &RekeyMessage) -> Self {
        let mut shards: Vec<Vec<u8>> = packets.iter().map(|p| p.to_bytes(message)).collect();
        let max_len = shards.iter().map(Vec::len).max().unwrap_or(0);
        for s in &mut shards {
            s.resize(max_len, 0);
        }
        let k = packets.len();
        let code = ReedSolomon::new(k, 255 - k);
        Block {
            packets,
            shards,
            code,
            parity: Vec::new(),
            sent: 0,
        }
    }

    fn k(&self) -> usize {
        self.packets.len()
    }

    /// Ensures at least `n` parity shards exist.
    fn extend_parity(&mut self, n: usize) {
        while self.parity.len() < n {
            let idx = self.parity.len();
            self.parity.push(self.code.parity_shard(&self.shards, idx));
        }
    }
}

/// Result of an FEC delivery.
#[derive(Debug, Clone)]
pub struct FecOutcome {
    /// Aggregate totals. `keys_transmitted` counts payload-equivalent
    /// keys: every transmitted shard (payload or parity) is one packet
    /// of `packet.capacity` keys' worth of bandwidth.
    pub report: DeliveryReport,
    /// Shards transmitted per block over the whole delivery.
    pub shards_per_block: Vec<usize>,
}

/// Delivers `message` with proactive FEC.
///
/// # Panics
///
/// Panics if `config.proactivity < 1` or `block_packets == 0`.
pub fn deliver<R: Rng>(
    message: &RekeyMessage,
    interest: &InterestMap,
    population: &Population,
    config: &FecConfig,
    rng: &mut R,
) -> FecOutcome {
    assert!(config.proactivity >= 1.0, "proactivity must be >= 1");
    assert!(
        config.block_packets >= 1,
        "need at least one packet per block"
    );

    // Pack payload: breadth-first (top keys first), then group into
    // blocks.
    let order: Vec<usize> = {
        let mut idx: Vec<usize> = (0..message.entries.len()).collect();
        idx.sort_by_key(|&i| (message.entries[i].target_depth, message.entries[i].under.0));
        idx
    };
    let payload = pack(&order, config.packet.capacity, 0);
    let mut blocks: Vec<Block> = payload
        .chunks(config.block_packets)
        .map(|chunk| Block::new(chunk.to_vec(), message))
        .collect();

    // Which blocks each receiver needs: any block containing one of
    // its entries.
    let mut entry_block: BTreeMap<usize, usize> = BTreeMap::new();
    for (b, block) in blocks.iter().enumerate() {
        for p in &block.packets {
            for &e in &p.entries {
                entry_block.insert(e, b);
            }
        }
    }
    // Per receiver, per needed block: shards received so far.
    let mut pending: BTreeMap<MemberId, BTreeMap<usize, BTreeSet<usize>>> = BTreeMap::new();
    for (&member, set) in interest {
        let blocks_needed: BTreeSet<usize> = set.iter().map(|e| entry_block[e]).collect();
        if !blocks_needed.is_empty() {
            pending.insert(
                member,
                blocks_needed
                    .into_iter()
                    .map(|b| (b, BTreeSet::new()))
                    .collect(),
            );
        }
    }

    let mut report = DeliveryReport::default();
    let mut shards_per_block = vec![0usize; blocks.len()];

    // Round 1 sends payload + proactive parity for every block;
    // subsequent rounds send the max NACKed deficit in fresh parity.
    let mut to_send: Vec<(usize, usize)> = Vec::new(); // (block, count)
    for (b, block) in blocks.iter().enumerate() {
        let k = block.k();
        let total = ((config.proactivity * k as f64).ceil() as usize).max(k);
        to_send.push((b, total));
    }

    while !pending.is_empty() && report.rounds < config.max_rounds {
        report.rounds += 1;

        // Materialize the shard indices for this round.
        let mut round_shards: Vec<(usize, usize)> = Vec::new(); // (block, shard idx)
        for &(b, count) in &to_send {
            let block = &mut blocks[b];
            let first = block.sent;
            let last = first + count;
            let parity_needed = last.saturating_sub(block.k());
            block.extend_parity(parity_needed);
            for s in first..last {
                round_shards.push((b, s));
            }
            block.sent = last;
            shards_per_block[b] += count;
        }
        report.packets += round_shards.len();
        report.keys_transmitted += round_shards.len() * config.packet.capacity;

        // Delivery simulation.
        let members: Vec<MemberId> = pending.keys().copied().collect();
        for member in members {
            let needs = pending.get_mut(&member).expect("member listed");
            for &(b, s) in &round_shards {
                if let Some(received) = needs.get_mut(&b) {
                    if population.delivered(member, rng) {
                        received.insert(s);
                    }
                }
            }
            // A block is complete once k shards arrived.
            let complete: Vec<usize> = needs
                .iter()
                .filter(|(&b, received)| received.len() >= blocks[b].k())
                .map(|(&b, _)| b)
                .collect();
            for b in complete {
                if config.verify_reconstruction {
                    let block = &blocks[b];
                    let received = &needs[&b];
                    let n = block.k() + block.code.parity_shards();
                    let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
                    for &s in received.iter() {
                        shards[s] = Some(if s < block.k() {
                            block.shards[s].clone()
                        } else {
                            block.parity[s - block.k()].clone()
                        });
                    }
                    let decoded = block
                        .code
                        .reconstruct(&shards)
                        .expect("k shards must reconstruct");
                    assert_eq!(decoded, block.shards, "RS reconstruction mismatch");
                }
                needs.remove(&b);
            }
            if needs.is_empty() {
                pending.remove(&member);
            }
        }

        // Collect NACK deficits for the next round.
        let mut deficit: BTreeMap<usize, usize> = BTreeMap::new();
        for needs in pending.values() {
            for (&b, received) in needs {
                let d = blocks[b].k().saturating_sub(received.len());
                let e = deficit.entry(b).or_insert(0);
                *e = (*e).max(d.max(1));
            }
        }
        to_send = deficit.into_iter().collect();
    }

    report.complete = pending.is_empty();
    FecOutcome {
        report,
        shards_per_block,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interest::interest_map;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_crypto::Key;
    use rekey_keytree::server::LkhServer;

    fn setup(n: u64, leavers: &[u64]) -> (LkhServer, RekeyMessage, Vec<MemberId>) {
        let mut rng = StdRng::seed_from_u64(41);
        let mut server = LkhServer::new(4, 0);
        let joins: Vec<(MemberId, Key)> = (0..n)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        server.apply_batch(&joins, &[], &mut rng);
        let leaving: Vec<MemberId> = leavers.iter().map(|&i| MemberId(i)).collect();
        let outcome = server.apply_batch(&[], &leaving, &mut rng);
        let members: Vec<MemberId> = (0..n)
            .filter(|i| !leavers.contains(i))
            .map(MemberId)
            .collect();
        (server, outcome.message, members)
    }

    fn cfg_verified() -> FecConfig {
        FecConfig {
            verify_reconstruction: true,
            ..FecConfig::default()
        }
    }

    #[test]
    fn lossless_needs_only_round_one() {
        let (server, message, members) = setup(128, &[5, 80]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.0);
        let mut rng = StdRng::seed_from_u64(1);
        let outcome = deliver(&message, &interest, &pop, &cfg_verified(), &mut rng);
        assert!(outcome.report.complete);
        assert_eq!(outcome.report.rounds, 1);
    }

    #[test]
    fn lossy_delivery_reconstructs_blocks() {
        let (server, message, members) = setup(256, &[3, 99, 180, 201]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let mut rng = StdRng::seed_from_u64(2);
        let pop = Population::two_point(&members, 0.3, 0.2, 0.02, &mut rng);
        let outcome = deliver(&message, &interest, &pop, &cfg_verified(), &mut rng);
        assert!(
            outcome.report.complete,
            "delivery incomplete: {:?}",
            outcome.report
        );
    }

    #[test]
    fn proactivity_reduces_rounds() {
        let (server, message, members) = setup(256, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.1);

        let mut rounds_lean = 0usize;
        let mut rounds_rich = 0usize;
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let lean = deliver(
                &message,
                &interest,
                &pop,
                &FecConfig {
                    proactivity: 1.0,
                    ..FecConfig::default()
                },
                &mut rng,
            );
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let rich = deliver(
                &message,
                &interest,
                &pop,
                &FecConfig {
                    proactivity: 1.6,
                    ..FecConfig::default()
                },
                &mut rng,
            );
            rounds_lean += lean.report.rounds;
            rounds_rich += rich.report.rounds;
        }
        assert!(
            rounds_rich <= rounds_lean,
            "more parity should not increase rounds: {rounds_rich} vs {rounds_lean}"
        );
    }

    #[test]
    fn high_loss_tail_inflates_cost() {
        // The §4 motivation, observed on the executable protocol.
        let (server, message, members) = setup(256, &[10, 20]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let mut pure = 0usize;
        let mut mixed = 0usize;
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = Population::homogeneous(&members, 0.02);
            pure += deliver(&message, &interest, &pop, &FecConfig::default(), &mut rng)
                .report
                .packets;
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = Population::two_point(&members, 0.1, 0.25, 0.02, &mut rng);
            mixed += deliver(&message, &interest, &pop, &FecConfig::default(), &mut rng)
                .report
                .packets;
        }
        assert!(
            mixed > pure,
            "mixed population should cost more: {mixed} vs {pure}"
        );
    }

    #[test]
    fn round_budget_reports_incomplete() {
        let (server, message, members) = setup(64, &[0]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.6);
        let cfg = FecConfig {
            max_rounds: 1,
            proactivity: 1.0,
            ..FecConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(9);
        let outcome = deliver(&message, &interest, &pop, &cfg, &mut rng);
        assert!(!outcome.report.complete);
    }
}
