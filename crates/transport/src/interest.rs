//! Per-receiver interest sets — the sparseness property of rekey
//! payloads (§2.2).
//!
//! A receiver needs exactly the entries wrapped under keys it holds,
//! i.e. the entries whose `under` node lies on its leaf-to-root path.
//! The key server knows the audience of every entry
//! (`members_under(entry.under)`), so it can compute the interest map
//! that drives NACK-based delivery.

use rekey_keytree::message::RekeyMessage;
use rekey_keytree::{MemberId, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Maps each receiver to the indices of the entries it needs.
pub type InterestMap = BTreeMap<MemberId, BTreeSet<usize>>;

/// Builds the interest map for `message` given a buffer-filling
/// audience oracle (typically
/// `|node, out| server.members_under_into(node, out)`).
///
/// Entries are grouped by their `under` node first, so the oracle runs
/// once per distinct node into a single reused buffer — the per-node
/// audience `Vec` allocations of the naive formulation disappear from
/// the simulation hot loop.
///
/// Receivers with no interested entries are omitted.
pub fn interest_map<F>(message: &RekeyMessage, mut members_under: F) -> InterestMap
where
    F: FnMut(NodeId, &mut Vec<MemberId>),
{
    let mut by_under: BTreeMap<NodeId, Vec<usize>> = BTreeMap::new();
    for (idx, entry) in message.entries.iter().enumerate() {
        by_under.entry(entry.under).or_default().push(idx);
    }
    let mut map: InterestMap = BTreeMap::new();
    let mut audience: Vec<MemberId> = Vec::new();
    for (under, indices) in by_under {
        audience.clear();
        members_under(under, &mut audience);
        for &m in &audience {
            map.entry(m).or_default().extend(indices.iter().copied());
        }
    }
    map
}

/// Total interest (sum of per-receiver entry counts) — useful for
/// verifying the sparseness property in tests.
pub fn total_interest(map: &InterestMap) -> usize {
    map.values().map(BTreeSet::len).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_crypto::Key;
    use rekey_keytree::server::LkhServer;

    #[test]
    fn interest_covers_survivors_only() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut server = LkhServer::new(4, 0);
        let joins: Vec<(MemberId, Key)> = (0..64)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        server.apply_batch(&joins, &[], &mut rng);
        let outcome = server.apply_batch(&[], &[MemberId(5)], &mut rng);

        let map = interest_map(&outcome.message, |node, out| {
            server.members_under_into(node, out)
        });
        // The departed member needs nothing.
        assert!(!map.contains_key(&MemberId(5)));
        // Every survivor needs at least the root update.
        for i in 0..64u64 {
            if i == 5 {
                continue;
            }
            assert!(
                map.get(&MemberId(i)).is_some_and(|s| !s.is_empty()),
                "member {i} has no interest"
            );
        }
    }

    #[test]
    fn sparseness_is_logarithmic() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut server = LkhServer::new(4, 0);
        let joins: Vec<(MemberId, Key)> = (0..256)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        server.apply_batch(&joins, &[], &mut rng);
        let outcome = server.apply_batch(&[], &[MemberId(9)], &mut rng);
        let map = interest_map(&outcome.message, |node, out| {
            server.members_under_into(node, out)
        });
        // A single departure updates one path: each member needs at
        // most ~h = log4(256) = 4 entries.
        for (m, set) in &map {
            assert!(set.len() <= 6, "member {m} needs {} entries", set.len());
        }
        // But the total message has ~d·h entries, all needed by someone.
        let needed: BTreeSet<usize> = map.values().flatten().copied().collect();
        assert_eq!(needed.len(), outcome.message.entries.len());
    }
}
