//! The naive multi-send baseline \[MSEC\] (§2.2): every round the whole
//! rekey message is replicated a fixed number of times, ignoring both
//! the sparseness property and per-key value.
//!
//! Included as the weakest baseline of the paper's protocol
//! comparison; WKA-BKR and proactive FEC should both beat it whenever
//! there is loss.

use crate::interest::InterestMap;
use crate::loss::Population;
use crate::packet::{pack, Packet, PacketConfig};
use crate::DeliveryReport;
use rand::Rng;
use rekey_keytree::message::RekeyMessage;
use rekey_keytree::MemberId;
use std::collections::{BTreeMap, BTreeSet};

/// Configuration of a multi-send delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiSendConfig {
    /// Packet capacity in entries.
    pub packet: PacketConfig,
    /// Copies of the full message transmitted per round.
    pub replication: usize,
    /// Round budget.
    pub max_rounds: usize,
}

impl Default for MultiSendConfig {
    fn default() -> Self {
        MultiSendConfig {
            packet: PacketConfig::default(),
            replication: 2,
            max_rounds: 64,
        }
    }
}

/// Delivers `message` by repeatedly multicasting the entire payload.
pub fn deliver<R: Rng>(
    message: &RekeyMessage,
    interest: &InterestMap,
    population: &Population,
    config: &MultiSendConfig,
    rng: &mut R,
) -> DeliveryReport {
    assert!(config.replication >= 1, "replication must be at least 1");
    let mut pending: BTreeMap<MemberId, BTreeSet<usize>> = interest
        .iter()
        .filter(|(_, s)| !s.is_empty())
        .map(|(&m, s)| (m, s.clone()))
        .collect();

    let all: Vec<usize> = (0..message.entries.len()).collect();
    let packets: Vec<Packet> = pack(&all, config.packet.capacity, 0);

    let mut report = DeliveryReport::default();
    while !pending.is_empty() && report.rounds < config.max_rounds {
        report.rounds += 1;
        for _copy in 0..config.replication {
            report.packets += packets.len();
            report.keys_transmitted += message.entries.len();
            let members: Vec<MemberId> = pending.keys().copied().collect();
            for member in members {
                let mut received: BTreeSet<usize> = BTreeSet::new();
                for packet in &packets {
                    if population.delivered(member, rng) {
                        received.extend(&packet.entries);
                    }
                }
                let set = pending.get_mut(&member).expect("member listed");
                for idx in received {
                    set.remove(&idx);
                }
                if set.is_empty() {
                    pending.remove(&member);
                }
            }
            if pending.is_empty() {
                break;
            }
        }
    }
    report.complete = pending.is_empty();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interest::interest_map;
    use crate::wka_bkr;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_crypto::Key;
    use rekey_keytree::server::LkhServer;

    fn setup(n: u64, leavers: &[u64]) -> (LkhServer, RekeyMessage, Vec<MemberId>) {
        let mut rng = StdRng::seed_from_u64(51);
        let mut server = LkhServer::new(4, 0);
        let joins: Vec<(MemberId, Key)> = (0..n)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        server.apply_batch(&joins, &[], &mut rng);
        let leaving: Vec<MemberId> = leavers.iter().map(|&i| MemberId(i)).collect();
        let outcome = server.apply_batch(&[], &leaving, &mut rng);
        let members: Vec<MemberId> = (0..n)
            .filter(|i| !leavers.contains(i))
            .map(MemberId)
            .collect();
        (server, outcome.message, members)
    }

    #[test]
    fn completes_under_loss() {
        let (server, message, members) = setup(128, &[4, 90]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.1);
        let mut rng = StdRng::seed_from_u64(1);
        let report = deliver(
            &message,
            &interest,
            &pop,
            &MultiSendConfig::default(),
            &mut rng,
        );
        assert!(report.complete);
    }

    #[test]
    fn wka_bkr_beats_multisend_under_loss() {
        // The paper (§2.2.1 / [SZJ02]): WKA-BKR has lower bandwidth
        // overhead than multi-send in most loss scenarios.
        let (server, message, members) = setup(256, &[3, 77, 130, 201]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let mut multi = 0usize;
        let mut wka = 0usize;
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = Population::two_point(&members, 0.2, 0.2, 0.02, &mut rng);
            multi += deliver(
                &message,
                &interest,
                &pop,
                &MultiSendConfig::default(),
                &mut rng,
            )
            .keys_transmitted;
            let mut rng = StdRng::seed_from_u64(seed);
            let pop = Population::two_point(&members, 0.2, 0.2, 0.02, &mut rng);
            wka += wka_bkr::deliver(
                &message,
                &interest,
                &pop,
                &wka_bkr::WkaBkrConfig::default(),
                &mut rng,
            )
            .report
            .keys_transmitted;
        }
        assert!(
            wka < multi,
            "WKA-BKR ({wka}) should beat multi-send ({multi})"
        );
    }

    #[test]
    #[should_panic(expected = "replication")]
    fn zero_replication_rejected() {
        let (server, message, members) = setup(8, &[0]);
        let interest = interest_map(&message, |n, out| server.members_under_into(n, out));
        let pop = Population::homogeneous(&members, 0.0);
        let cfg = MultiSendConfig {
            replication: 0,
            ..MultiSendConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(1);
        deliver(&message, &interest, &pop, &cfg, &mut rng);
    }
}
