//! Systematic Reed–Solomon erasure coding over GF(256).
//!
//! Used by the proactive-FEC rekey transport (\[YLZL01\]): each FEC
//! block of `k` payload packets is extended with `m` parity packets;
//! a receiver can reconstruct the block from *any* `k` of the `k + m`
//! shards (MDS property).
//!
//! The code is built from a Cauchy matrix, which guarantees that every
//! square submatrix is invertible, so decoding is a dense Gaussian
//! elimination over GF(256) of a `k × k` system.

use crate::gf256;
use std::error::Error;
use std::fmt;

/// Errors from Reed–Solomon operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RsError {
    /// Fewer than `k` shards survive — reconstruction impossible.
    NotEnoughShards {
        /// Shards required (`k`).
        needed: usize,
        /// Shards available.
        have: usize,
    },
    /// Shard lengths differ or parameters are inconsistent.
    Malformed,
}

impl fmt::Display for RsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RsError::NotEnoughShards { needed, have } => {
                write!(f, "need {needed} shards to reconstruct, have {have}")
            }
            RsError::Malformed => write!(f, "malformed shard set"),
        }
    }
}

impl Error for RsError {}

/// A systematic Reed–Solomon erasure code with `k` data shards and up
/// to `m` parity shards.
#[derive(Debug, Clone)]
pub struct ReedSolomon {
    k: usize,
    m: usize,
    /// `m × k` Cauchy parity matrix: parity_i = Σ_j cauchy[i][j]·data_j.
    parity_rows: Vec<Vec<u8>>,
}

impl ReedSolomon {
    /// Creates a code with `k` data and `m` parity shards.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= k`, `0 <= m`, and `k + m <= 255`.
    pub fn new(k: usize, m: usize) -> Self {
        assert!(k >= 1, "need at least one data shard");
        assert!(k + m <= 255, "k + m must be at most 255");
        // Cauchy matrix c[i][j] = 1 / (x_i + y_j) with x_i = k + i,
        // y_j = j: all sums nonzero and distinct in GF(256).
        let parity_rows = (0..m)
            .map(|i| {
                (0..k)
                    .map(|j| gf256::inv((k + i) as u8 ^ j as u8))
                    .collect()
            })
            .collect();
        ReedSolomon { k, m, parity_rows }
    }

    /// Data shard count `k`.
    pub fn data_shards(&self) -> usize {
        self.k
    }

    /// Parity shard count `m`.
    pub fn parity_shards(&self) -> usize {
        self.m
    }

    /// Computes parity shard `index` (0-based) for the given data
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics if `index >= m`, `data.len() != k`, or shard lengths
    /// differ.
    pub fn parity_shard(&self, data: &[Vec<u8>], index: usize) -> Vec<u8> {
        assert_eq!(data.len(), self.k, "expected {} data shards", self.k);
        assert!(index < self.m, "parity index out of range");
        let len = data[0].len();
        let mut out = vec![0u8; len];
        for (j, shard) in data.iter().enumerate() {
            assert_eq!(shard.len(), len, "shard lengths differ");
            gf256::mul_acc(&mut out, shard, self.parity_rows[index][j]);
        }
        out
    }

    /// Computes all `m` parity shards.
    pub fn encode(&self, data: &[Vec<u8>]) -> Vec<Vec<u8>> {
        let _span = rekey_obs::span!("transport.rs.encode");
        (0..self.m).map(|i| self.parity_shard(data, i)).collect()
    }

    /// Reconstructs the `k` data shards from any `k` surviving shards.
    ///
    /// `shards[idx]` holds the shard with global index `idx` (data
    /// shards are `0..k`, parity shards `k..k+m`); missing shards are
    /// `None`.
    ///
    /// # Errors
    ///
    /// [`RsError::NotEnoughShards`] if fewer than `k` shards are
    /// present; [`RsError::Malformed`] if lengths are inconsistent.
    pub fn reconstruct(&self, shards: &[Option<Vec<u8>>]) -> Result<Vec<Vec<u8>>, RsError> {
        let _span = rekey_obs::span!("transport.rs.reconstruct");
        if shards.len() != self.k + self.m {
            return Err(RsError::Malformed);
        }
        let available: Vec<usize> = shards
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|_| i))
            .collect();
        if available.len() < self.k {
            return Err(RsError::NotEnoughShards {
                needed: self.k,
                have: available.len(),
            });
        }
        let len = shards[available[0]]
            .as_ref()
            .expect("listed available")
            .len();
        for &i in &available {
            if shards[i].as_ref().expect("listed available").len() != len {
                return Err(RsError::Malformed);
            }
        }

        // Use the first k available shards. Build the k×k system:
        // row for shard idx expresses it as a combination of the data
        // shards (identity row for data shards, Cauchy row for parity).
        let used = &available[..self.k];
        let mut matrix: Vec<Vec<u8>> = used
            .iter()
            .map(|&idx| {
                if idx < self.k {
                    let mut row = vec![0u8; self.k];
                    row[idx] = 1;
                    row
                } else {
                    self.parity_rows[idx - self.k].clone()
                }
            })
            .collect();
        let mut rhs: Vec<Vec<u8>> = used
            .iter()
            .map(|&idx| shards[idx].as_ref().expect("listed available").clone())
            .collect();

        // Gaussian elimination over GF(256).
        for col in 0..self.k {
            // Find pivot.
            let pivot = (col..self.k)
                .find(|&r| matrix[r][col] != 0)
                .expect("Cauchy systems are always solvable");
            matrix.swap(col, pivot);
            rhs.swap(col, pivot);
            // Normalize pivot row.
            let inv_p = gf256::inv(matrix[col][col]);
            gf256::scale(&mut matrix[col][col..], inv_p);
            gf256::scale(&mut rhs[col], inv_p);
            // Eliminate the column everywhere else. Split borrows keep
            // the pivot row readable while other rows are updated, so
            // the elimination loop allocates nothing.
            let (m_before, m_rest) = matrix.split_at_mut(col);
            let (m_pivot, m_after) = m_rest.split_first_mut().expect("col < k");
            let (r_before, r_rest) = rhs.split_at_mut(col);
            let (r_pivot, r_after) = r_rest.split_first_mut().expect("col < k");
            let other_rows = m_before.iter_mut().chain(m_after.iter_mut());
            let other_rhs = r_before.iter_mut().chain(r_after.iter_mut());
            for (row, rhs_row) in other_rows.zip(other_rhs) {
                let factor = row[col];
                if factor == 0 {
                    continue;
                }
                gf256::mul_acc(&mut row[col..], &m_pivot[col..], factor);
                gf256::mul_acc(rhs_row, r_pivot, factor);
            }
        }
        Ok(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(rng: &mut StdRng, k: usize, len: usize) -> Vec<Vec<u8>> {
        (0..k)
            .map(|_| (0..len).map(|_| rng.gen()).collect())
            .collect()
    }

    #[test]
    fn roundtrip_no_erasures() {
        let mut rng = StdRng::seed_from_u64(1);
        let rs = ReedSolomon::new(4, 2);
        let data = random_data(&mut rng, 4, 64);
        let parity = rs.encode(&data);
        let shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        assert_eq!(rs.reconstruct(&shards).unwrap(), data);
    }

    #[test]
    fn recovers_from_data_erasures() {
        let mut rng = StdRng::seed_from_u64(2);
        let rs = ReedSolomon::new(6, 3);
        let data = random_data(&mut rng, 6, 100);
        let parity = rs.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        shards[0] = None;
        shards[3] = None;
        shards[5] = None;
        assert_eq!(rs.reconstruct(&shards).unwrap(), data);
    }

    #[test]
    fn recovers_from_mixed_erasures() {
        let mut rng = StdRng::seed_from_u64(3);
        let rs = ReedSolomon::new(8, 4);
        let data = random_data(&mut rng, 8, 37);
        let parity = rs.encode(&data);
        let mut shards: Vec<Option<Vec<u8>>> = data
            .iter()
            .chain(parity.iter())
            .cloned()
            .map(Some)
            .collect();
        // Drop 2 data + 2 parity = exactly m erasures.
        shards[1] = None;
        shards[6] = None;
        shards[9] = None;
        shards[11] = None;
        assert_eq!(rs.reconstruct(&shards).unwrap(), data);
    }

    #[test]
    fn fails_below_threshold() {
        let rs = ReedSolomon::new(4, 2);
        let shards: Vec<Option<Vec<u8>>> = vec![
            Some(vec![1, 2]),
            None,
            None,
            Some(vec![3, 4]),
            None,
            Some(vec![5, 6]),
        ];
        assert!(matches!(
            rs.reconstruct(&shards),
            Err(RsError::NotEnoughShards { needed: 4, have: 3 })
        ));
    }

    #[test]
    fn any_k_of_n_reconstructs() {
        // Exhaustively verify the MDS property for a small code.
        let mut rng = StdRng::seed_from_u64(4);
        let (k, m) = (3usize, 3usize);
        let rs = ReedSolomon::new(k, m);
        let data = random_data(&mut rng, k, 16);
        let parity = rs.encode(&data);
        let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();
        let n = k + m;
        // Every subset of size k.
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let mut shards: Vec<Option<Vec<u8>>> = vec![None; n];
                    for &i in &[a, b, c] {
                        shards[i] = Some(all[i].clone());
                    }
                    assert_eq!(
                        rs.reconstruct(&shards).unwrap(),
                        data,
                        "subset {{{a},{b},{c}}}"
                    );
                }
            }
        }
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let rs = ReedSolomon::new(2, 1);
        let shards = vec![Some(vec![1, 2]), Some(vec![3]), None];
        assert_eq!(rs.reconstruct(&shards), Err(RsError::Malformed));
    }

    #[test]
    fn zero_parity_degenerates_to_identity() {
        let rs = ReedSolomon::new(3, 0);
        let data = vec![vec![1u8], vec![2], vec![3]];
        assert!(rs.encode(&data).is_empty());
        let shards: Vec<Option<Vec<u8>>> = data.iter().cloned().map(Some).collect();
        assert_eq!(rs.reconstruct(&shards).unwrap(), data);
    }

    #[test]
    #[should_panic(expected = "at most 255")]
    fn oversized_code_rejected() {
        ReedSolomon::new(200, 100);
    }
}
