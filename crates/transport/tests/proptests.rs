//! Property-based tests for the transport layer.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::simd::{self, Backend};
use rekey_crypto::Key;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;
use rekey_transport::gf256;
use rekey_transport::interest::{interest_map, total_interest};
use rekey_transport::loss::Population;
use rekey_transport::packet::{decode_block, decode_entry, encode_entry, pack, Packet};
use rekey_transport::rs::ReedSolomon;
use rekey_transport::wka_bkr::{self, WkaBkrConfig};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Packing never exceeds capacity, never drops or duplicates an
    /// index, and preserves order.
    #[test]
    fn packing_partitions_indices(count in 1usize..400, capacity in 1usize..40) {
        let indices: Vec<usize> = (0..count).collect();
        let packets = pack(&indices, capacity, 7);
        let mut reassembled: Vec<usize> = Vec::new();
        for (i, p) in packets.iter().enumerate() {
            prop_assert!(p.entries.len() <= capacity);
            prop_assert_eq!(p.seq, 7 + i as u64);
            reassembled.extend(p.entries.iter().copied());
        }
        prop_assert_eq!(reassembled, indices);
    }

    /// Any k-of-(k+m) subset reconstructs random shard data.
    #[test]
    fn reed_solomon_mds(k in 1usize..8, m in 0usize..6, len in 1usize..64,
                        seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Vec<Vec<u8>> = (0..k)
            .map(|_| (0..len).map(|_| rand::Rng::gen(&mut rng)).collect())
            .collect();
        let rs = ReedSolomon::new(k, m);
        let parity = rs.encode(&data);
        let all: Vec<Vec<u8>> = data.iter().chain(parity.iter()).cloned().collect();

        // A random subset of exactly k survivors.
        let mut order: Vec<usize> = (0..k + m).collect();
        for i in 0..order.len() {
            let j = rand::Rng::gen_range(&mut rng, i..order.len());
            order.swap(i, j);
        }
        let mut shards: Vec<Option<Vec<u8>>> = vec![None; k + m];
        for &idx in order.iter().take(k) {
            shards[idx] = Some(all[idx].clone());
        }
        prop_assert_eq!(rs.reconstruct(&shards).unwrap(), data);
    }

    /// Entry wire encoding roundtrips for arbitrary field values.
    #[test]
    fn entry_wire_roundtrip(target in any::<u64>(), tv in any::<u64>(),
                            under in any::<u64>(), uv in any::<u64>(),
                            leaf in any::<bool>(),
                            recipient in proptest::option::of(any::<u64>()),
                            audience in any::<u32>(), depth in any::<u32>(),
                            kek in any::<[u8; 32]>(), payload in any::<[u8; 32]>(),
                            nonce in any::<[u8; 12]>()) {
        let entry = rekey_keytree::message::RekeyEntry {
            target: rekey_keytree::NodeId(target),
            target_version: tv,
            under: rekey_keytree::NodeId(under),
            under_version: uv,
            under_is_leaf: leaf,
            recipient: recipient.map(MemberId),
            audience,
            target_depth: depth,
            wrapped: rekey_crypto::keywrap::wrap_with_nonce(
                &Key::from_bytes(kek), &Key::from_bytes(payload), nonce),
        };
        let mut buf = Vec::new();
        encode_entry(&entry, &mut buf);
        let mut slice = buf.as_slice();
        let decoded = decode_entry(&mut slice).unwrap();
        prop_assert_eq!(decoded, entry);
        prop_assert!(slice.is_empty());
    }

    /// A packet's versioned block envelope roundtrips for random
    /// memberships, rejects every truncated prefix, and rejects a
    /// corrupted version byte.
    #[test]
    fn packet_block_roundtrip_truncation_and_version(
        n in 4u64..64, capacity in 1usize..10, seed in any::<u64>(),
        cut in any::<proptest::sample::Index>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server = LkhServer::new(3, 0);
        let joins: Vec<(MemberId, Key)> = (0..n)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        server.apply_batch(&joins, &[], &mut rng);
        let message = server.apply_batch(&[], &[MemberId(1)], &mut rng).message;

        let indices: Vec<usize> = (0..message.entries.len()).collect();
        for packet in pack(&indices, capacity, 0) {
            let bytes = packet.to_bytes(&message);
            let mut slice = bytes.as_slice();
            let decoded = decode_block(&mut slice).unwrap();
            prop_assert!(slice.is_empty());
            let expected: Vec<_> = packet
                .entries
                .iter()
                .map(|&idx| message.entries[idx].clone())
                .collect();
            prop_assert_eq!(decoded, expected);
        }

        // Truncation at a random cut point never panics and never
        // yields a block (the envelope is length-framed).
        let one = Packet { seq: 0, entries: indices.clone() };
        let bytes = one.to_bytes(&message);
        let cut = cut.index(bytes.len());
        prop_assert!(decode_block(&mut &bytes[..cut]).is_none());

        // A wrong version byte is rejected outright.
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        prop_assert!(decode_block(&mut bad.as_slice()).is_none());
    }

    /// WKA-BKR completes for any loss rate below 50% and any small
    /// group, and sends at least each needed entry once.
    #[test]
    fn wka_bkr_always_completes(n in 8u64..160, leavers in 1usize..6,
                                loss in 0.0f64..0.5, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut server = LkhServer::new(3, 0);
        let joins: Vec<(MemberId, Key)> = (0..n)
            .map(|i| (MemberId(i), Key::generate(&mut rng)))
            .collect();
        server.apply_batch(&joins, &[], &mut rng);
        let stride = (n as usize / leavers).max(1) | 1;
        let leaving: Vec<MemberId> = (0..leavers)
            .map(|i| MemberId(((i * stride) as u64) % n))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let out = server.apply_batch(&[], &leaving, &mut rng);
        let present: Vec<MemberId> = (0..n)
            .map(MemberId)
            .filter(|m| !leaving.contains(m))
            .collect();
        let interest = interest_map(&out.message, |node, out| server.members_under_into(node, out));
        prop_assert!(total_interest(&interest) > 0);
        let pop = Population::homogeneous(&present, loss);
        let outcome = wka_bkr::deliver(
            &out.message, &interest, &pop, &WkaBkrConfig::default(), &mut rng);
        prop_assert!(outcome.report.complete, "incomplete: {:?}", outcome.report);
        prop_assert!(outcome.report.keys_transmitted >= out.message.entries.len());
    }

    /// GF(256) SIMD backends are byte-identical to scalar for
    /// `mul_acc` and `scale` over arbitrary coefficients, unaligned
    /// buffers, and lengths straddling the 16/32-byte vector strides.
    #[test]
    fn gf256_simd_backends_match_scalar(c in any::<u8>(),
                                        len in 0usize..4 * 32 + 4,
                                        offset in 0usize..16,
                                        seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let src: Vec<u8> = (0..offset + len).map(|_| rand::Rng::gen(&mut rng)).collect();
        let base: Vec<u8> = (0..offset + len).map(|_| rand::Rng::gen(&mut rng)).collect();

        let mut acc_ref = base.clone();
        gf256::mul_acc_with(Backend::Scalar, &mut acc_ref[offset..], &src[offset..], c);
        let mut scale_ref = base.clone();
        gf256::scale_with(Backend::Scalar, &mut scale_ref[offset..], c);

        let feats = simd::detect();
        let mut backends = vec![Backend::Scalar];
        if feats.sse2 {
            backends.push(Backend::Sse2);
        }
        if feats.avx2 {
            backends.push(Backend::Avx2);
        }
        for backend in backends {
            let mut acc = base.clone();
            gf256::mul_acc_with(backend, &mut acc[offset..], &src[offset..], c);
            prop_assert_eq!(&acc, &acc_ref, "mul_acc diverged on {}", backend);
            let mut scaled = base.clone();
            gf256::scale_with(backend, &mut scaled[offset..], c);
            prop_assert_eq!(&scaled, &scale_ref, "scale diverged on {}", backend);
        }
    }
}
