//! The batched-rekey cost model `Ne(N, L)` of Appendix A.
//!
//! When `L` of `N` members are revoked in one batch (and `J = L`
//! members join), a key node whose subtree covers `S` members is
//! updated with probability `P = 1 − C(N−S, L)/C(N, L)` (equation 11),
//! and every updated key is encrypted once per child (equation 12).
//!
//! Two evaluators are provided:
//!
//! - [`ne_ideal`] — the paper's closed form for a *full* balanced
//!   d-ary tree (`N = d^h`), levels indexed from the root;
//! - [`ne`] — the "simple extension" to partially-full trees the paper
//!   alludes to: the exact balanced tree shape for arbitrary `N` is
//!   constructed (recursively splitting `N` leaves into `d` nearly
//!   equal subtrees) and the per-node cost summed. For `N = d^h` the
//!   two agree exactly.

use crate::math::p_update;
use std::collections::HashMap;

/// Splits `n` leaves into at most `d` nearly equal child subtrees.
///
/// For `n <= d` every child is a single leaf.
pub fn child_sizes(n: u64, d: u64) -> Vec<u64> {
    debug_assert!(n >= 2 && d >= 2);
    let parts = d.min(n);
    let base = n / parts;
    let rem = n % parts;
    (0..parts).map(|i| base + u64::from(i < rem)).collect()
}

/// Expected number of encrypted keys for one batched rekey of a
/// balanced d-ary tree with `n` members and `l` revocations, using the
/// exact tree shape (works for any `n`, real-valued `l`).
///
/// Returns 0 for `n < 2` or `l <= 0`.
pub fn ne(n: u64, l: f64, d: u32) -> f64 {
    if n < 2 || l <= 0.0 {
        return 0.0;
    }
    let l = l.min(n as f64);
    let mut memo: HashMap<u64, f64> = HashMap::new();
    subtree_cost(n, n as f64, l, d as u64, &mut memo)
}

fn subtree_cost(s: u64, n: f64, l: f64, d: u64, memo: &mut HashMap<u64, f64>) -> f64 {
    if s < 2 {
        return 0.0; // leaves (individual keys) are never re-issued
    }
    if let Some(&c) = memo.get(&s) {
        return c;
    }
    let children = child_sizes(s, d);
    let own = children.len() as f64 * p_update(n, s as f64, l);
    let below: f64 = children
        .iter()
        .map(|&c| subtree_cost(c, n, l, d, memo))
        .sum();
    let total = own + below;
    memo.insert(s, total);
    total
}

/// The paper's closed form for a full balanced tree: requires
/// `n = d^h` exactly.
///
/// # Panics
///
/// Panics if `n` is not a power of `d`.
pub fn ne_ideal(n: u64, l: f64, d: u32) -> f64 {
    let d64 = d as u64;
    let mut h = 0u32;
    let mut acc = 1u64;
    while acc < n {
        acc *= d64;
        h += 1;
    }
    assert_eq!(acc, n, "ne_ideal requires n to be a power of d");
    if l <= 0.0 {
        return 0.0;
    }
    let l = l.min(n as f64);
    let mut total = 0.0;
    for i in 0..h {
        let s_i = d64.pow(h - i) as f64; // members under a level-i node
        let nodes = d64.pow(i) as f64;
        total += d as f64 * nodes * p_update(n as f64, s_i, l);
    }
    total
}

/// Expected number of *updated* keys (not encryptions) — `Σ_i N_i` in
/// the paper's notation. Useful for OFT-style schemes where each
/// updated key costs one transmission instead of `d`.
pub fn updated_keys(n: u64, l: f64, d: u32) -> f64 {
    if n < 2 || l <= 0.0 {
        return 0.0;
    }
    let l = l.min(n as f64);
    let mut memo: HashMap<u64, f64> = HashMap::new();
    fn rec(s: u64, n: f64, l: f64, d: u64, memo: &mut HashMap<u64, f64>) -> f64 {
        if s < 2 {
            return 0.0;
        }
        if let Some(&c) = memo.get(&s) {
            return c;
        }
        let children = child_sizes(s, d);
        let total =
            p_update(n, s as f64, l) + children.iter().map(|&c| rec(c, n, l, d, memo)).sum::<f64>();
        memo.insert(s, total);
        total
    }
    rec(n, n as f64, l, d as u64, &mut memo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, rel: f64) -> bool {
        (a - b).abs() <= rel * b.abs().max(1e-12)
    }

    #[test]
    fn exact_matches_ideal_on_full_trees() {
        for &(n, d) in &[(64u64, 4u32), (256, 4), (65536, 4), (512, 2), (729, 3)] {
            for &l in &[1.0f64, 10.0, 100.0] {
                let l = l.min(n as f64 / 2.0);
                let a = ne(n, l, d);
                let b = ne_ideal(n, l, d);
                assert!(close(a, b, 1e-9), "n={n} d={d} l={l}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn single_departure_costs_about_d_log_n() {
        // The paper: ~d · ceil(log_d N) keys per departure.
        let cost = ne(65536, 1.0, 4);
        assert!(close(cost, 32.0, 0.01), "expected ≈ d·h = 32, got {cost}");
    }

    #[test]
    fn full_revocation_updates_every_interior_key() {
        // L = N revokes everyone: every interior key updates.
        let n = 64u64;
        let d = 4u32;
        let cost = ne(n, n as f64, d);
        // Interior nodes: 1 + 4 + 16 = 21, each with 4 children.
        assert!(close(cost, 84.0, 1e-9), "got {cost}");
    }

    #[test]
    fn batching_is_subadditive() {
        // Batched revocation of L members costs less than L times a
        // single revocation (path overlap — §2.1.1).
        let single = ne(65536, 1.0, 4);
        let batch = ne(65536, 256.0, 4);
        assert!(batch < 256.0 * single * 0.9);
        assert!(batch > single);
    }

    #[test]
    fn monotone_in_l() {
        let mut prev = 0.0;
        for l in [1.0, 4.0, 16.0, 64.0, 256.0, 1024.0] {
            let c = ne(4096, l, 4);
            assert!(c > prev, "l={l}: {c} <= {prev}");
            prev = c;
        }
    }

    #[test]
    fn zero_and_tiny_cases() {
        assert_eq!(ne(0, 10.0, 4), 0.0);
        assert_eq!(ne(1, 10.0, 4), 0.0);
        assert_eq!(ne(4096, 0.0, 4), 0.0);
        assert!(ne(2, 1.0, 4) > 0.0);
    }

    #[test]
    fn child_sizes_even_split() {
        assert_eq!(child_sizes(8, 4), vec![2, 2, 2, 2]);
        assert_eq!(child_sizes(10, 4), vec![3, 3, 2, 2]);
        assert_eq!(child_sizes(3, 4), vec![1, 1, 1]);
        assert_eq!(child_sizes(2, 2), vec![1, 1]);
    }

    #[test]
    fn updated_keys_less_than_encryptions() {
        let n = 4096;
        let l = 64.0;
        let upd = updated_keys(n, l, 4);
        let enc = ne(n, l, 4);
        assert!(upd < enc);
        assert!(close(enc, 4.0 * upd, 1e-9), "full tree: enc = d·updated");
    }

    #[test]
    fn paper_fig3_one_keytree_anchor() {
        // With Table 1 defaults J ≈ 1684; Fig. 3's one-keytree line
        // sits at ≈ 1.65e4 keys.
        let cost = ne(65536, 1684.0, 4);
        assert!(
            (15_500.0..17_500.0).contains(&cost),
            "one-keytree anchor off: {cost}"
        );
    }
}
