//! Analytic performance models for group rekeying, reproducing the
//! evaluation of *"Performance Optimizations for Group Key Management
//! Schemes for Secure Multicast"* (Zhu, Setia, Jajodia; ICDCS 2003).
//!
//! The paper's evaluation is entirely model-driven; this crate
//! implements each model:
//!
//! - [`appendix_a`] — the batched-rekey cost `Ne(N, L)`: expected
//!   number of encrypted keys the server transmits when `L` of `N`
//!   members are revoked in one batch (paper Appendix A, after
//!   \[YLZL01\]), for both the idealized full balanced tree and the
//!   exact shape of a balanced but partially-full tree.
//! - [`partition`] — the two-class open queueing model of §3.3.1
//!   (Fig. 2) and the steady-state rekey costs of the one-keytree,
//!   QT, TT and PT schemes (equations (1)–(10)); drives Figs. 3–5.
//! - [`appendix_b`] — the WKA-BKR reliable-transport bandwidth model
//!   `E[V]` (paper Appendix B, after \[SZJ02\]) generalized to
//!   heterogeneous per-receiver loss and key forests; drives
//!   Figs. 6–7.
//! - [`fec_model`] — a proactive-FEC transport cost model in the
//!   spirit of \[YLZL01\], used for the §4.4 extension result.
//! - [`math`] — supporting special functions (log-gamma, binomials)
//!   implemented from scratch.
//!
//! # Example
//!
//! Reproduce one point of Fig. 3 (the one-keytree cost under the
//! Table 1 defaults):
//!
//! ```
//! use rekey_analytic::partition::PartitionParams;
//!
//! let params = PartitionParams::paper_default();
//! let cost = params.cost_one_keytree();
//! // The paper's Fig. 3 shows ~1.65e4 keys per rekey interval.
//! assert!((15_000.0..18_000.0).contains(&cost));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod appendix_a;
pub mod appendix_b;
pub mod fec_model;
pub mod math;
pub mod partition;
pub mod probabilistic;
