//! Probabilistic key-tree organization (\[SMS00\], discussed in the
//! paper's §2.3 and the inspiration for the PT-scheme).
//!
//! If the key server knows (or can guess) each member's revocation
//! probability, it can organize the key tree like a Huffman code:
//! members likely to be revoked sit near the root, so their eviction
//! updates a short path. This module implements d-ary Huffman depth
//! assignment and the expected single-eviction rekey cost of the
//! resulting unbalanced tree, for comparison against the balanced
//! tree the LKH baseline maintains.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A min-heap item: (weight, tree-node index).
struct HeapItem {
    weight: f64,
    node: usize,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.weight == other.weight && self.node == other.node
    }
}
impl Eq for HeapItem {}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed for a min-heap; ties broken by node index for
        // determinism.
        other
            .weight
            .partial_cmp(&self.weight)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Computes the depth of each member's leaf in the d-ary Huffman tree
/// built over `weights` (relative revocation probabilities).
///
/// Standard d-ary Huffman: pad with zero-weight dummies so the first
/// merge can take fewer than `d` items while all later merges take
/// exactly `d`, guaranteeing optimality.
///
/// # Panics
///
/// Panics if `weights` is empty, `d < 2`, or any weight is negative
/// or non-finite.
pub fn huffman_depths(weights: &[f64], d: usize) -> Vec<usize> {
    assert!(!weights.is_empty(), "need at least one member");
    assert!(d >= 2, "tree degree must be at least 2");
    for &w in weights {
        assert!(w.is_finite() && w >= 0.0, "invalid weight {w}");
    }
    let n = weights.len();
    if n == 1 {
        return vec![0];
    }

    // parent[i] links each merged node upward; leaves are 0..n.
    let mut parent: Vec<Option<usize>> = vec![None; n];
    let mut heap: BinaryHeap<HeapItem> = weights
        .iter()
        .enumerate()
        .map(|(node, &weight)| HeapItem { weight, node })
        .collect();

    // First merge takes r items, 2 <= r <= d, such that afterwards
    // (remaining - 1) % (d - 1) == 0.
    let mut first = (n - 1) % (d - 1);
    if first != 0 {
        first += 1; // merge (first) items
    } else {
        first = d;
    }
    let mut merge_size = first.min(n).max(2);

    while heap.len() > 1 {
        let take = merge_size.min(heap.len());
        let mut weight = 0.0;
        let mut children = Vec::with_capacity(take);
        for _ in 0..take {
            let item = heap.pop().expect("heap has items");
            weight += item.weight;
            children.push(item.node);
        }
        let new_node = parent.len();
        parent.push(None);
        for c in children {
            parent[c] = Some(new_node);
        }
        heap.push(HeapItem {
            weight,
            node: new_node,
        });
        merge_size = d; // all later merges are full
    }

    (0..n)
        .map(|leaf| {
            let mut depth = 0;
            let mut at = leaf;
            while let Some(p) = parent[at] {
                at = p;
                depth += 1;
            }
            depth
        })
        .collect()
}

/// Expected encrypted keys per *single* eviction from the Huffman tree:
/// the evicted member is member `m` with probability `w_m / Σw`, and
/// its eviction updates its `depth_m` path keys, each encrypted under
/// up to `d` children.
pub fn expected_eviction_cost_huffman(weights: &[f64], d: usize) -> f64 {
    let depths = huffman_depths(weights, d);
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0.0;
    }
    weights
        .iter()
        .zip(&depths)
        .map(|(&w, &depth)| (w / total) * (d as f64) * depth as f64)
        .sum()
}

/// Expected encrypted keys per single eviction from a balanced tree of
/// `n` members: every member sits at depth `⌈log_d n⌉`.
pub fn expected_eviction_cost_balanced(n: usize, d: usize) -> f64 {
    assert!(n >= 1 && d >= 2);
    if n == 1 {
        return 0.0;
    }
    let h = (n as f64).log(d as f64).ceil();
    d as f64 * h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_textbook_example() {
        // Weights 0.5, 0.25, 0.125, 0.125 → depths 1, 2, 3, 3.
        let depths = huffman_depths(&[0.5, 0.25, 0.125, 0.125], 2);
        assert_eq!(depths, vec![1, 2, 3, 3]);
    }

    #[test]
    fn uniform_weights_give_balanced_depths() {
        let depths = huffman_depths(&[1.0; 16], 4);
        assert!(depths.iter().all(|&d| d == 2), "{depths:?}");
    }

    #[test]
    fn dary_padding_keeps_tree_tight() {
        // 5 leaves, d = 3: (5-1) % 2 = 0 → first merge takes 3;
        // optimal depths are [1, 1, 2, 2, 2] for uniform weights.
        let depths = huffman_depths(&[1.0; 5], 3);
        let max = *depths.iter().max().unwrap();
        assert!(max <= 2, "{depths:?}");
    }

    #[test]
    fn skewed_population_beats_balanced() {
        // 1000 members; 10% churners are 50x more likely to be
        // revoked. Huffman puts them near the root.
        let mut weights = vec![1.0f64; 1000];
        for w in weights.iter_mut().take(100) {
            *w = 50.0;
        }
        let huff = expected_eviction_cost_huffman(&weights, 4);
        let balanced = expected_eviction_cost_balanced(1000, 4);
        assert!(
            huff < balanced * 0.95,
            "huffman {huff:.2} vs balanced {balanced:.2}"
        );
    }

    #[test]
    fn uniform_population_matches_balanced() {
        let weights = vec![1.0f64; 4096];
        let huff = expected_eviction_cost_huffman(&weights, 4);
        let balanced = expected_eviction_cost_balanced(4096, 4);
        assert!((huff - balanced).abs() / balanced < 0.05);
    }

    #[test]
    fn high_weight_members_sit_higher() {
        let depths = huffman_depths(&[100.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0], 2);
        let heavy = depths[0];
        assert!(depths[1..].iter().all(|&d| d >= heavy));
    }

    #[test]
    fn single_member_costs_nothing() {
        assert_eq!(huffman_depths(&[3.0], 4), vec![0]);
        assert_eq!(expected_eviction_cost_balanced(1, 4), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid weight")]
    fn negative_weight_rejected() {
        huffman_depths(&[1.0, -2.0], 2);
    }

    #[test]
    fn zero_total_weight_is_zero_cost() {
        assert_eq!(expected_eviction_cost_huffman(&[0.0, 0.0], 2), 0.0);
    }
}
