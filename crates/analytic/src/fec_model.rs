//! A proactive-FEC rekey transport cost model in the spirit of
//! \[YLZL01\], used for the paper's §4.4 extension result (up to 25.7%
//! gain from loss homogenization when the transport is FEC-based).
//!
//! # Model
//!
//! The rekey payload (`total_keys` encrypted keys) is packed into
//! packets of [`FecParams::keys_per_packet`] keys, grouped into FEC
//! blocks of `k` payload packets. Because WKA-style key assignment
//! clusters the keys of a subtree into contiguous packets, each
//! receiver is interested in (approximately) one block, and the
//! interested audiences partition the group evenly across blocks.
//!
//! Per block and round:
//!
//! 1. the server multicasts the `k` payload packets plus
//!    `a = ⌈ρ·k⌉ − k` proactive parity packets (`ρ` = proactivity
//!    factor);
//! 2. a receiver with loss rate `p` loses `X ~ Binomial(sent, p)`
//!    of them and can reconstruct iff it received at least `k`
//!    (Reed–Solomon erasure property), i.e. its *deficit* is
//!    `D = max(0, X − a)`;
//! 3. needy receivers NACK their deficit; the server responds with
//!    `t = E[max deficit]` fresh parity packets (the BKR-style batched
//!    retransmission), and the round repeats.
//!
//! The per-class deficit distributions are tracked exactly (binomial
//! convolutions); the expected maximum over the audience uses
//! `P[max ≤ x] = Π_c P[D_c ≤ x]^{count_c}`. Iteration stops when the
//! expected number of needy receivers drops below 10⁻².
//!
//! This model is a documented substitution for the authors' closed
//! \[YLZL01\] implementation; see DESIGN.md.

use crate::appendix_b::LossMix;
use crate::math::binomial_distribution;
use serde::{Deserialize, Serialize};

/// Parameters of the proactive-FEC transport.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FecParams {
    /// Payload packets per FEC block (`k`).
    pub block_packets: u32,
    /// Proactivity factor `ρ ≥ 1`: `⌈ρk⌉` packets are sent per block
    /// in the first round.
    pub proactivity: f64,
    /// Encrypted keys per packet.
    pub keys_per_packet: u32,
    /// Safety cap on retransmission rounds.
    pub max_rounds: u32,
}

impl Default for FecParams {
    fn default() -> Self {
        FecParams {
            block_packets: 16,
            proactivity: 1.25,
            keys_per_packet: 25,
            max_rounds: 60,
        }
    }
}

impl FecParams {
    fn validate(&self) {
        assert!(
            self.block_packets >= 1,
            "need at least one packet per block"
        );
        assert!(self.proactivity >= 1.0, "proactivity factor must be >= 1");
        assert!(
            self.keys_per_packet >= 1,
            "need at least one key per packet"
        );
    }
}

/// Per-class deficit distribution: `pmf[x] = P[deficit = x]`,
/// truncated at `k` (a receiver can never need more than `k` packets).
#[derive(Debug, Clone)]
struct DeficitClass {
    count: f64,
    loss: f64,
    pmf: Vec<f64>,
}

impl DeficitClass {
    /// Distribution of `max(0, X - slack)` with `X ~ Bin(sent, loss)`,
    /// clamped to `0..=cap`.
    fn after_first_round(count: f64, loss: f64, sent: u32, slack: u32, cap: usize) -> Self {
        let x = binomial_distribution(sent, loss);
        let mut pmf = vec![0.0; cap + 1];
        for (losses, &p) in x.iter().enumerate() {
            let deficit = losses.saturating_sub(slack as usize).min(cap);
            pmf[deficit] += p;
        }
        DeficitClass { count, loss, pmf }
    }

    fn p_needy(&self) -> f64 {
        1.0 - self.pmf[0]
    }

    /// P[D <= x] vector.
    fn cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.pmf
            .iter()
            .map(|p| {
                acc += p;
                acc
            })
            .collect()
    }

    /// Applies a retransmission of `t` packets: the deficit shrinks by
    /// the number received, `R ~ Bin(t, 1 - loss)`.
    fn apply_retransmission(&mut self, t: u32) {
        if t == 0 {
            return;
        }
        let recv = binomial_distribution(t, 1.0 - self.loss);
        let cap = self.pmf.len() - 1;
        let mut next = vec![0.0; cap + 1];
        for (d, &pd) in self.pmf.iter().enumerate() {
            if pd == 0.0 {
                continue;
            }
            if d == 0 {
                next[0] += pd;
                continue;
            }
            for (r, &pr) in recv.iter().enumerate() {
                let nd = d.saturating_sub(r);
                next[nd] += pd * pr;
            }
        }
        self.pmf = next;
    }
}

/// Expected maximum deficit over all receivers of a block.
fn expected_max_deficit(classes: &[DeficitClass]) -> f64 {
    let cap = classes.iter().map(|c| c.pmf.len() - 1).max().unwrap_or(0);
    let cdfs: Vec<Vec<f64>> = classes.iter().map(|c| c.cdf()).collect();
    let mut e_max = 0.0;
    for x in 0..cap {
        // P[max > x] = 1 - Π P[D_c <= x]^{count_c}.
        let mut all_le = 1.0f64;
        for (c, cdf) in classes.iter().zip(&cdfs) {
            let p_le = cdf[x.min(cdf.len() - 1)].clamp(1e-300, 1.0);
            all_le *= p_le.powf(c.count);
        }
        e_max += 1.0 - all_le;
    }
    e_max
}

/// Expected number of packets transmitted to deliver one rekey payload
/// of `total_keys` encrypted keys to `n_receivers` receivers drawn
/// from `mix`, using proactive FEC + batched parity retransmission.
pub fn fec_cost_packets(
    n_receivers: u64,
    total_keys: f64,
    mix: &LossMix,
    params: &FecParams,
) -> f64 {
    params.validate();
    mix.validate();
    if n_receivers == 0 || total_keys <= 0.0 {
        return 0.0;
    }
    let payload_packets = (total_keys / params.keys_per_packet as f64).ceil().max(1.0);
    let blocks = (payload_packets / params.block_packets as f64)
        .ceil()
        .max(1.0);
    let receivers_per_block = n_receivers as f64 / blocks;

    let k = params.block_packets;
    let sent_first = (params.proactivity * k as f64).ceil() as u32;
    let slack = sent_first - k;

    // Deficit state per loss class for a representative block.
    let mut classes: Vec<DeficitClass> = mix
        .classes
        .iter()
        .filter(|(f, _)| *f > 0.0)
        .map(|&(f, p)| {
            DeficitClass::after_first_round(
                f * receivers_per_block,
                p,
                sent_first,
                slack,
                k as usize,
            )
        })
        .collect();

    let mut packets_per_block = sent_first as f64;
    for _ in 0..params.max_rounds {
        let needy: f64 = classes.iter().map(|c| c.count * c.p_needy()).sum();
        if needy < 1e-2 {
            break;
        }
        let t = expected_max_deficit(&classes).ceil().max(1.0) as u32;
        packets_per_block += t as f64;
        for c in &mut classes {
            c.apply_retransmission(t);
        }
    }
    blocks * packets_per_block
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> FecParams {
        FecParams::default()
    }

    #[test]
    fn lossless_costs_exactly_proactive_send() {
        let p = params();
        let mix = LossMix::homogeneous(0.0);
        let cost = fec_cost_packets(1000, 1000.0, &mix, &p);
        let payload = (1000.0f64 / p.keys_per_packet as f64).ceil();
        let blocks = (payload / p.block_packets as f64).ceil();
        let per_block = (p.proactivity * p.block_packets as f64).ceil();
        assert!((cost - blocks * per_block).abs() < 1e-9, "got {cost}");
    }

    #[test]
    fn cost_monotone_in_loss() {
        let p = params();
        let lo = fec_cost_packets(10_000, 5000.0, &LossMix::homogeneous(0.02), &p);
        let hi = fec_cost_packets(10_000, 5000.0, &LossMix::homogeneous(0.2), &p);
        assert!(hi > lo, "{hi} <= {lo}");
    }

    #[test]
    fn a_few_high_loss_receivers_taxes_the_whole_group() {
        // The motivation of §4: in a mixed population everyone pays
        // for the high-loss tail.
        let p = params();
        let pure_low = fec_cost_packets(65536, 6000.0, &LossMix::homogeneous(0.02), &p);
        let mixed = fec_cost_packets(65536, 6000.0, &LossMix::two_point(0.1, 0.2, 0.02), &p);
        assert!(mixed > pure_low * 1.1, "mixed {mixed} vs pure {pure_low}");
    }

    #[test]
    fn fec_homogenization_gain_larger_than_wka() {
        // §4.4: with FEC transport, splitting by loss class gains up
        // to ~25.7% at α = 0.1 — more than WKA-BKR's 12.1%.
        let p = params();
        let (alpha, ph, pl) = (0.1, 0.2, 0.02);
        let n = 65536.0;
        let keys = 6000.0;
        let mixed = fec_cost_packets(n as u64, keys, &LossMix::two_point(alpha, ph, pl), &p);
        let split = fec_cost_packets(
            ((1.0 - alpha) * n) as u64,
            (1.0 - alpha) * keys,
            &LossMix::homogeneous(pl),
            &p,
        ) + fec_cost_packets(
            (alpha * n) as u64,
            alpha * keys,
            &LossMix::homogeneous(ph),
            &p,
        );
        let gain = 1.0 - split / mixed;
        assert!(
            (0.10..0.45).contains(&gain),
            "FEC homogenization gain {gain:.3} vs paper's 25.7%"
        );
    }

    #[test]
    fn empty_inputs_cost_nothing() {
        let p = params();
        assert_eq!(
            fec_cost_packets(0, 100.0, &LossMix::homogeneous(0.1), &p),
            0.0
        );
        assert_eq!(
            fec_cost_packets(10, 0.0, &LossMix::homogeneous(0.1), &p),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "proactivity")]
    fn invalid_proactivity_rejected() {
        let p = FecParams {
            proactivity: 0.5,
            ..FecParams::default()
        };
        fec_cost_packets(10, 10.0, &LossMix::homogeneous(0.1), &p);
    }
}
