//! The WKA-BKR reliable-transport bandwidth model of Appendix B,
//! generalized to heterogeneous loss and key forests (Figs. 6–7).
//!
//! For an updated key at level `l` of the tree, each of its `d`
//! encryptions must reach the `R(l)` members under the corresponding
//! child. A member with loss probability `p` needs `E[M_r] = 1/(1-p)`
//! transmissions; the number of transmissions until *all* interested
//! members hold the key is the maximum over the audience
//! (equations (13)–(14)):
//!
//! ```text
//! E[M(l)] = Σ_{m≥1} ( 1 − Π_classes (1 − p_i^{m−1})^{f_i·R(l)} )
//! ```
//!
//! The expected rekey bandwidth is then `E[V] = Σ_l d·U(l)·E[M(l)]`
//! (equation (15)), with `U(l)` from Appendix A. As in
//! [`crate::appendix_a`], we evaluate over the exact balanced tree
//! shape so arbitrary group sizes work.

use crate::appendix_a::child_sizes;
use crate::math::p_update;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A population loss profile: fractions of members at each loss rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossMix {
    /// `(fraction, loss probability)` pairs; fractions sum to 1.
    pub classes: Vec<(f64, f64)>,
}

impl LossMix {
    /// Every member has the same loss probability.
    pub fn homogeneous(p: f64) -> Self {
        LossMix {
            classes: vec![(1.0, p)],
        }
    }

    /// Fraction `alpha` of members lose at `p_high`, the rest at
    /// `p_low` — the population of §4.3.
    pub fn two_point(alpha: f64, p_high: f64, p_low: f64) -> Self {
        LossMix {
            classes: vec![(alpha, p_high), (1.0 - alpha, p_low)],
        }
    }

    /// Checks fractions sum to ~1 and probabilities are in `[0, 1)`.
    ///
    /// # Panics
    ///
    /// Panics on invalid mixes.
    pub fn validate(&self) {
        let total: f64 = self.classes.iter().map(|(f, _)| f).sum();
        assert!(
            (total - 1.0).abs() < 1e-9,
            "loss mix fractions sum to {total}"
        );
        for &(f, p) in &self.classes {
            assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
            assert!((0.0..1.0).contains(&p), "loss probability {p} out of range");
        }
    }

    /// Mean loss probability of the population.
    pub fn mean_loss(&self) -> f64 {
        self.classes.iter().map(|(f, p)| f * p).sum()
    }
}

/// Expected number of transmissions until one encryption reaches all
/// of an audience of `r` members drawn from `mix` (equation (14)).
///
/// Returns 0 for an empty audience.
pub fn expected_transmissions(r: f64, mix: &LossMix) -> f64 {
    if r <= 0.0 {
        return 0.0;
    }
    let mut total = 0.0;
    for m in 1..100_000u32 {
        // P[all r receivers got it within m-1 transmissions].
        let mut all_received = 1.0f64;
        for &(f, p) in &mix.classes {
            if f <= 0.0 {
                continue;
            }
            let p_pow = p.powi(m as i32 - 1); // p^{m-1}; 0^0 = 1
            all_received *= (1.0 - p_pow).powf(f * r);
        }
        let term = 1.0 - all_received;
        total += term;
        if term < 1e-12 {
            break;
        }
    }
    total
}

/// Expected WKA-BKR bandwidth (in encrypted-key transmissions) for one
/// rekey of a tree with `n` members, `l` batched revocations, degree
/// `d`, and audience loss profile `mix` (equation (15), exact shape).
pub fn ev_wka(n: u64, l: f64, d: u32, mix: &LossMix) -> f64 {
    if n < 2 || l <= 0.0 {
        return 0.0;
    }
    mix.validate();
    let l = l.min(n as f64);
    let mut cost_memo: HashMap<u64, f64> = HashMap::new();
    let mut em_memo: HashMap<u64, f64> = HashMap::new();
    subtree_ev(n, n as f64, l, d as u64, mix, &mut cost_memo, &mut em_memo)
}

#[allow(clippy::too_many_arguments)]
fn subtree_ev(
    s: u64,
    n: f64,
    l: f64,
    d: u64,
    mix: &LossMix,
    cost_memo: &mut HashMap<u64, f64>,
    em_memo: &mut HashMap<u64, f64>,
) -> f64 {
    if s < 2 {
        return 0.0;
    }
    if let Some(&c) = cost_memo.get(&s) {
        return c;
    }
    let children = child_sizes(s, d);
    let p_upd = p_update(n, s as f64, l);
    let own: f64 = children
        .iter()
        .map(|&c| {
            let em = *em_memo
                .entry(c)
                .or_insert_with(|| expected_transmissions(c as f64, mix));
            p_upd * em
        })
        .sum();
    let below: f64 = children
        .iter()
        .map(|&c| subtree_ev(c, n, l, d, mix, cost_memo, em_memo))
        .sum();
    let total = own + below;
    cost_memo.insert(s, total);
    total
}

/// One tree of a key forest: member count and loss profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ForestTree {
    /// Members in this tree.
    pub size: u64,
    /// Their loss profile.
    pub mix: LossMix,
}

/// Expected WKA-BKR bandwidth for a *forest* of key trees under a
/// shared group DEK — the structure of the loss-homogenized scheme
/// (§4.2) and of the two-random-keytree strawman.
///
/// `total_l` departures are split across trees proportionally to their
/// sizes (as in §4.3). When more than one tree is non-empty, the
/// refreshed group DEK additionally costs one encryption per tree root
/// (each retransmitted per that tree's loss profile); with a single
/// non-empty tree the DEK *is* that tree's root and costs nothing
/// extra, so the scheme degenerates to the one-keytree scheme exactly
/// as the paper observes.
pub fn ev_forest(trees: &[ForestTree], total_l: f64, d: u32) -> f64 {
    let total_n: u64 = trees.iter().map(|t| t.size).sum();
    if total_n == 0 || total_l <= 0.0 {
        return 0.0;
    }
    let occupied: Vec<&ForestTree> = trees.iter().filter(|t| t.size > 0).collect();
    let mut cost = 0.0;
    for tree in &occupied {
        let l_i = total_l * tree.size as f64 / total_n as f64;
        cost += ev_wka(tree.size, l_i, d, &tree.mix);
    }
    if occupied.len() > 1 {
        for tree in &occupied {
            cost += expected_transmissions(tree.size as f64, &tree.mix);
        }
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_receiver_geometric() {
        // E[M] for one receiver with loss p is 1/(1-p).
        let mix = LossMix::homogeneous(0.2);
        let e = expected_transmissions(1.0, &mix);
        assert!((e - 1.25).abs() < 1e-9, "got {e}");
    }

    #[test]
    fn lossless_audience_needs_one_transmission() {
        let mix = LossMix::homogeneous(0.0);
        assert!((expected_transmissions(1000.0, &mix) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transmissions_grow_with_audience_and_loss() {
        let mix = LossMix::homogeneous(0.1);
        let small = expected_transmissions(4.0, &mix);
        let large = expected_transmissions(4096.0, &mix);
        assert!(large > small && small > 1.0);

        let lossy = LossMix::homogeneous(0.3);
        assert!(expected_transmissions(4.0, &lossy) > small);
    }

    #[test]
    fn mixture_between_pure_classes() {
        let r = 64.0;
        let low = expected_transmissions(r, &LossMix::homogeneous(0.02));
        let high = expected_transmissions(r, &LossMix::homogeneous(0.2));
        let mid = expected_transmissions(r, &LossMix::two_point(0.5, 0.2, 0.02));
        assert!(low < mid && mid < high, "{low} {mid} {high}");
    }

    #[test]
    fn ev_reduces_to_ne_when_lossless() {
        // With zero loss every encryption is sent once: E[V] = Ne.
        let mix = LossMix::homogeneous(0.0);
        let ev = ev_wka(4096, 64.0, 4, &mix);
        let ne = crate::appendix_a::ne(4096, 64.0, 4);
        assert!((ev - ne).abs() < 1e-6, "{ev} vs {ne}");
    }

    #[test]
    fn ev_monotone_in_loss() {
        let lo = ev_wka(65536, 256.0, 4, &LossMix::homogeneous(0.02));
        let hi = ev_wka(65536, 256.0, 4, &LossMix::homogeneous(0.2));
        assert!(hi > lo * 1.2, "{hi} vs {lo}");
    }

    #[test]
    fn paper_fig6_magnitude() {
        // Fig. 6's y-axis spans ~5000–10000 keys for N=65536, L=256.
        let low = ev_wka(65536, 256.0, 4, &LossMix::homogeneous(0.02));
        let high = ev_wka(65536, 256.0, 4, &LossMix::homogeneous(0.2));
        assert!((4_000.0..7_500.0).contains(&low), "low end {low}");
        assert!((7_000.0..12_000.0).contains(&high), "high end {high}");
    }

    #[test]
    fn forest_with_single_tree_equals_one_keytree() {
        let mix = LossMix::homogeneous(0.02);
        let forest = vec![
            ForestTree {
                size: 65536,
                mix: mix.clone(),
            },
            ForestTree {
                size: 0,
                mix: LossMix::homogeneous(0.2),
            },
        ];
        let f = ev_forest(&forest, 256.0, 4);
        let single = ev_wka(65536, 256.0, 4, &mix);
        assert!((f - single).abs() < 1e-9);
    }

    #[test]
    fn loss_homogenized_beats_one_keytree_at_moderate_alpha() {
        // The paper's headline: up to 12.1% at α = 0.3.
        let (alpha, ph, pl) = (0.3, 0.2, 0.02);
        let n = 65536u64;
        let one = ev_wka(n, 256.0, 4, &LossMix::two_point(alpha, ph, pl));
        let nh = (alpha * n as f64).round() as u64;
        let forest = vec![
            ForestTree {
                size: n - nh,
                mix: LossMix::homogeneous(pl),
            },
            ForestTree {
                size: nh,
                mix: LossMix::homogeneous(ph),
            },
        ];
        let homog = ev_forest(&forest, 256.0, 4);
        let gain = 1.0 - homog / one;
        assert!(
            (0.05..0.20).contains(&gain),
            "loss-homogenized gain {gain:.3} vs paper's 12.1%"
        );
    }

    #[test]
    #[should_panic(expected = "fractions sum")]
    fn invalid_mix_rejected() {
        let mix = LossMix {
            classes: vec![(0.5, 0.1)],
        };
        ev_wka(64, 4.0, 4, &mix);
    }
}
