//! The two-partition steady-state model of §3.3.1 (Figs. 2–5).
//!
//! Group members belong to two classes with exponentially distributed
//! membership durations: class `Cs` with small mean `Ms` and class
//! `Cl` with large mean `Ml`; a fraction `α` of joins are short-lived
//! (the \[AA97\] MBone observation). The key server rekeys every `Tp`
//! seconds and migrates members older than the S-period `Ts = K·Tp`
//! from the S-partition to the L-partition.
//!
//! [`PartitionParams::steady_state`] solves the open queueing system
//! of Fig. 2 (equations (1)–(7)); the `cost_*` methods evaluate the
//! per-interval rekeying cost of each scheme (equations (8)–(10)).

use crate::appendix_a::ne;
use serde::{Deserialize, Serialize};

/// Parameters of the two-partition evaluation (Table 1 defaults via
/// [`PartitionParams::paper_default`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionParams {
    /// Group size `N`.
    pub group_size: u64,
    /// Key tree degree `d`.
    pub degree: u32,
    /// Rekey period `Tp` in seconds.
    pub rekey_period: f64,
    /// S-period in rekey intervals: `K = Ts / Tp`.
    pub k: u32,
    /// Mean short membership duration `Ms` in seconds.
    pub mean_short: f64,
    /// Mean long membership duration `Ml` in seconds.
    pub mean_long: f64,
    /// Fraction `α` of joins that are short-lived (class `Cs`).
    pub alpha: f64,
}

impl PartitionParams {
    /// The paper's Table 1 defaults: `Tp = 60 s`, `N = 65536`, `d = 4`,
    /// `K = 10`, `Ms = 3 min`, `Ml = 3 h`, `α = 0.8`.
    pub fn paper_default() -> Self {
        PartitionParams {
            group_size: 65536,
            degree: 4,
            rekey_period: 60.0,
            k: 10,
            mean_short: 3.0 * 60.0,
            mean_long: 3.0 * 3600.0,
            alpha: 0.8,
        }
    }

    /// Validates parameter ranges.
    ///
    /// # Panics
    ///
    /// Panics on non-positive durations, `degree < 2`, or `alpha`
    /// outside `[0, 1]`.
    pub fn validate(&self) {
        assert!(self.group_size >= 2, "group too small");
        assert!(self.degree >= 2, "degree must be >= 2");
        assert!(self.rekey_period > 0.0, "rekey period must be positive");
        assert!(
            self.mean_short > 0.0 && self.mean_long > 0.0,
            "mean durations must be positive"
        );
        assert!((0.0..=1.0).contains(&self.alpha), "alpha must be in [0, 1]");
    }

    /// `Pr(t, M)`: probability an exponential member with mean `m`
    /// departs within `t` seconds (equation 2).
    fn pr(t: f64, m: f64) -> f64 {
        1.0 - (-t / m).exp()
    }

    /// Solves the steady-state queueing system (equations (1)–(7)).
    pub fn steady_state(&self) -> SteadyState {
        self.validate();
        let n = self.group_size as f64;
        let tp = self.rekey_period;
        let (ms, ml, alpha) = (self.mean_short, self.mean_long, self.alpha);
        let ts = self.k as f64 * tp;

        // N = Ncs + Ncl with Lcs = α·J = Ncs·Pr(Tp, Ms), etc.
        let denom = alpha / Self::pr(tp, ms) + (1.0 - alpha) / Self::pr(tp, ml);
        let j = n / denom;
        let n_cs = alpha * j / Self::pr(tp, ms);
        let n_cl = (1.0 - alpha) * j / Self::pr(tp, ml);

        // S-partition population: cohorts aged 0..K-1 intervals (6).
        let mut n_s = 0.0;
        for i in 0..self.k {
            let age = i as f64 * tp;
            n_s += j * (alpha * (-age / ms).exp() + (1.0 - alpha) * (-age / ml).exp());
        }
        let n_l = (n - n_s).max(0.0);

        // Migration: survivors of the full S-period (7).
        let l_m = j * (alpha * (-ts / ms).exp() + (1.0 - alpha) * (-ts / ml).exp());
        let l_s = (j - l_m).max(0.0);
        let l_l = l_m; // steady state
        let l_cs = alpha * j;
        let l_cl = (1.0 - alpha) * j;

        SteadyState {
            joins_per_period: j,
            n_cs,
            n_cl,
            n_s,
            n_l,
            l_m,
            l_s,
            l_l,
            l_cs,
            l_cl,
        }
    }

    /// Rekey cost per interval for the unoptimized one-keytree scheme:
    /// `Ne(N, J)`.
    pub fn cost_one_keytree(&self) -> f64 {
        let ss = self.steady_state();
        ne(self.group_size, ss.joins_per_period, self.degree)
    }

    /// Rekey cost per interval for the QT-scheme (equation 8):
    /// `Ns + Ne(Nl, Ll)` — the queue costs one encryption per resident
    /// member, the L-tree is a normal batched LKH tree.
    pub fn cost_qt(&self) -> f64 {
        let ss = self.steady_state();
        ss.n_s + ne(ss.n_l.round() as u64, ss.l_l, self.degree)
    }

    /// Rekey cost per interval for the TT-scheme (equation 9):
    /// `Ne(Ns, J) + Ne(Nl, Ll)`.
    pub fn cost_tt(&self) -> f64 {
        let ss = self.steady_state();
        ne(ss.n_s.round() as u64, ss.joins_per_period, self.degree)
            + ne(ss.n_l.round() as u64, ss.l_l, self.degree)
    }

    /// Rekey cost per interval for the oracle PT-scheme (equation 10):
    /// `Ne(Ncs, Lcs) + Ne(Ncl, Lcl)`.
    pub fn cost_pt(&self) -> f64 {
        let ss = self.steady_state();
        ne(ss.n_cs.round() as u64, ss.l_cs, self.degree)
            + ne(ss.n_cl.round() as u64, ss.l_cl, self.degree)
    }

    /// All four scheme costs at once.
    pub fn costs(&self) -> SchemeCosts {
        SchemeCosts {
            one_keytree: self.cost_one_keytree(),
            qt: self.cost_qt(),
            tt: self.cost_tt(),
            pt: self.cost_pt(),
        }
    }
}

/// Solution of the steady-state queueing system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SteadyState {
    /// Join (and departure) rate per rekey interval, `J`.
    pub joins_per_period: f64,
    /// Class-`Cs` population `Ncs`.
    pub n_cs: f64,
    /// Class-`Cl` population `Ncl`.
    pub n_cl: f64,
    /// S-partition population `Ns`.
    pub n_s: f64,
    /// L-partition population `Nl`.
    pub n_l: f64,
    /// Members migrated S→L per interval, `Lm`.
    pub l_m: f64,
    /// Departures from the S-partition per interval, `Ls`.
    pub l_s: f64,
    /// Departures from the L-partition per interval, `Ll`.
    pub l_l: f64,
    /// Class-`Cs` departures per interval, `Lcs`.
    pub l_cs: f64,
    /// Class-`Cl` departures per interval, `Lcl`.
    pub l_cl: f64,
}

/// Per-interval rekey cost of each scheme, in encrypted keys.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchemeCosts {
    /// The unoptimized single balanced key tree.
    pub one_keytree: f64,
    /// Queue S-partition + tree L-partition.
    pub qt: f64,
    /// Tree S-partition + tree L-partition.
    pub tt: f64,
    /// Oracle placement by class (upper bound).
    pub pt: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_state_balances_flows() {
        let p = PartitionParams::paper_default();
        let ss = p.steady_state();
        // Population conservation (1).
        assert!((ss.n_cs + ss.n_cl - p.group_size as f64).abs() < 1e-6);
        // Joins split by class (4)-(5).
        assert!((ss.l_cs + ss.l_cl - ss.joins_per_period).abs() < 1e-6);
        // S-partition flow: in = J, out = Ls + Lm.
        assert!((ss.l_s + ss.l_m - ss.joins_per_period).abs() < 1e-6);
        // Partition populations sum to N.
        assert!((ss.n_s + ss.n_l - p.group_size as f64).abs() < 1e-6);
    }

    #[test]
    fn paper_default_join_rate() {
        // J = N / (α/Pr(Tp,Ms) + (1-α)/Pr(Tp,Ml)) ≈ 1684 under
        // Table 1 defaults.
        let ss = PartitionParams::paper_default().steady_state();
        assert!(
            (1600.0..1800.0).contains(&ss.joins_per_period),
            "J = {}",
            ss.joins_per_period
        );
    }

    #[test]
    fn k_zero_falls_back_to_one_keytree() {
        // §3.4: the one-keytree scheme is the special case Ts = 0.
        let mut p = PartitionParams::paper_default();
        p.k = 0;
        let costs = p.costs();
        assert!((costs.qt - costs.one_keytree).abs() / costs.one_keytree < 1e-6);
        assert!((costs.tt - costs.one_keytree).abs() / costs.one_keytree < 1e-6);
    }

    #[test]
    fn tt_beats_one_keytree_at_default() {
        // Fig. 3 at K = 10: TT ≈ 25% below one-keytree.
        let p = PartitionParams::paper_default();
        let costs = p.costs();
        let gain = 1.0 - costs.tt / costs.one_keytree;
        assert!(
            (0.15..0.35).contains(&gain),
            "TT gain {gain:.3} out of the paper's range"
        );
    }

    #[test]
    fn pt_is_best_everywhere() {
        // Fig. 3/4: PT has no migration overhead and always wins.
        for k in [1u32, 5, 10, 20] {
            for alpha in [0.2, 0.5, 0.8] {
                let p = PartitionParams {
                    k,
                    alpha,
                    ..PartitionParams::paper_default()
                };
                let costs = p.costs();
                assert!(costs.pt <= costs.tt + 1.0, "k={k} α={alpha}");
                assert!(costs.pt <= costs.qt + 1.0, "k={k} α={alpha}");
                assert!(costs.pt <= costs.one_keytree + 1.0, "k={k} α={alpha}");
            }
        }
    }

    #[test]
    fn one_keytree_wins_for_stable_groups() {
        // Fig. 4: for α ≤ 0.4 the one-keytree scheme is preferable.
        let p = PartitionParams {
            alpha: 0.2,
            ..PartitionParams::paper_default()
        };
        let costs = p.costs();
        assert!(costs.one_keytree < costs.tt);
        assert!(costs.one_keytree < costs.qt);
    }

    #[test]
    fn peak_improvement_matches_headline() {
        // The abstract's headline: up to 31.4% reduction (at α = 0.9,
        // K = 10). Allow a modest band around it.
        let p = PartitionParams {
            alpha: 0.9,
            ..PartitionParams::paper_default()
        };
        let costs = p.costs();
        let best = costs.tt.min(costs.qt);
        let gain = 1.0 - best / costs.one_keytree;
        assert!(
            (0.25..0.40).contains(&gain),
            "peak gain {gain:.3} vs paper's 31.4%"
        );
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_rejected() {
        let p = PartitionParams {
            alpha: 1.5,
            ..PartitionParams::paper_default()
        };
        p.steady_state();
    }
}
