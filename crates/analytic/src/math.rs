//! Special functions used by the analytic models.
//!
//! Implemented from scratch (no external math crates): Lanczos
//! log-gamma, log-binomial coefficients with real arguments, and exact
//! binomial distributions for the FEC model.

/// Lanczos approximation coefficients (g = 7, n = 9).
const LANCZOS_G: f64 = 7.0;
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_1,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
///
/// Accurate to ~1e-13 relative error over the range used by the
/// models (arguments up to ~1e6).
///
/// # Panics
///
/// Panics if `x <= 0` (the models never need the reflection branch).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)` with real-valued `n >= k >= 0`.
///
/// Returns negative infinity when the coefficient is zero
/// (`k > n` or negative arguments).
pub fn ln_choose(n: f64, k: f64) -> f64 {
    if k < 0.0 || k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0.0 || k == n {
        return 0.0;
    }
    ln_gamma(n + 1.0) - ln_gamma(k + 1.0) - ln_gamma(n - k + 1.0)
}

/// Probability that a key node covering `s` of `n` members is updated
/// when `l` members are revoked uniformly at random — equation (11):
/// `1 - C(n - s, l) / C(n, l)`, generalized to real `l`.
pub fn p_update(n: f64, s: f64, l: f64) -> f64 {
    if l <= 0.0 || s <= 0.0 {
        return 0.0;
    }
    if n - s < l {
        return 1.0;
    }
    let log_ratio = ln_choose(n - s, l) - ln_choose(n, l);
    (1.0 - log_ratio.exp()).clamp(0.0, 1.0)
}

/// Exact binomial probability mass function `P[X = k]`,
/// `X ~ Binomial(n, p)`.
pub fn binomial_pmf(n: u32, k: u32, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    if p <= 0.0 {
        return if k == 0 { 1.0 } else { 0.0 };
    }
    if p >= 1.0 {
        return if k == n { 1.0 } else { 0.0 };
    }
    let ln =
        ln_choose(n as f64, k as f64) + (k as f64) * p.ln() + ((n - k) as f64) * (1.0 - p).ln();
    ln.exp()
}

/// The full binomial pmf vector `[P[X=0], …, P[X=n]]`.
pub fn binomial_distribution(n: u32, p: f64) -> Vec<f64> {
    (0..=n).map(|k| binomial_pmf(n, k, p)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= (n - 1) as f64;
            }
            assert!(
                close(ln_gamma(n as f64), fact.ln(), 1e-12),
                "ln_gamma({n}) = {} vs {}",
                ln_gamma(n as f64),
                fact.ln()
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π).
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    fn ln_gamma_large_argument() {
        // Stirling cross-check at x = 1e6.
        let x = 1e6f64;
        let stirling =
            (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln() + 1.0 / (12.0 * x);
        assert!(close(ln_gamma(x), stirling, 1e-10));
    }

    #[test]
    fn ln_choose_small_cases() {
        assert!(close(ln_choose(5.0, 2.0), 10f64.ln(), 1e-12));
        assert!(close(ln_choose(10.0, 5.0), 252f64.ln(), 1e-12));
        assert_eq!(ln_choose(3.0, 4.0), f64::NEG_INFINITY);
        assert_eq!(ln_choose(3.0, 0.0), 0.0);
    }

    #[test]
    fn p_update_matches_direct_product() {
        // Compare against the direct product form for integer l.
        let (n, s, l) = (65536.0, 256.0, 100.0);
        let mut ratio = 1.0f64;
        for j in 0..100 {
            ratio *= (n - s - j as f64) / (n - j as f64);
        }
        assert!(close(p_update(n, s, l), 1.0 - ratio, 1e-9));
    }

    #[test]
    fn p_update_boundaries() {
        assert_eq!(p_update(100.0, 10.0, 0.0), 0.0);
        assert_eq!(p_update(100.0, 100.0, 1.0), 1.0); // covers everyone
        assert!(p_update(100.0, 1.0, 100.0) > 0.999);
        // Monotone in s.
        assert!(p_update(1000.0, 50.0, 10.0) > p_update(1000.0, 5.0, 10.0));
        // Monotone in l.
        assert!(p_update(1000.0, 50.0, 20.0) > p_update(1000.0, 50.0, 10.0));
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &(n, p) in &[(10u32, 0.2f64), (50, 0.02), (64, 0.5)] {
            let sum: f64 = binomial_distribution(n, p).iter().sum();
            assert!(close(sum, 1.0, 1e-10), "n={n} p={p} sum={sum}");
        }
    }

    #[test]
    fn binomial_pmf_known_value() {
        // P[X=2], X ~ B(4, 0.5) = 6/16.
        assert!(close(binomial_pmf(4, 2, 0.5), 0.375, 1e-12));
    }

    #[test]
    fn binomial_degenerate_p() {
        assert_eq!(binomial_pmf(5, 0, 0.0), 1.0);
        assert_eq!(binomial_pmf(5, 5, 1.0), 1.0);
        assert_eq!(binomial_pmf(5, 3, 0.0), 0.0);
    }
}
