//! SIMD-vs-scalar equivalence harness.
//!
//! Every SIMD backend must be byte-identical to the scalar reference
//! for all inputs — the dispatch tier is a pure throughput choice and
//! must never be observable in output. These properties sweep every
//! backend the host supports against scalar over adversarial shapes:
//! unaligned buffers (random offset into an overallocated buffer),
//! lengths straddling every lane boundary (0..=4×lane+3 for the widest
//! 8-block AVX2 ChaCha20 lane of 512 bytes), and counters near wrap.
//!
//! Also covers the `REKEY_SIMD` override surface: `Backend::resolve`
//! is pure, so the env-var → backend mapping and the fallback chain
//! (request above what the CPU supports degrades to the best available
//! tier, never to an illegal one) are tested exhaustively here without
//! spawning processes.

use proptest::prelude::*;
use rekey_crypto::simd::{self, Backend, CpuFeatures};
use rekey_crypto::{chacha20, sha256};

/// Backends the current host can actually run (scalar always; SIMD
/// tiers only when the CPU advertises them).
fn supported_backends() -> Vec<Backend> {
    let feats = simd::detect();
    let mut v = vec![Backend::Scalar];
    if feats.sse2 {
        v.push(Backend::Sse2);
    }
    if feats.avx2 {
        v.push(Backend::Avx2);
    }
    v
}

/// Widest ChaCha20 lane: 8 blocks × 64 bytes (AVX2 path).
const MAX_LANE: usize = 512;

proptest! {
    /// ChaCha20 keystream XOR is byte-identical across backends for
    /// arbitrary (possibly unaligned) buffers, lengths covering every
    /// partial-lane tail, and counters near the u32 wrap.
    #[test]
    fn chacha20_backends_agree(key in any::<[u8; 32]>(),
                               nonce in any::<[u8; 12]>(),
                               raw_counter in any::<u32>(),
                               near_wrap in any::<bool>(),
                               len in 0usize..4 * MAX_LANE + 4,
                               offset in 0usize..32,
                               seed in any::<u64>()) {
        // Bias some cases to the 32-bit counter wrap, where the
        // per-lane counter vectors must wrap exactly like scalar.
        let counter = if near_wrap { u32::MAX - 3 } else { raw_counter };
        // Fill deterministically from the seed; an offset into an
        // overallocated buffer exercises unaligned loads/stores.
        let mut backing = vec![0u8; offset + len];
        let mut s = seed;
        for b in backing.iter_mut() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *b = (s >> 56) as u8;
        }
        let mut reference = backing.clone();
        chacha20::xor_in_place_with(
            Backend::Scalar, &key, &nonce, counter, &mut reference[offset..]);
        for backend in supported_backends() {
            let mut buf = backing.clone();
            chacha20::xor_in_place_with(backend, &key, &nonce, counter, &mut buf[offset..]);
            prop_assert_eq!(&buf, &reference, "backend {} diverged", backend);
        }
    }

    /// SHA-256 digests are identical across backends for arbitrary
    /// lengths including every padding boundary (55/56/64).
    #[test]
    fn sha256_backends_agree(data in proptest::collection::vec(any::<u8>(), 0..4 * 64 + 4)) {
        let reference = sha256::digest_with(Backend::Scalar, &data);
        for backend in supported_backends() {
            prop_assert_eq!(
                sha256::digest_with(backend, &data), reference,
                "backend {} diverged", backend);
        }
    }

    /// `Backend::resolve` degrades cleanly: the resolved backend never
    /// exceeds what the CPU supports nor what the request caps it to,
    /// and with full features an explicit request is honored exactly.
    #[test]
    fn resolve_never_exceeds_features(sse2 in any::<bool>(),
                                      ssse3 in any::<bool>(),
                                      avx2 in any::<bool>(),
                                      req_idx in 0usize..7) {
        // Covers every recognized `REKEY_SIMD` value plus garbage.
        let request = [
            None,
            Some("auto"),
            Some("off"),
            Some("scalar"),
            Some("sse2"),
            Some("avx2"),
            Some("no-such-backend"),
        ][req_idx];
        let feats = CpuFeatures { sse2, ssse3, avx2 };
        let best = if avx2 {
            Backend::Avx2
        } else if sse2 {
            Backend::Sse2
        } else {
            Backend::Scalar
        };
        let resolved = Backend::resolve(request, feats);
        prop_assert!(resolved <= best,
                     "resolved {} above supported {}", resolved, best);
        match request {
            Some("off") | Some("scalar") => prop_assert_eq!(resolved, Backend::Scalar),
            Some("sse2") => prop_assert_eq!(resolved, Backend::Sse2.min(best)),
            Some("avx2") => prop_assert_eq!(resolved, Backend::Avx2.min(best)),
            // auto / unset / unrecognized: best supported tier.
            _ => prop_assert_eq!(resolved, best),
        }
    }
}

/// The process-wide selection honors `simd::force` and the forced
/// backend produces output identical to scalar through the implicit
/// (`active()`-dispatched) entry points.
#[test]
fn forced_backend_is_transparent_through_active_dispatch() {
    let original = simd::active();
    let key = [0x42u8; 32];
    let nonce = [7u8; 12];
    let data: Vec<u8> = (0..MAX_LANE + 17).map(|i| i as u8).collect();

    let mut reference = data.clone();
    chacha20::xor_in_place_with(Backend::Scalar, &key, &nonce, 1, &mut reference);
    let ref_digest = sha256::digest_with(Backend::Scalar, &data);

    for backend in supported_backends() {
        simd::force(backend);
        assert_eq!(simd::active(), backend);
        let mut buf = data.clone();
        chacha20::xor_in_place(&key, &nonce, 1, &mut buf);
        assert_eq!(
            buf, reference,
            "active-dispatch chacha20 diverged on {backend}"
        );
        assert_eq!(
            sha256::digest(&data),
            ref_digest,
            "active-dispatch sha256 diverged on {backend}"
        );
    }
    simd::force(original);
}
