//! Property-based tests for the cryptographic primitives.

use proptest::prelude::*;
use rekey_crypto::{chacha20, hkdf, hmac, keywrap, sha256, Key};

proptest! {
    /// Incremental hashing over arbitrary chunk splits matches the
    /// one-shot digest.
    #[test]
    fn sha256_incremental_equals_oneshot(data in proptest::collection::vec(any::<u8>(), 0..2048),
                                         split in 0usize..2048) {
        let split = split.min(data.len());
        let mut h = sha256::Sha256::new();
        h.update(&data[..split]);
        h.update(&data[split..]);
        prop_assert_eq!(h.finalize(), sha256::digest(&data));
    }

    /// SHA-256 output differs whenever a single byte is flipped
    /// (collision would be astronomically unlikely; this catches
    /// state-handling bugs such as ignored tail bytes).
    #[test]
    fn sha256_sensitive_to_flips(mut data in proptest::collection::vec(any::<u8>(), 1..512),
                                 idx in any::<prop::sample::Index>()) {
        let original = sha256::digest(&data);
        let i = idx.index(data.len());
        data[i] ^= 0xFF;
        prop_assert_ne!(sha256::digest(&data), original);
    }

    /// HMAC differs under different keys.
    #[test]
    fn hmac_key_separation(key1 in proptest::collection::vec(any::<u8>(), 1..80),
                           key2 in proptest::collection::vec(any::<u8>(), 1..80),
                           msg in proptest::collection::vec(any::<u8>(), 0..256)) {
        prop_assume!(key1 != key2);
        prop_assert_ne!(hmac::hmac(&key1, &msg), hmac::hmac(&key2, &msg));
    }

    /// ChaCha20 is an involution under XOR.
    #[test]
    fn chacha20_roundtrip(key in any::<[u8; 32]>(),
                          nonce in any::<[u8; 12]>(),
                          counter in any::<u32>(),
                          data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let mut buf = data.clone();
        chacha20::xor_in_place(&key, &nonce, counter, &mut buf);
        chacha20::xor_in_place(&key, &nonce, counter, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// HKDF expansion is deterministic and prefix-consistent.
    #[test]
    fn hkdf_prefix_consistency(salt in proptest::collection::vec(any::<u8>(), 0..64),
                               ikm in proptest::collection::vec(any::<u8>(), 1..64),
                               info in proptest::collection::vec(any::<u8>(), 0..64),
                               short_len in 1usize..64,
                               long_len in 64usize..256) {
        let mut long = vec![0u8; long_len];
        let mut short = vec![0u8; short_len];
        hkdf::derive(&salt, &ikm, &info, &mut long);
        hkdf::derive(&salt, &ikm, &info, &mut short);
        prop_assert_eq!(&long[..short_len], &short[..]);
    }

    /// Key wrap always roundtrips under the correct KEK and never
    /// under a different KEK.
    #[test]
    fn keywrap_roundtrip_and_auth(kek_bytes in any::<[u8; 32]>(),
                                  other_bytes in any::<[u8; 32]>(),
                                  payload_bytes in any::<[u8; 32]>(),
                                  nonce in any::<[u8; 12]>()) {
        prop_assume!(kek_bytes != other_bytes);
        let kek = Key::from_bytes(kek_bytes);
        let other = Key::from_bytes(other_bytes);
        let payload = Key::from_bytes(payload_bytes);
        let wrapped = keywrap::wrap_with_nonce(&kek, &payload, nonce);
        prop_assert_eq!(keywrap::unwrap(&kek, &wrapped).unwrap(), payload);
        prop_assert!(keywrap::unwrap(&other, &wrapped).is_err());
    }

    /// Serialized wrapped keys survive a parse roundtrip.
    #[test]
    fn keywrap_wire_roundtrip(kek in any::<[u8; 32]>(),
                              payload in any::<[u8; 32]>(),
                              nonce in any::<[u8; 12]>()) {
        let wrapped = keywrap::wrap_with_nonce(
            &Key::from_bytes(kek), &Key::from_bytes(payload), nonce);
        let parsed = keywrap::WrappedKey::from_bytes(&wrapped.to_bytes()).unwrap();
        prop_assert_eq!(parsed, wrapped);
    }
}
