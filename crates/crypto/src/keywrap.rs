//! Authenticated key wrapping: encrypt one [`Key`] under another.
//!
//! This is the operation a key server performs for every entry of a
//! rekey message: "new key `K_a` encrypted with key `K_b`"
//! (`{K_a}_{K_b}` in the paper's notation). The construction is
//! encrypt-then-MAC:
//!
//! 1. derive independent sub-keys `kek_enc = KEK.derive("wrap-enc")`
//!    and `kek_mac = KEK.derive("wrap-mac")`,
//! 2. encrypt the 32-byte payload key with ChaCha20 under `kek_enc`
//!    and a fresh random 96-bit nonce,
//! 3. tag `nonce || ciphertext` with HMAC-SHA256 under `kek_mac`,
//!    truncated to 128 bits.
//!
//! The wire size of one wrapped key is [`WRAPPED_LEN`] = 60 bytes;
//! the transport crate uses this to convert "number of encrypted keys"
//! (the paper's cost metric) into bytes.
//!
//! # Batching
//!
//! Step 1 (sub-key derivation, two HKDF expands) and the HMAC key
//! schedule are pure functions of the KEK alone, yet a rekey batch
//! wraps many entries under the *same* KEK — every entry of a node's
//! sibling set, and every entry along a joining member's path. A
//! [`WrapKek`] performs that setup once; `wrap`/`unwrap` through it
//! cost only the per-entry cipher + MAC work. The output is a pure
//! function of (KEK, payload, nonce), so wrapping through a cached
//! [`WrapKek`] is byte-identical to the one-shot free functions.

use crate::chacha20;
use crate::hmac::HmacKey;
use crate::{ct_eq, CryptoError, Key};
use rand::RngCore;

/// Nonce length in bytes.
pub const NONCE_LEN: usize = 12;

/// Truncated MAC tag length in bytes.
pub const TAG_LEN: usize = 16;

/// Total serialized size of a [`WrappedKey`]: nonce + 32-byte
/// ciphertext + tag.
pub const WRAPPED_LEN: usize = NONCE_LEN + 32 + TAG_LEN;

/// A key encrypted under a key-encryption key (KEK).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrappedKey {
    nonce: [u8; NONCE_LEN],
    ciphertext: [u8; 32],
    tag: [u8; TAG_LEN],
}

impl WrappedKey {
    /// Serializes to the 60-byte wire format.
    pub fn to_bytes(&self) -> [u8; WRAPPED_LEN] {
        let mut out = [0u8; WRAPPED_LEN];
        out[..NONCE_LEN].copy_from_slice(&self.nonce);
        out[NONCE_LEN..NONCE_LEN + 32].copy_from_slice(&self.ciphertext);
        out[NONCE_LEN + 32..].copy_from_slice(&self.tag);
        out
    }

    /// Parses the 60-byte wire format.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::Malformed`] if `bytes` is not exactly
    /// [`WRAPPED_LEN`] bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CryptoError> {
        if bytes.len() != WRAPPED_LEN {
            return Err(CryptoError::Malformed);
        }
        let mut nonce = [0u8; NONCE_LEN];
        let mut ciphertext = [0u8; 32];
        let mut tag = [0u8; TAG_LEN];
        nonce.copy_from_slice(&bytes[..NONCE_LEN]);
        ciphertext.copy_from_slice(&bytes[NONCE_LEN..NONCE_LEN + 32]);
        tag.copy_from_slice(&bytes[NONCE_LEN + 32..]);
        Ok(WrappedKey {
            nonce,
            ciphertext,
            tag,
        })
    }
}

/// A key-encryption key with its wrap setup done: derived encryption
/// sub-key plus a scheduled HMAC key.
///
/// Construction costs two HKDF expands and the HMAC pad compressions;
/// each subsequent [`wrap`](WrapKek::wrap) / [`unwrap`](WrapKek::unwrap)
/// skips all of it. The key server's batch scratch caches one of these
/// per (node, key version) so sibling entries share the setup.
///
/// # Example
///
/// ```
/// use rekey_crypto::{Key, keywrap, keywrap::WrapKek};
///
/// let kek = Key::from_bytes([7; 32]);
/// let payload = Key::from_bytes([8; 32]);
/// let cached = WrapKek::new(&kek);
/// let a = cached.wrap_with_nonce(&payload, [9; 12]);
/// let b = keywrap::wrap_with_nonce(&kek, &payload, [9; 12]);
/// assert_eq!(a, b);
/// ```
#[derive(Clone)]
pub struct WrapKek {
    enc_key: [u8; 32],
    mac: HmacKey,
}

impl std::fmt::Debug for WrapKek {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WrapKek").finish_non_exhaustive()
    }
}

impl WrapKek {
    /// Derives the wrap sub-keys from `kek` and schedules the MAC key.
    pub fn new(kek: &Key) -> Self {
        WrapKek {
            enc_key: *kek.derive(b"wrap-enc").as_bytes(),
            mac: HmacKey::new(kek.derive(b"wrap-mac").as_bytes()),
        }
    }

    fn compute_tag(&self, nonce: &[u8; NONCE_LEN], ct: &[u8; 32]) -> [u8; TAG_LEN] {
        let mut mac = self.mac.mac();
        mac.update(nonce);
        mac.update(ct);
        let full = mac.finalize();
        let mut tag = [0u8; TAG_LEN];
        tag.copy_from_slice(&full[..TAG_LEN]);
        tag
    }

    /// Encrypts `payload` with a fresh random nonce from `rng`.
    pub fn wrap<R: RngCore>(&self, payload: &Key, rng: &mut R) -> WrappedKey {
        let mut nonce = [0u8; NONCE_LEN];
        rng.fill_bytes(&mut nonce);
        self.wrap_with_nonce(payload, nonce)
    }

    /// Encrypts `payload` with a caller-chosen nonce.
    ///
    /// Deterministic; callers must never reuse a nonce with the same
    /// KEK.
    pub fn wrap_with_nonce(&self, payload: &Key, nonce: [u8; NONCE_LEN]) -> WrappedKey {
        rekey_obs::count("crypto.keywrap.wrap", 1);
        let mut ciphertext = *payload.as_bytes();
        chacha20::xor_in_place(&self.enc_key, &nonce, 1, &mut ciphertext);
        let tag = self.compute_tag(&nonce, &ciphertext);
        WrappedKey {
            nonce,
            ciphertext,
            tag,
        }
    }

    /// Decrypts a wrapped key.
    ///
    /// # Errors
    ///
    /// Returns [`CryptoError::BadTag`] if `wrapped` was not produced
    /// under this KEK (or was corrupted in transit).
    pub fn unwrap(&self, wrapped: &WrappedKey) -> Result<Key, CryptoError> {
        rekey_obs::count("crypto.keywrap.unwrap", 1);
        let expected = self.compute_tag(&wrapped.nonce, &wrapped.ciphertext);
        if !ct_eq(&expected, &wrapped.tag) {
            return Err(CryptoError::BadTag);
        }
        let mut plaintext = wrapped.ciphertext;
        chacha20::xor_in_place(&self.enc_key, &wrapped.nonce, 1, &mut plaintext);
        Ok(Key::from_bytes(plaintext))
    }
}

/// Encrypts `payload` under `kek` with a fresh random nonce from `rng`.
pub fn wrap<R: RngCore>(kek: &Key, payload: &Key, rng: &mut R) -> WrappedKey {
    WrapKek::new(kek).wrap(payload, rng)
}

/// Encrypts `payload` under `kek` with a caller-chosen nonce.
///
/// Deterministic; used by tests and by protocol variants that derive
/// nonces from sequence numbers. Callers must never reuse a nonce with
/// the same KEK. Wrapping many keys under one KEK should go through a
/// cached [`WrapKek`] instead.
pub fn wrap_with_nonce(kek: &Key, payload: &Key, nonce: [u8; NONCE_LEN]) -> WrappedKey {
    WrapKek::new(kek).wrap_with_nonce(payload, nonce)
}

/// Decrypts a wrapped key.
///
/// # Errors
///
/// Returns [`CryptoError::BadTag`] if `wrapped` was not produced under
/// `kek` (or was corrupted in transit). This is what a group member
/// observes when it tries to decrypt a rekey entry that is not
/// addressed to any key it holds.
pub fn unwrap(kek: &Key, wrapped: &WrappedKey) -> Result<Key, CryptoError> {
    WrapKek::new(kek).unwrap(wrapped)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBEEF)
    }

    #[test]
    fn wrap_unwrap_roundtrip() {
        let mut rng = rng();
        let kek = Key::generate(&mut rng);
        let payload = Key::generate(&mut rng);
        let wrapped = wrap(&kek, &payload, &mut rng);
        assert_eq!(unwrap(&kek, &wrapped).unwrap(), payload);
    }

    #[test]
    fn wrong_kek_fails() {
        let mut rng = rng();
        let kek = Key::generate(&mut rng);
        let other = Key::generate(&mut rng);
        let payload = Key::generate(&mut rng);
        let wrapped = wrap(&kek, &payload, &mut rng);
        assert_eq!(unwrap(&other, &wrapped), Err(CryptoError::BadTag));
    }

    #[test]
    fn tampered_ciphertext_fails() {
        let mut rng = rng();
        let kek = Key::generate(&mut rng);
        let payload = Key::generate(&mut rng);
        let wrapped = wrap(&kek, &payload, &mut rng);
        let mut bytes = wrapped.to_bytes();
        bytes[NONCE_LEN] ^= 0x01;
        let tampered = WrappedKey::from_bytes(&bytes).unwrap();
        assert_eq!(unwrap(&kek, &tampered), Err(CryptoError::BadTag));
    }

    #[test]
    fn tampered_nonce_fails() {
        let mut rng = rng();
        let kek = Key::generate(&mut rng);
        let payload = Key::generate(&mut rng);
        let wrapped = wrap(&kek, &payload, &mut rng);
        let mut bytes = wrapped.to_bytes();
        bytes[0] ^= 0x80;
        let tampered = WrappedKey::from_bytes(&bytes).unwrap();
        assert_eq!(unwrap(&kek, &tampered), Err(CryptoError::BadTag));
    }

    #[test]
    fn serialization_roundtrip() {
        let mut rng = rng();
        let kek = Key::generate(&mut rng);
        let payload = Key::generate(&mut rng);
        let wrapped = wrap(&kek, &payload, &mut rng);
        let bytes = wrapped.to_bytes();
        assert_eq!(bytes.len(), WRAPPED_LEN);
        assert_eq!(WrappedKey::from_bytes(&bytes).unwrap(), wrapped);
    }

    #[test]
    fn from_bytes_rejects_bad_length() {
        assert_eq!(
            WrappedKey::from_bytes(&[0u8; WRAPPED_LEN - 1]),
            Err(CryptoError::Malformed)
        );
        assert_eq!(
            WrappedKey::from_bytes(&[0u8; WRAPPED_LEN + 1]),
            Err(CryptoError::Malformed)
        );
    }

    #[test]
    fn deterministic_with_fixed_nonce() {
        let kek = Key::from_bytes([1; 32]);
        let payload = Key::from_bytes([2; 32]);
        let a = wrap_with_nonce(&kek, &payload, [3; NONCE_LEN]);
        let b = wrap_with_nonce(&kek, &payload, [3; NONCE_LEN]);
        assert_eq!(a, b);
        assert_eq!(unwrap(&kek, &a).unwrap(), payload);
    }

    #[test]
    fn cached_kek_matches_oneshot() {
        let kek = Key::from_bytes([5; 32]);
        let payload = Key::from_bytes([6; 32]);
        let cached = WrapKek::new(&kek);
        for nonce_byte in 0..8u8 {
            let nonce = [nonce_byte; NONCE_LEN];
            let via_cache = cached.wrap_with_nonce(&payload, nonce);
            let via_oneshot = wrap_with_nonce(&kek, &payload, nonce);
            assert_eq!(via_cache, via_oneshot);
            assert_eq!(cached.unwrap(&via_oneshot).unwrap(), payload);
            assert_eq!(unwrap(&kek, &via_cache).unwrap(), payload);
        }
    }

    #[test]
    fn cached_kek_rejects_wrong_key() {
        let kek = Key::from_bytes([5; 32]);
        let payload = Key::from_bytes([6; 32]);
        let wrapped = wrap_with_nonce(&kek, &payload, [1; NONCE_LEN]);
        let other = WrapKek::new(&Key::from_bytes([9; 32]));
        assert_eq!(other.unwrap(&wrapped), Err(CryptoError::BadTag));
    }

    #[test]
    fn distinct_nonces_distinct_ciphertexts() {
        let kek = Key::from_bytes([1; 32]);
        let payload = Key::from_bytes([2; 32]);
        let a = wrap_with_nonce(&kek, &payload, [3; NONCE_LEN]);
        let b = wrap_with_nonce(&kek, &payload, [4; NONCE_LEN]);
        assert_ne!(a.to_bytes(), b.to_bytes());
    }
}
