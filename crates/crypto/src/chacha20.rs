//! The ChaCha20 stream cipher as specified in RFC 8439.
//!
//! Validated against the RFC 8439 block-function and encryption test
//! vectors. Used by [`crate::keywrap`] to encrypt key material.
//!
//! # Multi-block SIMD
//!
//! Keystream generation is embarrassingly parallel across blocks: the
//! per-block state differs only in the counter word. [`xor_in_place`]
//! therefore dispatches (via [`crate::simd`]) to lane-parallel
//! kernels — four blocks per pass on SSE2, eight on AVX2 — in which
//! every `__m128i`/`__m256i` register holds the same state word across
//! all lanes and the counter register holds `c, c+1, …`. The scalar
//! path remains the reference; the SIMD paths are pinned byte-identical
//! to it by the proptest harness in `tests/simd_equiv.rs`, so the
//! selected backend can never change an emitted byte.

use crate::simd::{self, Backend};

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;

/// ChaCha20 nonce length in bytes (the RFC 8439 96-bit nonce).
pub const NONCE_LEN: usize = 12;

const BLOCK_LEN: usize = 64;
const CONSTANTS: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

/// Assembles the 16-word initial state for block `counter`.
fn state_words(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }
    state
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block for the given key,
/// block counter, and nonce.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let state = state_words(key, counter, nonce);
    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XORs `ks` into the front of `chunk` (whichever is shorter bounds
/// the work), with 8-byte word passes.
fn xor_bytes(chunk: &mut [u8], ks: &[u8]) {
    let n = chunk.len().min(ks.len());
    let (chunk, ks) = (&mut chunk[..n], &ks[..n]);
    let mut d = chunk.chunks_exact_mut(8);
    let mut s = ks.chunks_exact(8);
    for (d8, s8) in (&mut d).zip(&mut s) {
        let word = u64::from_ne_bytes(d8.try_into().expect("chunk of 8"))
            ^ u64::from_ne_bytes(s8.try_into().expect("chunk of 8"));
        d8.copy_from_slice(&word.to_ne_bytes());
    }
    for (d1, s1) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *d1 ^= s1;
    }
}

/// Scalar reference path: one block at a time.
fn xor_scalar(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], initial_counter: u32, data: &mut [u8]) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = block(key, counter, nonce);
        xor_bytes(chunk, &ks);
        counter = counter.wrapping_add(1);
    }
}

/// Encrypts or decrypts `data` in place (XOR with the keystream
/// starting at block `initial_counter`), on the process-wide SIMD
/// backend.
///
/// ChaCha20 is its own inverse: applying this function twice with the
/// same parameters restores the original data.
pub fn xor_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    xor_in_place_with(simd::active(), key, nonce, initial_counter, data);
}

/// [`xor_in_place`] on an explicit backend.
///
/// Entry point for the SIMD equivalence tests and the per-backend
/// benches; production callers use [`xor_in_place`]. An x86 backend on
/// a non-x86 build runs the scalar path (and is counted as scalar).
pub fn xor_in_place_with(
    backend: Backend,
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    #[cfg(target_arch = "x86_64")]
    let effective = x86::xor_dispatch(backend, key, nonce, initial_counter, data);
    #[cfg(not(target_arch = "x86_64"))]
    let effective = {
        let _ = backend;
        Backend::Scalar
    };
    if effective == Backend::Scalar {
        xor_scalar(key, nonce, initial_counter, data);
    }
    let blocks = data.len().div_ceil(BLOCK_LEN) as u64;
    rekey_obs::count("crypto.chacha20_blocks", blocks);
    rekey_obs::count(
        match effective {
            Backend::Scalar => "crypto.chacha20_blocks.scalar",
            Backend::Sse2 => "crypto.chacha20_blocks.sse2",
            Backend::Avx2 => "crypto.chacha20_blocks.avx2",
        },
        blocks,
    );
}

/// Encrypts `data` and returns the ciphertext (convenience wrapper
/// around [`xor_in_place`]).
pub fn encrypt(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_in_place(key, nonce, initial_counter, &mut out);
    out
}

/// Lane-parallel x86 kernels. Every register holds one state word
/// across all lanes (blocks); only the counter register differs per
/// lane. After the rounds, a 4×4 (or 8×8) u32 transpose turns
/// "word-major" registers back into contiguous per-block keystream.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use super::{block, state_words, xor_bytes, Backend, BLOCK_LEN, KEY_LEN, NONCE_LEN};
    use core::arch::x86_64::*;

    /// Rotate each 32-bit lane left by a literal amount. A macro (not a
    /// const-generic fn) because the shift intrinsics take
    /// legacy-const-generic immediates that cannot be computed from a
    /// generic parameter (`32 - N`).
    macro_rules! rotl128 {
        ($x:expr, $n:literal) => {{
            let x = $x;
            _mm_or_si128(_mm_slli_epi32(x, $n), _mm_srli_epi32(x, 32 - $n))
        }};
    }

    macro_rules! rotl256 {
        ($x:expr, $n:literal) => {{
            let x = $x;
            _mm256_or_si256(_mm256_slli_epi32(x, $n), _mm256_srli_epi32(x, 32 - $n))
        }};
    }

    /// One vectorized quarter round over lane-parallel state words.
    macro_rules! vec_quarter_round {
        ($add:ident, $xor:ident, $rotl:ident, $v:ident, $a:expr, $b:expr, $c:expr, $d:expr) => {{
            $v[$a] = $add($v[$a], $v[$b]);
            $v[$d] = $rotl!($xor($v[$d], $v[$a]), 16);
            $v[$c] = $add($v[$c], $v[$d]);
            $v[$b] = $rotl!($xor($v[$b], $v[$c]), 12);
            $v[$a] = $add($v[$a], $v[$b]);
            $v[$d] = $rotl!($xor($v[$d], $v[$a]), 8);
            $v[$c] = $add($v[$c], $v[$d]);
            $v[$b] = $rotl!($xor($v[$b], $v[$c]), 7);
        }};
    }

    /// The 8-quarter-round double round, applied 10 times.
    macro_rules! vec_rounds {
        ($add:ident, $xor:ident, $rotl:ident, $v:ident) => {{
            for _ in 0..10 {
                vec_quarter_round!($add, $xor, $rotl, $v, 0, 4, 8, 12);
                vec_quarter_round!($add, $xor, $rotl, $v, 1, 5, 9, 13);
                vec_quarter_round!($add, $xor, $rotl, $v, 2, 6, 10, 14);
                vec_quarter_round!($add, $xor, $rotl, $v, 3, 7, 11, 15);
                vec_quarter_round!($add, $xor, $rotl, $v, 0, 5, 10, 15);
                vec_quarter_round!($add, $xor, $rotl, $v, 1, 6, 11, 12);
                vec_quarter_round!($add, $xor, $rotl, $v, 2, 7, 8, 13);
                vec_quarter_round!($add, $xor, $rotl, $v, 3, 4, 9, 14);
            }
        }};
    }

    /// Four keystream blocks (counters `counter..counter+4`) into
    /// `out`.
    #[target_feature(enable = "sse2")]
    unsafe fn blocks4_sse2(
        key: &[u8; KEY_LEN],
        counter: u32,
        nonce: &[u8; NONCE_LEN],
        out: &mut [u8; 4 * BLOCK_LEN],
    ) {
        let words = state_words(key, counter, nonce);
        let mut v: [__m128i; 16] = [_mm_setzero_si128(); 16];
        for i in 0..16 {
            v[i] = _mm_set1_epi32(words[i] as i32);
        }
        v[12] = _mm_set_epi32(
            counter.wrapping_add(3) as i32,
            counter.wrapping_add(2) as i32,
            counter.wrapping_add(1) as i32,
            counter as i32,
        );
        let init = v;
        vec_rounds!(_mm_add_epi32, _mm_xor_si128, rotl128, v);
        for i in 0..16 {
            v[i] = _mm_add_epi32(v[i], init[i]);
        }
        // Transpose each group of four word registers: after the
        // transpose, row `b` of group `g` is words 4g..4g+4 of block b.
        for g in 0..4 {
            let t0 = _mm_unpacklo_epi32(v[4 * g], v[4 * g + 1]);
            let t1 = _mm_unpacklo_epi32(v[4 * g + 2], v[4 * g + 3]);
            let t2 = _mm_unpackhi_epi32(v[4 * g], v[4 * g + 1]);
            let t3 = _mm_unpackhi_epi32(v[4 * g + 2], v[4 * g + 3]);
            let rows = [
                _mm_unpacklo_epi64(t0, t1),
                _mm_unpackhi_epi64(t0, t1),
                _mm_unpacklo_epi64(t2, t3),
                _mm_unpackhi_epi64(t2, t3),
            ];
            for (b, row) in rows.iter().enumerate() {
                _mm_storeu_si128(
                    out.as_mut_ptr().add(b * BLOCK_LEN + g * 16) as *mut __m128i,
                    *row,
                );
            }
        }
    }

    /// Eight keystream blocks (counters `counter..counter+8`) into
    /// `out`.
    #[target_feature(enable = "avx2")]
    unsafe fn blocks8_avx2(
        key: &[u8; KEY_LEN],
        counter: u32,
        nonce: &[u8; NONCE_LEN],
        out: &mut [u8; 8 * BLOCK_LEN],
    ) {
        let words = state_words(key, counter, nonce);
        let mut v: [__m256i; 16] = [_mm256_setzero_si256(); 16];
        for i in 0..16 {
            v[i] = _mm256_set1_epi32(words[i] as i32);
        }
        v[12] = _mm256_set_epi32(
            counter.wrapping_add(7) as i32,
            counter.wrapping_add(6) as i32,
            counter.wrapping_add(5) as i32,
            counter.wrapping_add(4) as i32,
            counter.wrapping_add(3) as i32,
            counter.wrapping_add(2) as i32,
            counter.wrapping_add(1) as i32,
            counter as i32,
        );
        let init = v;
        vec_rounds!(_mm256_add_epi32, _mm256_xor_si256, rotl256, v);
        for i in 0..16 {
            v[i] = _mm256_add_epi32(v[i], init[i]);
        }
        // 8×8 u32 transpose per group of eight word registers: row `b`
        // of group `g` becomes words 8g..8g+8 of block b.
        for g in 0..2 {
            let r = &v[8 * g..8 * g + 8];
            let t0 = _mm256_unpacklo_epi32(r[0], r[1]);
            let t1 = _mm256_unpackhi_epi32(r[0], r[1]);
            let t2 = _mm256_unpacklo_epi32(r[2], r[3]);
            let t3 = _mm256_unpackhi_epi32(r[2], r[3]);
            let t4 = _mm256_unpacklo_epi32(r[4], r[5]);
            let t5 = _mm256_unpackhi_epi32(r[4], r[5]);
            let t6 = _mm256_unpacklo_epi32(r[6], r[7]);
            let t7 = _mm256_unpackhi_epi32(r[6], r[7]);
            let u0 = _mm256_unpacklo_epi64(t0, t2);
            let u1 = _mm256_unpackhi_epi64(t0, t2);
            let u2 = _mm256_unpacklo_epi64(t1, t3);
            let u3 = _mm256_unpackhi_epi64(t1, t3);
            let u4 = _mm256_unpacklo_epi64(t4, t6);
            let u5 = _mm256_unpackhi_epi64(t4, t6);
            let u6 = _mm256_unpacklo_epi64(t5, t7);
            let u7 = _mm256_unpackhi_epi64(t5, t7);
            let rows = [
                _mm256_permute2x128_si256(u0, u4, 0x20),
                _mm256_permute2x128_si256(u1, u5, 0x20),
                _mm256_permute2x128_si256(u2, u6, 0x20),
                _mm256_permute2x128_si256(u3, u7, 0x20),
                _mm256_permute2x128_si256(u0, u4, 0x31),
                _mm256_permute2x128_si256(u1, u5, 0x31),
                _mm256_permute2x128_si256(u2, u6, 0x31),
                _mm256_permute2x128_si256(u3, u7, 0x31),
            ];
            for (b, row) in rows.iter().enumerate() {
                _mm256_storeu_si256(
                    out.as_mut_ptr().add(b * BLOCK_LEN + g * 32) as *mut __m256i,
                    *row,
                );
            }
        }
    }

    /// Scalar per-block tail shared by both wide paths.
    fn xor_tail(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], mut counter: u32, data: &mut [u8]) {
        for chunk in data.chunks_mut(BLOCK_LEN) {
            let ks = block(key, counter, nonce);
            xor_bytes(chunk, &ks);
            counter = counter.wrapping_add(1);
        }
    }

    /// Safe dispatch entry: runs the widest kernel for `backend` and
    /// returns the tier that ran.
    ///
    /// Soundness of the internal `unsafe` blocks: SSE2 is part of the
    /// x86_64 baseline ABI, and [`Backend::Avx2`] is only ever produced
    /// by [`crate::simd::Backend::resolve`] (or by tests/benches that
    /// first check [`crate::simd::detect`]) on CPUs reporting AVX2, so
    /// the required target features are always present when the
    /// corresponding kernel is entered.
    pub fn xor_dispatch(
        backend: Backend,
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        initial_counter: u32,
        data: &mut [u8],
    ) -> Backend {
        match backend {
            Backend::Scalar => Backend::Scalar,
            Backend::Sse2 => {
                // SAFETY: SSE2 is baseline on x86_64.
                unsafe { xor_sse2(key, nonce, initial_counter, data) };
                Backend::Sse2
            }
            Backend::Avx2 => {
                debug_assert!(std::arch::is_x86_feature_detected!("avx2"));
                // SAFETY: Avx2 is only selected on CPUs reporting AVX2
                // (see above).
                unsafe { xor_avx2(key, nonce, initial_counter, data) };
                Backend::Avx2
            }
        }
    }

    /// # Safety
    ///
    /// Requires SSE2 (baseline on x86_64).
    unsafe fn xor_sse2(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        initial_counter: u32,
        data: &mut [u8],
    ) {
        let mut counter = initial_counter;
        let mut off = 0;
        let mut ks = [0u8; 4 * BLOCK_LEN];
        while data.len() - off >= 4 * BLOCK_LEN {
            blocks4_sse2(key, counter, nonce, &mut ks);
            xor_bytes(&mut data[off..off + 4 * BLOCK_LEN], &ks);
            counter = counter.wrapping_add(4);
            off += 4 * BLOCK_LEN;
        }
        xor_tail(key, nonce, counter, &mut data[off..]);
    }

    /// # Safety
    ///
    /// Requires AVX2.
    unsafe fn xor_avx2(
        key: &[u8; KEY_LEN],
        nonce: &[u8; NONCE_LEN],
        initial_counter: u32,
        data: &mut [u8],
    ) {
        let mut counter = initial_counter;
        let mut off = 0;
        let mut ks = [0u8; 8 * BLOCK_LEN];
        while data.len() - off >= 8 * BLOCK_LEN {
            blocks8_avx2(key, counter, nonce, &mut ks);
            xor_bytes(&mut data[off..off + 8 * BLOCK_LEN], &ks);
            counter = counter.wrapping_add(8);
            off += 8 * BLOCK_LEN;
        }
        while data.len() - off >= 4 * BLOCK_LEN {
            blocks4_sse2(
                key,
                counter,
                nonce,
                (&mut ks[..4 * BLOCK_LEN]).try_into().unwrap(),
            );
            xor_bytes(&mut data[off..off + 4 * BLOCK_LEN], &ks[..4 * BLOCK_LEN]);
            counter = counter.wrapping_add(4);
            off += 4 * BLOCK_LEN;
        }
        xor_tail(key, nonce, counter, &mut data[off..]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn test_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    #[test]
    fn rfc8439_block_function() {
        // RFC 8439 section 2.3.2.
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption() {
        // RFC 8439 section 2.4.2.
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: \
If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, 1, plaintext);
        assert_eq!(plaintext.len(), 114);
        assert_eq!(hex(&ct[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        // Decryption restores the plaintext.
        assert_eq!(encrypt(&key, &nonce, 1, &ct), plaintext);
    }

    #[test]
    fn roundtrip() {
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        let data: Vec<u8> = (0..300).map(|i| (i * 7) as u8).collect();
        let mut buf = data.clone();
        xor_in_place(&key, &nonce, 0, &mut buf);
        assert_ne!(buf, data);
        xor_in_place(&key, &nonce, 0, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn counter_continuity() {
        // Encrypting 128 bytes at counter 0 equals encrypting two
        // 64-byte halves at counters 0 and 1.
        let key = test_key();
        let nonce = [3u8; NONCE_LEN];
        let data = [0x55u8; 128];
        let whole = encrypt(&key, &nonce, 0, &data);
        let first = encrypt(&key, &nonce, 0, &data[..64]);
        let second = encrypt(&key, &nonce, 1, &data[64..]);
        assert_eq!(&whole[..64], &first[..]);
        assert_eq!(&whole[64..], &second[..]);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = test_key();
        let a = encrypt(&key, &[0u8; NONCE_LEN], 0, &[0u8; 64]);
        let b = encrypt(&key, &[1u8; NONCE_LEN], 0, &[0u8; 64]);
        assert_ne!(a, b);
    }

    /// Every backend the CPU supports produces the scalar bytes, at
    /// lengths straddling every lane boundary (0..1 block, 4-block,
    /// 8-block, and ragged tails) and at counters near wrap-around.
    #[test]
    fn backends_match_scalar_reference() {
        let key = test_key();
        let nonce = [0x42u8; NONCE_LEN];
        let feats = simd::detect();
        let mut backends = vec![Backend::Scalar];
        if feats.sse2 {
            backends.push(Backend::Sse2);
        }
        if feats.avx2 {
            backends.push(Backend::Avx2);
        }
        for len in [
            0usize, 1, 63, 64, 65, 255, 256, 257, 511, 512, 513, 1024, 1539,
        ] {
            for counter in [0u32, 1, u32::MAX - 2] {
                let data: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
                let mut reference = data.clone();
                xor_in_place_with(Backend::Scalar, &key, &nonce, counter, &mut reference);
                for &backend in &backends[1..] {
                    let mut buf = data.clone();
                    xor_in_place_with(backend, &key, &nonce, counter, &mut buf);
                    assert_eq!(buf, reference, "len={len} counter={counter} {backend}");
                }
            }
        }
    }
}
