//! The ChaCha20 stream cipher as specified in RFC 8439.
//!
//! Validated against the RFC 8439 block-function and encryption test
//! vectors. Used by [`crate::keywrap`] to encrypt key material.

/// ChaCha20 key length in bytes.
pub const KEY_LEN: usize = 32;

/// ChaCha20 nonce length in bytes (the RFC 8439 96-bit nonce).
pub const NONCE_LEN: usize = 12;

const BLOCK_LEN: usize = 64;
const CONSTANTS: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Computes one 64-byte ChaCha20 keystream block for the given key,
/// block counter, and nonce.
pub fn block(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u8; BLOCK_LEN] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&CONSTANTS);
    for i in 0..8 {
        state[4 + i] =
            u32::from_le_bytes([key[4 * i], key[4 * i + 1], key[4 * i + 2], key[4 * i + 3]]);
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes([
            nonce[4 * i],
            nonce[4 * i + 1],
            nonce[4 * i + 2],
            nonce[4 * i + 3],
        ]);
    }

    let mut working = state;
    for _ in 0..10 {
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }

    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR with the keystream
/// starting at block `initial_counter`).
///
/// ChaCha20 is its own inverse: applying this function twice with the
/// same parameters restores the original data.
pub fn xor_in_place(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &mut [u8],
) {
    let mut counter = initial_counter;
    for chunk in data.chunks_mut(BLOCK_LEN) {
        let ks = block(key, counter, nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
        counter = counter.wrapping_add(1);
    }
    rekey_obs::count(
        "crypto.chacha20_blocks",
        data.len().div_ceil(BLOCK_LEN) as u64,
    );
}

/// Encrypts `data` and returns the ciphertext (convenience wrapper
/// around [`xor_in_place`]).
pub fn encrypt(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    initial_counter: u32,
    data: &[u8],
) -> Vec<u8> {
    let mut out = data.to_vec();
    xor_in_place(key, nonce, initial_counter, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn test_key() -> [u8; KEY_LEN] {
        let mut key = [0u8; KEY_LEN];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        key
    }

    #[test]
    fn rfc8439_block_function() {
        // RFC 8439 section 2.3.2.
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x09, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let ks = block(&key, 1, &nonce);
        assert_eq!(
            hex(&ks),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e\
             d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e"
        );
    }

    #[test]
    fn rfc8439_encryption() {
        // RFC 8439 section 2.4.2.
        let key = test_key();
        let nonce = [
            0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x4a, 0x00, 0x00, 0x00, 0x00,
        ];
        let plaintext: &[u8] = b"Ladies and Gentlemen of the class of '99: \
If I could offer you only one tip for the future, sunscreen would be it.";
        let ct = encrypt(&key, &nonce, 1, plaintext);
        assert_eq!(plaintext.len(), 114);
        assert_eq!(hex(&ct[..16]), "6e2e359a2568f98041ba0728dd0d6981");
        // Decryption restores the plaintext.
        assert_eq!(encrypt(&key, &nonce, 1, &ct), plaintext);
    }

    #[test]
    fn roundtrip() {
        let key = test_key();
        let nonce = [7u8; NONCE_LEN];
        let data: Vec<u8> = (0..300).map(|i| (i * 7) as u8).collect();
        let mut buf = data.clone();
        xor_in_place(&key, &nonce, 0, &mut buf);
        assert_ne!(buf, data);
        xor_in_place(&key, &nonce, 0, &mut buf);
        assert_eq!(buf, data);
    }

    #[test]
    fn counter_continuity() {
        // Encrypting 128 bytes at counter 0 equals encrypting two
        // 64-byte halves at counters 0 and 1.
        let key = test_key();
        let nonce = [3u8; NONCE_LEN];
        let data = [0x55u8; 128];
        let whole = encrypt(&key, &nonce, 0, &data);
        let first = encrypt(&key, &nonce, 0, &data[..64]);
        let second = encrypt(&key, &nonce, 1, &data[64..]);
        assert_eq!(&whole[..64], &first[..]);
        assert_eq!(&whole[64..], &second[..]);
    }

    #[test]
    fn distinct_nonces_distinct_streams() {
        let key = test_key();
        let a = encrypt(&key, &[0u8; NONCE_LEN], 0, &[0u8; 64]);
        let b = encrypt(&key, &[1u8; NONCE_LEN], 0, &[0u8; 64]);
        assert_ne!(a, b);
    }
}
