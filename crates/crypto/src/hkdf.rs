//! HKDF-SHA256 key derivation as specified in RFC 5869.
//!
//! Used throughout the workspace to derive independent sub-keys (e.g.
//! an encryption key and a MAC key for [`crate::keywrap`]) from a
//! single key-encryption key, and by the OFT scheme to derive node keys
//! from blinded child keys.

use crate::hmac::{hmac, HmacSha256};
use crate::sha256::DIGEST_LEN;

/// HKDF-Extract: derives a pseudorandom key from input keying material.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    hmac(salt, ikm)
}

/// HKDF-Expand: expands `prk` into `out.len()` bytes of output keying
/// material, bound to `info`.
///
/// # Panics
///
/// Panics if `out.len() > 255 * 32` (the RFC 5869 limit).
pub fn expand(prk: &[u8], info: &[u8], out: &mut [u8]) {
    assert!(
        out.len() <= 255 * DIGEST_LEN,
        "HKDF-Expand output too long: {} bytes",
        out.len()
    );
    let mut t: Vec<u8> = Vec::new();
    let mut counter = 1u8;
    let mut produced = 0;
    while produced < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - produced).min(DIGEST_LEN);
        out[produced..produced + take].copy_from_slice(&block[..take]);
        produced += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// Convenience: extract-then-expand in one call.
pub fn derive(salt: &[u8], ikm: &[u8], info: &[u8], out: &mut [u8]) {
    rekey_obs::count("crypto.hkdf", 1);
    let prk = extract(salt, ikm);
    expand(&prk, info, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    #[test]
    fn rfc5869_case_1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    #[test]
    fn derive_matches_extract_expand() {
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        derive(b"salt", b"ikm", b"info", &mut a);
        let prk = extract(b"salt", b"ikm");
        expand(&prk, b"info", &mut b);
        assert_eq!(a, b);
    }

    #[test]
    fn different_info_different_output() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        derive(b"s", b"k", b"enc", &mut a);
        derive(b"s", b"k", b"mac", &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn multi_block_expansion_is_prefix_consistent() {
        let prk = extract(b"s", b"k");
        let mut long = [0u8; 100];
        let mut short = [0u8; 32];
        expand(&prk, b"i", &mut long);
        expand(&prk, b"i", &mut short);
        assert_eq!(&long[..32], &short[..]);
    }

    #[test]
    #[should_panic(expected = "output too long")]
    fn expand_rejects_oversize() {
        let mut out = vec![0u8; 255 * 32 + 1];
        expand(&[0u8; 32], b"", &mut out);
    }
}
