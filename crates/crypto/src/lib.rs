//! Cryptographic primitives for the `rekey` group key management library.
//!
//! Group rekeying protocols based on logical key hierarchies (LKH) are,
//! at the wire level, long sequences of *key encryptions*: "the new key
//! `K_a` encrypted under the old key `K_b`". This crate provides the
//! primitives that make those encryptions real so that the rest of the
//! workspace can verify end-to-end confidentiality properties (forward
//! and backward secrecy) instead of merely counting abstract keys:
//!
//! - [`sha256`] — the SHA-256 hash function,
//! - [`hmac`] — HMAC-SHA256 message authentication,
//! - [`hkdf`] — HKDF-SHA256 key derivation,
//! - [`chacha20`] — the ChaCha20 stream cipher,
//! - [`keywrap`] — authenticated key wrapping (encrypt-then-MAC) built
//!   from ChaCha20 + HMAC-SHA256,
//! - [`Key`] — a 256-bit symmetric key with constant-time equality.
//!
//! # Example
//!
//! Wrap a freshly generated group key under a key-encryption key and
//! unwrap it on the receiving side:
//!
//! ```
//! use rekey_crypto::{Key, keywrap};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let kek = Key::generate(&mut rng);
//! let group_key = Key::generate(&mut rng);
//!
//! let wrapped = keywrap::wrap(&kek, &group_key, &mut rng);
//! let unwrapped = keywrap::unwrap(&kek, &wrapped)?;
//! assert_eq!(unwrapped, group_key);
//! # Ok::<(), rekey_crypto::CryptoError>(())
//! ```
//!
//! # Security notes
//!
//! These implementations follow the relevant RFCs and are validated
//! against the RFC test vectors, but they are written for research
//! reproduction: they are not audited and make no claims about
//! side-channel resistance beyond constant-time tag/key comparison.
//! Do not use them to protect real traffic.

// Unsafe is denied crate-wide and allowed back in only inside the
// `x86` intrinsic submodules of `chacha20` and `sha256`, whose safety
// arguments live next to the code (see DESIGN.md §3h).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod chacha20;
pub mod hkdf;
pub mod hmac;
pub mod keywrap;
pub mod sha256;
pub mod simd;

mod key;

pub use key::Key;

use std::error::Error;
use std::fmt;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum CryptoError {
    /// An authentication tag did not verify; the ciphertext was not
    /// produced under the presented key or has been tampered with.
    BadTag,
    /// A wrapped-key blob had the wrong length or framing.
    Malformed,
}

impl fmt::Display for CryptoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CryptoError::BadTag => write!(f, "authentication tag mismatch"),
            CryptoError::Malformed => write!(f, "malformed cryptographic payload"),
        }
    }
}

impl Error for CryptoError {}

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately only when lengths differ (lengths are
/// public in every use in this crate).
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal() {
        assert!(ct_eq(b"abc", b"abc"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_unequal_content() {
        assert!(!ct_eq(b"abc", b"abd"));
    }

    #[test]
    fn ct_eq_unequal_length() {
        assert!(!ct_eq(b"abc", b"ab"));
    }

    #[test]
    fn error_display_nonempty() {
        assert!(!CryptoError::BadTag.to_string().is_empty());
        assert!(!CryptoError::Malformed.to_string().is_empty());
    }
}
