//! HMAC-SHA256 as specified in RFC 2104 / FIPS 198-1.
//!
//! Validated against the RFC 4231 test vectors.
//!
//! Keying HMAC costs two SHA-256 compressions (one per pad block)
//! before the first message byte is absorbed. [`HmacKey`] performs
//! them once and stores the post-pad inner and outer hash states;
//! every MAC started from it ([`HmacKey::mac`]) is then a pair of
//! cheap state clones. [`crate::keywrap`] relies on this to amortize
//! MAC setup across all entries wrapped under the same key-encryption
//! key in a rekey batch.

use crate::sha256::{self, Sha256, BLOCK_LEN, DIGEST_LEN};

/// A reusable HMAC-SHA256 key: the inner (ipad) and outer (opad) hash
/// states, precomputed once.
///
/// # Example
///
/// ```
/// use rekey_crypto::hmac::{hmac, HmacKey};
///
/// let key = HmacKey::new(b"key");
/// let mut mac = key.mac();
/// mac.update(b"message");
/// assert_eq!(mac.finalize(), hmac(b"key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacKey {
    inner: Sha256,
    outer: Sha256,
}

impl std::fmt::Debug for HmacKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacKey").finish_non_exhaustive()
    }
}

impl HmacKey {
    /// Schedules `key` (any length; keys longer than the block size
    /// are hashed first, per the RFC): XORs the pads and absorbs one
    /// block into each of the inner and outer states.
    pub fn new(key: &[u8]) -> Self {
        let mut block_key = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let digest = sha256::digest(key);
            block_key[..DIGEST_LEN].copy_from_slice(&digest);
        } else {
            block_key[..key.len()].copy_from_slice(key);
        }

        let mut ipad_key = [0u8; BLOCK_LEN];
        let mut opad_key = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad_key[i] = block_key[i] ^ 0x36;
            opad_key[i] = block_key[i] ^ 0x5c;
        }

        let mut inner = Sha256::new();
        inner.update(&ipad_key);
        let mut outer = Sha256::new();
        outer.update(&opad_key);
        HmacKey { inner, outer }
    }

    /// Starts a MAC computation from the precomputed pad states.
    pub fn mac(&self) -> HmacSha256 {
        HmacSha256 {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }
}

/// Incremental HMAC-SHA256 computation.
///
/// # Example
///
/// ```
/// use rekey_crypto::hmac::HmacSha256;
///
/// let mut mac = HmacSha256::new(b"key");
/// mac.update(b"message");
/// let tag = mac.finalize();
/// assert_eq!(tag, rekey_crypto::hmac::hmac(b"key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    outer: Sha256,
}

impl std::fmt::Debug for HmacSha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HmacSha256").finish_non_exhaustive()
    }
}

impl HmacSha256 {
    /// Creates an HMAC instance keyed with `key` (any length; keys
    /// longer than the block size are hashed first, per the RFC).
    /// Callers computing many MACs under one key should schedule an
    /// [`HmacKey`] once instead.
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).mac()
    }

    /// Absorbs message bytes.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Completes the MAC and returns the 32-byte tag.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        rekey_obs::count("crypto.hmac", 1);
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(&inner_digest);
        outer.finalize()
    }

    /// Completes the MAC and checks it against `expected` in constant
    /// time.
    pub fn verify(self, expected: &[u8]) -> bool {
        crate::ct_eq(&self.finalize(), expected)
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut mac = HmacSha256::new(key);
    mac.update(data);
    mac.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = hmac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = hmac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = hmac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn long_key_is_hashed() {
        // RFC 4231 case 6: 131-byte key of 0xaa.
        let key = [0xaau8; 131];
        let tag = hmac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"key");
        mac.update(b"hello ");
        mac.update(b"world");
        assert_eq!(mac.finalize(), hmac(b"key", b"hello world"));
    }

    #[test]
    fn verify_accepts_and_rejects() {
        let tag = hmac(b"k", b"m");
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"m");
        assert!(mac.verify(&tag));

        let mut bad = tag;
        bad[0] ^= 1;
        let mut mac = HmacSha256::new(b"k");
        mac.update(b"m");
        assert!(!mac.verify(&bad));
    }

    #[test]
    fn different_keys_differ() {
        assert_ne!(hmac(b"k1", b"m"), hmac(b"k2", b"m"));
    }
}
