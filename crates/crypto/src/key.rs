//! The [`Key`] type: a 256-bit symmetric key.

use rand::RngCore;
use std::fmt;

/// Length of a [`Key`] in bytes.
pub const KEY_LEN: usize = 32;

/// A 256-bit symmetric key.
///
/// `Key` is the unit of currency of the whole workspace: every node of
/// a logical key tree holds one, every rekey message transports wrapped
/// `Key`s, and the group data-encryption key (DEK) at the tree root is
/// a `Key`.
///
/// Equality is constant-time. The `Debug` implementation shows only a
/// short fingerprint so keys never leak into logs.
///
/// # Example
///
/// ```
/// use rekey_crypto::Key;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let k = Key::generate(&mut rng);
/// assert_eq!(k, Key::from_bytes(*k.as_bytes()));
/// ```
// The manual `PartialEq` is byte equality in constant time, so the
// derived `Hash` agrees with it (k1 == k2 ⇒ hash(k1) == hash(k2)).
#[allow(clippy::derived_hash_with_manual_eq)]
#[derive(Clone, Eq, Hash)]
pub struct Key([u8; KEY_LEN]);

impl Key {
    /// Generates a fresh uniformly random key from `rng`.
    pub fn generate<R: RngCore>(rng: &mut R) -> Self {
        let mut bytes = [0u8; KEY_LEN];
        rng.fill_bytes(&mut bytes);
        Key(bytes)
    }

    /// Constructs a key from raw bytes.
    pub fn from_bytes(bytes: [u8; KEY_LEN]) -> Self {
        Key(bytes)
    }

    /// Returns the raw key bytes.
    pub fn as_bytes(&self) -> &[u8; KEY_LEN] {
        &self.0
    }

    /// Derives a related key bound to `label`, using HKDF-SHA256.
    ///
    /// Used e.g. to split a key-encryption key into independent
    /// encryption and MAC sub-keys, and by the OFT scheme to compute
    /// blinded keys.
    pub fn derive(&self, label: &[u8]) -> Key {
        let mut out = [0u8; KEY_LEN];
        crate::hkdf::derive(b"rekey-key-derive", &self.0, label, &mut out);
        Key(out)
    }

    /// Returns a short (8 hex digit) fingerprint of the key, suitable
    /// for display and diagnostics.
    pub fn fingerprint(&self) -> String {
        let digest = crate::sha256::digest(&self.0);
        digest[..4].iter().map(|b| format!("{b:02x}")).collect()
    }
}

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        crate::ct_eq(&self.0, &other.0)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Key({}…)", self.fingerprint())
    }
}

impl From<[u8; KEY_LEN]> for Key {
    fn from(bytes: [u8; KEY_LEN]) -> Self {
        Key(bytes)
    }
}

impl AsRef<[u8]> for Key {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn generate_is_random() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let a = Key::generate(&mut rng);
        let b = Key::generate(&mut rng);
        assert_ne!(a, b);
    }

    #[test]
    fn debug_redacts_key_material() {
        let k = Key::from_bytes([0xAB; KEY_LEN]);
        let dbg = format!("{k:?}");
        assert!(!dbg.contains("abab"), "raw bytes leaked: {dbg}");
        assert!(dbg.starts_with("Key("));
    }

    #[test]
    fn derive_is_deterministic_and_label_separated() {
        let k = Key::from_bytes([7; KEY_LEN]);
        assert_eq!(k.derive(b"enc"), k.derive(b"enc"));
        assert_ne!(k.derive(b"enc"), k.derive(b"mac"));
        assert_ne!(k.derive(b"enc"), k);
    }

    #[test]
    fn fingerprint_is_eight_hex_digits() {
        let k = Key::from_bytes([1; KEY_LEN]);
        let fp = k.fingerprint();
        assert_eq!(fp.len(), 8);
        assert!(fp.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
