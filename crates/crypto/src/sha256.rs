//! SHA-256 as specified in FIPS 180-4.
//!
//! Provides an incremental [`Sha256`] hasher and a one-shot [`digest`]
//! convenience function. Validated against the standard test vectors
//! (empty message, `"abc"`, and the two-block NIST message).
//!
//! # SIMD message schedule
//!
//! The 64-round compression is a serial dependency chain, but the
//! message-schedule expansion (`w[16..64]`) is only *mostly* serial:
//! `w[i]` needs `w[i-2]`, so four words can be produced per pass with
//! the `σ₀`/`w[i-16]`/`w[i-7]` terms computed four-wide and the `σ₁`
//! term applied in two half-vector steps. On SSE2-class hardware (and
//! above) the hasher dispatches to that vector schedule via
//! [`crate::simd`]; the scalar schedule remains the reference and the
//! two are pinned identical by `tests/simd_equiv.rs`.

use crate::simd::{self, Backend};

/// Output size of SHA-256 in bytes.
pub const DIGEST_LEN: usize = 32;

/// Block size of SHA-256 in bytes (relevant for HMAC).
pub const BLOCK_LEN: usize = 64;

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use rekey_crypto::sha256::Sha256;
///
/// let mut h = Sha256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// let d = h.finalize();
/// assert_eq!(d, rekey_crypto::sha256::digest(b"abc"));
/// ```
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; BLOCK_LEN],
    buf_len: usize,
    total_len: u64,
    backend: Backend,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Sha256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sha256")
            .field("bytes_absorbed", &self.total_len)
            .finish()
    }
}

impl Sha256 {
    /// Creates a hasher in the initial state, on the process-wide SIMD
    /// backend.
    pub fn new() -> Self {
        Self::new_with(simd::active())
    }

    /// Creates a hasher pinned to an explicit backend — entry point
    /// for the SIMD equivalence tests and per-backend benches. The
    /// digest is byte-identical for every backend.
    pub fn new_with(backend: Backend) -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; BLOCK_LEN],
            buf_len: 0,
            total_len: 0,
            backend,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let need = BLOCK_LEN - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == BLOCK_LEN {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= BLOCK_LEN {
            let mut block = [0u8; BLOCK_LEN];
            block.copy_from_slice(&data[..BLOCK_LEN]);
            self.compress(&block);
            data = &data[BLOCK_LEN..];
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80, pad with zeros to 56 mod 64, then the length.
        self.update_padding(0x80);
        while self.buf_len != 56 {
            self.update_padding(0x00);
        }
        let len_bytes = bit_len.to_be_bytes();
        self.buf[56..64].copy_from_slice(&len_bytes);
        let block = self.buf;
        self.compress(&block);

        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[4 * i..4 * i + 4].copy_from_slice(&word.to_be_bytes());
        }
        rekey_obs::count(
            match self.backend {
                Backend::Scalar => "crypto.sha256_digests.scalar",
                Backend::Sse2 => "crypto.sha256_digests.sse2",
                Backend::Avx2 => "crypto.sha256_digests.avx2",
            },
            1,
        );
        out
    }

    fn update_padding(&mut self, byte: u8) {
        self.buf[self.buf_len] = byte;
        self.buf_len += 1;
        if self.buf_len == BLOCK_LEN {
            let block = self.buf;
            self.compress(&block);
            self.buf_len = 0;
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_LEN]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
        match self.backend {
            Backend::Scalar => schedule_scalar(&mut w),
            #[cfg(target_arch = "x86_64")]
            Backend::Sse2 | Backend::Avx2 => x86::schedule(&mut w),
            #[cfg(not(target_arch = "x86_64"))]
            _ => schedule_scalar(&mut w),
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }
}

/// Scalar reference message-schedule expansion: fills `w[16..64]`.
fn schedule_scalar(w: &mut [u32; 64]) {
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
}

/// Vectorized message schedule. Four words per pass: the
/// `w[i-16] + σ₀(w[i-15]) + w[i-7]` partial is computed four-wide
/// (all inputs at least four slots old), then the `σ₁(w[i-2])` term —
/// whose upper two lanes depend on the lower two — is folded in with
/// two half-vector steps.
#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod x86 {
    use core::arch::x86_64::*;

    /// Rotate each 32-bit lane right by a literal amount. A macro
    /// because the shift intrinsics take legacy-const-generic
    /// immediates that cannot be computed from a generic parameter.
    macro_rules! ror {
        ($x:expr, $n:literal) => {{
            let x = $x;
            _mm_or_si128(_mm_srli_epi32(x, $n), _mm_slli_epi32(x, 32 - $n))
        }};
    }

    /// `σ₀(x) = ror⁷ ⊕ ror¹⁸ ⊕ shr³`, lane-wise.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn sigma0(x: __m128i) -> __m128i {
        _mm_xor_si128(_mm_xor_si128(ror!(x, 7), ror!(x, 18)), _mm_srli_epi32(x, 3))
    }

    /// `σ₁(x) = ror¹⁷ ⊕ ror¹⁹ ⊕ shr¹⁰`, lane-wise.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn sigma1(x: __m128i) -> __m128i {
        _mm_xor_si128(
            _mm_xor_si128(ror!(x, 17), ror!(x, 19)),
            _mm_srli_epi32(x, 10),
        )
    }

    /// Safe entry: expands the message schedule with the SSE2 kernel.
    ///
    /// Soundness of the `unsafe` block: SSE2 is part of the x86_64
    /// baseline ABI, so the kernel's required target feature is always
    /// present on this architecture (this module is only compiled for
    /// `target_arch = "x86_64"`).
    pub fn schedule(w: &mut [u32; 64]) {
        // SAFETY: SSE2 is baseline on x86_64.
        unsafe { schedule_sse2(w) }
    }

    /// # Safety
    ///
    /// Requires SSE2 (baseline on x86_64).
    /// `[b, c]` u32-concatenation: lanes `[b₁, b₂, b₃, c₀]` — the SSE2
    /// spelling of SSSE3 `palignr` by 4 bytes.
    #[inline]
    #[target_feature(enable = "sse2")]
    unsafe fn alignr4(hi: __m128i, lo: __m128i) -> __m128i {
        _mm_or_si128(_mm_srli_si128(lo, 4), _mm_slli_si128(hi, 12))
    }

    unsafe fn schedule_sse2(w: &mut [u32; 64]) {
        let p = w.as_mut_ptr();
        // The sliding 16-word window lives entirely in four registers:
        // q0 = w[i-16..i-12], …, q3 = w[i-4..i]. The -15/-7/-2 taps are
        // register shuffles, never loads — a load that partially
        // overlaps a recent store (as any in-place schedule's taps do)
        // stalls store-forwarding on every iteration.
        let mut q0 = _mm_loadu_si128(p as *const __m128i);
        let mut q1 = _mm_loadu_si128(p.add(4) as *const __m128i);
        let mut q2 = _mm_loadu_si128(p.add(8) as *const __m128i);
        let mut q3 = _mm_loadu_si128(p.add(12) as *const __m128i);
        for i in (16..64).step_by(4) {
            let wm15 = alignr4(q1, q0);
            let wm7 = alignr4(q3, q2);
            // part = w[i-16] + σ₀(w[i-15]) + w[i-7], lanes i..i+4.
            let part = _mm_add_epi32(_mm_add_epi32(q0, sigma0(wm15)), wm7);
            // Lanes 0–1: σ₁ of w[i-2], w[i-1] — the top half of q3.
            let lo = _mm_add_epi32(part, sigma1(_mm_srli_si128(q3, 8)));
            // Lanes 2–3: σ₁ of the w[i], w[i+1] just computed in the
            // low half of `lo`, shifted up (σ₁(0) = 0 fills the rest).
            let hi = _mm_add_epi32(part, sigma1(_mm_slli_si128(lo, 8)));
            // [lo₀, lo₁, hi₂, hi₃] — one store per pass, no reload.
            let out = _mm_unpacklo_epi64(lo, _mm_srli_si128(hi, 8));
            _mm_storeu_si128(p.add(i) as *mut __m128i, out);
            (q0, q1, q2, q3) = (q1, q2, q3, out);
        }
    }
}

/// Computes the SHA-256 digest of `data` in one shot.
///
/// ```
/// let d = rekey_crypto::sha256::digest(b"abc");
/// assert_eq!(d[0], 0xba);
/// ```
pub fn digest(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// [`digest`] on an explicit backend (SIMD equivalence tests and
/// per-backend benches).
pub fn digest_with(backend: Backend, data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new_with(backend);
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn vector_empty() {
        assert_eq!(
            hex(&digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn vector_abc() {
        assert_eq!(
            hex(&digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn vector_two_blocks() {
        // NIST test vector for the 448-bit message.
        assert_eq!(
            hex(&digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn vector_million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&digest(&data)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0u8..=255).cycle().take(1000).collect();
        for chunk in [1usize, 3, 7, 63, 64, 65, 130] {
            let mut h = Sha256::new();
            for part in data.chunks(chunk) {
                h.update(part);
            }
            assert_eq!(h.finalize(), digest(&data), "chunk size {chunk}");
        }
    }

    #[test]
    fn length_boundaries() {
        // Exercise padding across the 55/56/63/64-byte boundaries.
        for len in [0usize, 1, 54, 55, 56, 57, 63, 64, 65, 119, 120, 127, 128] {
            let data = vec![0xABu8; len];
            let mut h = Sha256::new();
            h.update(&data);
            assert_eq!(h.finalize(), digest(&data), "len {len}");
        }
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Sha256::new()).is_empty());
    }

    /// The SIMD message schedule is byte-identical to the scalar
    /// reference on every supported backend, across padding
    /// boundaries.
    #[test]
    fn backends_match_scalar_reference() {
        let feats = simd::detect();
        let mut backends = Vec::new();
        if feats.sse2 {
            backends.push(Backend::Sse2);
        }
        if feats.avx2 {
            backends.push(Backend::Avx2);
        }
        for len in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 131 + 17) as u8).collect();
            let reference = digest_with(Backend::Scalar, &data);
            for &backend in &backends {
                assert_eq!(
                    digest_with(backend, &data),
                    reference,
                    "len={len} {backend}"
                );
            }
        }
    }
}
