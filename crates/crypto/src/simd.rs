//! Runtime CPU-feature detection and SIMD backend selection for the
//! hot crypto kernels.
//!
//! The three throughput-critical kernels of the workspace — multi-block
//! ChaCha20 keystream generation ([`crate::chacha20`]), the SHA-256
//! message schedule ([`crate::sha256`]), and the GF(256) bulk routines
//! in `rekey-transport` — each carry one scalar reference
//! implementation plus `std::arch` fast paths. This module owns the
//! *selection*: which tier runs is decided once per process, from CPU
//! feature detection plus an optional `REKEY_SIMD` environment
//! override, and cached behind an atomic so the per-call cost of
//! dispatch is a single relaxed load and a jump.
//!
//! # Tiers
//!
//! | [`Backend`] | requires | used for |
//! |-------------|----------|----------|
//! | `Scalar`    | nothing  | reference implementations, always available |
//! | `Sse2`      | SSE2     | 4-lane ChaCha20, SIMD SHA-256 schedule, GF(256) nibble tables (needs SSSE3 `pshufb`, else scalar) |
//! | `Avx2`      | AVX2     | 8-lane ChaCha20, 32-byte GF(256) nibble tables |
//!
//! Every fast path is pinned **byte-identical** to the scalar
//! reference by the proptest equivalence harness
//! (`crates/crypto/tests/simd_equiv.rs`), so backend selection can
//! never change an output byte — only wall-clock time.
//!
//! # Override
//!
//! `REKEY_SIMD=off|scalar|sse2|avx2|auto` forces a tier (`off` and
//! `scalar` are synonyms). Requesting a tier the CPU cannot run falls
//! back to the best *supported* tier at or below the request — the
//! dispatcher never selects an unsupported instruction set (see
//! [`Backend::resolve`], which is pure and unit-tested for exactly
//! this).

use std::sync::atomic::{AtomicU8, Ordering};

/// The instruction-set tiers a kernel can dispatch to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Backend {
    /// Portable reference implementation.
    Scalar,
    /// 128-bit `std::arch` x86 path (SSE2 baseline; kernels that need
    /// SSSE3 `pshufb` check [`CpuFeatures::ssse3`] and fall back to
    /// scalar internally).
    Sse2,
    /// 256-bit `std::arch` x86 path (AVX2).
    Avx2,
}

impl Backend {
    /// Short lowercase name (`"scalar"`, `"sse2"`, `"avx2"`), as used
    /// in `REKEY_SIMD`, bench JSON, and obs counter suffixes.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Sse2 => "sse2",
            Backend::Avx2 => "avx2",
        }
    }

    /// Resolves a requested tier (usually from `REKEY_SIMD`) against
    /// the detected CPU features. Pure — the fallback chain
    /// (AVX2 → SSE2 → scalar) is unit-tested without touching global
    /// state.
    ///
    /// `None` and `"auto"` pick the best supported tier; an explicit
    /// request is capped at what the CPU supports; unknown strings are
    /// treated as `auto` (selection must never abort a server).
    pub fn resolve(request: Option<&str>, features: CpuFeatures) -> Backend {
        let best = if features.avx2 {
            Backend::Avx2
        } else if features.sse2 {
            Backend::Sse2
        } else {
            Backend::Scalar
        };
        match request {
            Some("off") | Some("scalar") => Backend::Scalar,
            Some("sse2") => best.min(Backend::Sse2),
            Some("avx2") => best.min(Backend::Avx2),
            _ => best,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The CPU features the kernels care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CpuFeatures {
    /// 128-bit integer SIMD (baseline on x86_64).
    pub sse2: bool,
    /// `pshufb` — required by the GF(256) nibble-table kernel's
    /// 128-bit form.
    pub ssse3: bool,
    /// 256-bit integer SIMD.
    pub avx2: bool,
}

impl CpuFeatures {
    /// Everything off — what non-x86 targets report.
    pub const NONE: CpuFeatures = CpuFeatures {
        sse2: false,
        ssse3: false,
        avx2: false,
    };
}

/// Detects the CPU features of the running machine.
pub fn detect() -> CpuFeatures {
    #[cfg(any(target_arch = "x86_64", target_arch = "x86"))]
    {
        CpuFeatures {
            sse2: std::arch::is_x86_feature_detected!("sse2"),
            ssse3: std::arch::is_x86_feature_detected!("ssse3"),
            avx2: std::arch::is_x86_feature_detected!("avx2"),
        }
    }
    #[cfg(not(any(target_arch = "x86_64", target_arch = "x86")))]
    {
        CpuFeatures::NONE
    }
}

/// Selection cache: 0 = undecided, else `Backend as u8 + 1`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

fn encode(backend: Backend) -> u8 {
    backend as u8 + 1
}

fn decode(raw: u8) -> Option<Backend> {
    match raw {
        1 => Some(Backend::Scalar),
        2 => Some(Backend::Sse2),
        3 => Some(Backend::Avx2),
        _ => None,
    }
}

/// The process-wide active backend: resolved once from `REKEY_SIMD`
/// and [`detect`], then cached (one relaxed atomic load per call).
#[inline]
pub fn active() -> Backend {
    if let Some(backend) = decode(ACTIVE.load(Ordering::Relaxed)) {
        return backend;
    }
    let request = std::env::var("REKEY_SIMD").ok();
    let resolved = Backend::resolve(request.as_deref(), detect());
    // A racing first call resolves to the same value; last store wins
    // harmlessly.
    ACTIVE.store(encode(resolved), Ordering::Relaxed);
    resolved
}

/// Forces the active backend for the rest of the process.
///
/// For benches and diagnostics that sweep backends in one process
/// (`perf_crypto` measures scalar/sse2/avx2 back to back). Callers
/// must pass a tier the CPU supports and must not race concurrent
/// crypto work; tests that only need per-call control should use the
/// explicit `*_with` kernel entry points instead.
pub fn force(backend: Backend) {
    ACTIVE.store(encode(backend), Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: CpuFeatures = CpuFeatures {
        sse2: true,
        ssse3: true,
        avx2: true,
    };
    const SSE2_ONLY: CpuFeatures = CpuFeatures {
        sse2: true,
        ssse3: false,
        avx2: false,
    };

    #[test]
    fn auto_picks_best_supported() {
        assert_eq!(Backend::resolve(None, ALL), Backend::Avx2);
        assert_eq!(Backend::resolve(Some("auto"), ALL), Backend::Avx2);
        assert_eq!(Backend::resolve(None, SSE2_ONLY), Backend::Sse2);
        assert_eq!(Backend::resolve(None, CpuFeatures::NONE), Backend::Scalar);
    }

    #[test]
    fn off_always_forces_scalar() {
        assert_eq!(Backend::resolve(Some("off"), ALL), Backend::Scalar);
        assert_eq!(Backend::resolve(Some("scalar"), ALL), Backend::Scalar);
    }

    #[test]
    fn explicit_request_is_capped_at_supported() {
        // The dispatcher must fall back cleanly when a feature is
        // absent: avx2 on an sse2-only host runs the sse2 tier, and
        // any x86 request on a featureless host runs scalar.
        assert_eq!(Backend::resolve(Some("avx2"), SSE2_ONLY), Backend::Sse2);
        assert_eq!(
            Backend::resolve(Some("avx2"), CpuFeatures::NONE),
            Backend::Scalar
        );
        assert_eq!(
            Backend::resolve(Some("sse2"), CpuFeatures::NONE),
            Backend::Scalar
        );
    }

    #[test]
    fn sse2_request_never_escalates() {
        assert_eq!(Backend::resolve(Some("sse2"), ALL), Backend::Sse2);
    }

    #[test]
    fn unknown_request_behaves_like_auto() {
        assert_eq!(Backend::resolve(Some("quantum"), ALL), Backend::Avx2);
        assert_eq!(Backend::resolve(Some(""), SSE2_ONLY), Backend::Sse2);
    }

    #[test]
    fn names_round_trip_through_resolve() {
        for backend in [Backend::Scalar, Backend::Sse2, Backend::Avx2] {
            assert_eq!(Backend::resolve(Some(backend.name()), ALL), backend);
        }
    }

    #[test]
    fn active_is_a_supported_tier() {
        let feats = detect();
        match active() {
            Backend::Avx2 => assert!(feats.avx2),
            Backend::Sse2 => assert!(feats.sse2),
            Backend::Scalar => {}
        }
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Backend::Avx2.to_string(), "avx2");
    }
}
