//! Durability-layer benchmark: what the WAL-before-fan-out policy and
//! the snapshot/recovery machinery cost, written to
//! `BENCH_persist.json` at the workspace root.
//!
//! Three sections:
//!
//! - **wal** — framed epoch-record append throughput (records/s and
//!   MB/s) for the in-memory backend (pure framing + CRC cost) and the
//!   directory backend with an fsync per record (the latency the
//!   daemon actually adds between `process_interval` and fan-out).
//! - **snapshot** — serialize-and-store plus load-and-restore times
//!   for a TT key forest at several member counts, with the blob size:
//!   how the `snapshot_every` bound trades WAL replay against pause.
//! - **recovery** — end-to-end `Journal::recover` over a churned WAL
//!   tail (no snapshot): deterministic re-execution of every logged
//!   interval, in records/s.
//!
//! Measured as the minimum of `REPS` wall-clock runs, like the other
//! perf benches.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::persist::EpochRecord;
use rekey_core::{GroupKeyManager, Join, Journal, Scheme, SchemeConfig};
use rekey_crypto::Key;
use rekey_keytree::MemberId;
use rekey_storage::{DirStorage, MemStorage, Storage};
use std::fmt::Write as _;
use std::time::Instant;

const REPS: usize = 3;
const MEM_WAL_RECORDS: usize = 50_000;
const DIR_WAL_RECORDS: usize = 200;
const SNAPSHOT_SIZES: [u64; 3] = [256, 1024, 4096];
const REPLAY_BOOTSTRAP: u64 = 512;
const REPLAY_RECORDS: usize = 64;

fn min_secs<F: FnMut()>(mut f: F) -> f64 {
    let mut min = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        min = min.min(start.elapsed().as_secs_f64());
    }
    min
}

/// A representative epoch record: 2 joins with hints, 1 leave.
fn sample_record(rng: &mut StdRng) -> Vec<u8> {
    let record = EpochRecord {
        epoch: 1,
        rng_state: rng.state_bytes(),
        joins: vec![
            Join::new(MemberId(1), Key::generate(rng)).with_loss_rate(0.04),
            Join::new(MemberId(2), Key::generate(rng)),
        ],
        leaves: vec![MemberId(3)],
    };
    let mut buf = Vec::new();
    record.encode_into(&mut buf);
    buf
}

struct WalRow {
    backend: &'static str,
    fsync_per_record: bool,
    record_bytes: usize,
    records_per_s: f64,
    mb_per_s: f64,
}

fn bench_wal(rng: &mut StdRng) -> Vec<WalRow> {
    let record = sample_record(rng);
    let mut rows = Vec::new();

    let secs = min_secs(|| {
        let mut storage = MemStorage::new();
        for _ in 0..MEM_WAL_RECORDS {
            storage.append_wal(&record).expect("append");
        }
        storage.sync_wal().expect("sync");
        std::hint::black_box(storage.wal_bytes().len());
    }) / MEM_WAL_RECORDS as f64;
    rows.push(WalRow {
        backend: "mem",
        fsync_per_record: false,
        record_bytes: record.len(),
        records_per_s: 1.0 / secs,
        mb_per_s: record.len() as f64 / secs / 1e6,
    });

    let dir = scratch_dir("wal");
    let secs = min_secs(|| {
        // Fresh file per rep so appends never compound across reps.
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let mut storage = DirStorage::open(&dir).expect("open");
        for _ in 0..DIR_WAL_RECORDS {
            storage.append_wal(&record).expect("append");
            // The daemon's policy: durable before fan-out.
            storage.sync_wal().expect("fsync");
        }
    }) / DIR_WAL_RECORDS as f64;
    let _ = std::fs::remove_dir_all(&dir);
    rows.push(WalRow {
        backend: "dir",
        fsync_per_record: true,
        record_bytes: record.len(),
        records_per_s: 1.0 / secs,
        mb_per_s: record.len() as f64 / secs / 1e6,
    });
    rows
}

struct SnapshotRow {
    members: u64,
    blob_bytes: usize,
    write_ms: f64,
    load_ms: f64,
}

fn build_manager() -> Box<dyn GroupKeyManager> {
    Scheme::Tt.build(&SchemeConfig::new().degree(4).s_period(8))
}

/// A TT manager with `members` members admitted (then aged past the
/// S-period so both partitions are populated).
fn populated_manager(members: u64, rng: &mut StdRng) -> Box<dyn GroupKeyManager> {
    let mut manager = build_manager();
    let joins: Vec<Join> = (0..members)
        .map(|m| Join::new(MemberId(m), Key::generate(rng)))
        .collect();
    manager
        .process_interval(&joins, &[], rng)
        .expect("bootstrap");
    for _ in 0..9 {
        manager.process_interval(&[], &[], rng).expect("age");
    }
    manager
}

fn bench_snapshot(rng: &mut StdRng) -> Vec<SnapshotRow> {
    let mut rows = Vec::new();
    for members in SNAPSHOT_SIZES {
        let manager = populated_manager(members, rng);
        let mut journal = Journal::new(MemStorage::new(), 0);
        let write_s = min_secs(|| {
            journal.snapshot(manager.as_ref(), rng).expect("snapshot");
        });
        let blob = journal
            .storage_mut()
            .snapshot_bytes()
            .expect("snapshot written");

        let load_s = min_secs(|| {
            let mut restored = build_manager();
            let mut journal =
                Journal::new(MemStorage::from_parts(Vec::new(), Some(blob.clone())), 0);
            let recovery = journal.recover(restored.as_mut()).expect("recover");
            assert!(recovery.snapshot_loaded);
            std::hint::black_box(restored.member_count());
        });
        rows.push(SnapshotRow {
            members,
            blob_bytes: blob.len(),
            write_ms: write_s * 1e3,
            load_ms: load_s * 1e3,
        });
    }
    rows
}

struct RecoveryRow {
    records: usize,
    replay_ms: f64,
    records_per_s: f64,
}

fn bench_recovery(rng: &mut StdRng) -> RecoveryRow {
    // Journal a bootstrapped group plus churned intervals, WAL only.
    let mut manager = build_manager();
    let mut journal = Journal::new(MemStorage::new(), 0);
    let mut sink = |_: &rekey_keytree::message::RekeyMessage| {};
    let bootstrap: Vec<Join> = (0..REPLAY_BOOTSTRAP)
        .map(|m| Join::new(MemberId(m), Key::generate(rng)))
        .collect();
    journal
        .durable_interval(manager.as_mut(), &bootstrap, &[], rng, &mut sink)
        .expect("bootstrap interval");
    for i in 0..REPLAY_RECORDS as u64 - 1 {
        let joins = vec![Join::new(
            MemberId(REPLAY_BOOTSTRAP + i),
            Key::generate(rng),
        )];
        let leaves = vec![MemberId(i)];
        journal
            .durable_interval(manager.as_mut(), &joins, &leaves, rng, &mut sink)
            .expect("churn interval");
    }
    let storage = journal.into_storage();
    let wal = storage.wal_bytes().to_vec();

    let replay_s = min_secs(|| {
        let mut restored = build_manager();
        let mut journal = Journal::new(MemStorage::from_parts(wal.clone(), None), 0);
        let recovery = journal.recover(restored.as_mut()).expect("recover");
        assert_eq!(recovery.replayed, REPLAY_RECORDS);
        std::hint::black_box(recovery.epoch);
    });
    RecoveryRow {
        records: REPLAY_RECORDS,
        replay_ms: replay_s * 1e3,
        records_per_s: REPLAY_RECORDS as f64 / replay_s,
    }
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("rekey-perf-persist-{tag}-{}", std::process::id()))
}

fn main() {
    let host = rekey_bench::emit::HostContext::detect();
    println!(
        "persistence bench ({} core(s), {})",
        host.available_parallelism, host.rustc
    );

    let mut rng = StdRng::seed_from_u64(11);
    let wal = bench_wal(&mut rng);
    for row in &wal {
        println!(
            "wal {:<4} (fsync/record: {:<5}) {:>12.0} records/s {:>9.2} MB/s ({} B/record)",
            row.backend, row.fsync_per_record, row.records_per_s, row.mb_per_s, row.record_bytes
        );
    }
    let snapshots = bench_snapshot(&mut rng);
    for row in &snapshots {
        println!(
            "snapshot n={:<5} {:>8} B  write {:>8.3} ms  load {:>8.3} ms",
            row.members, row.blob_bytes, row.write_ms, row.load_ms
        );
    }
    let recovery = bench_recovery(&mut rng);
    println!(
        "recovery replay {} records in {:.3} ms ({:.0} records/s)",
        recovery.records, recovery.replay_ms, recovery.records_per_s
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"perf_persist\",");
    host.push_json(&mut json, &[]);
    let _ = writeln!(json, "  \"reps_per_point\": {REPS},");
    json.push_str("  \"wal\": [\n");
    for (i, r) in wal.iter().enumerate() {
        let sep = if i + 1 == wal.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"backend\": \"{}\", \"fsync_per_record\": {}, \"record_bytes\": {}, \"records_per_s\": {:.1}, \"mb_per_s\": {:.3}}}{sep}",
            r.backend, r.fsync_per_record, r.record_bytes, r.records_per_s, r.mb_per_s
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"snapshot\": [\n");
    for (i, r) in snapshots.iter().enumerate() {
        let sep = if i + 1 == snapshots.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"members\": {}, \"blob_bytes\": {}, \"write_ms\": {:.4}, \"load_ms\": {:.4}}}{sep}",
            r.members, r.blob_bytes, r.write_ms, r.load_ms
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(
        json,
        "  \"recovery\": {{\"records\": {}, \"replay_ms\": {:.4}, \"records_per_s\": {:.1}}}",
        recovery.records, recovery.replay_ms, recovery.records_per_s
    );
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_persist.json");
    std::fs::write(path, &json).expect("write BENCH_persist.json");
    println!("wrote {path}");
}
