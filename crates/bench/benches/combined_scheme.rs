//! The §4.2 combination: two-partition rekeying + loss-homogenized
//! L-trees, with loss rates *learned* from transport feedback while
//! members sit in the S-partition.
//!
//! Runs one churn workload (80% short-lived members; 30% of receivers
//! behind 20%-loss links, the rest at 2%) through three key servers —
//! the one-keytree baseline, the TT-scheme, and the combined manager —
//! delivering every interval's rekey message with the executable
//! WKA-BKR protocol. Reports both of the paper's cost metrics at once:
//! key-server encryptions (§3) and reliable-transport transmissions
//! (§4). The combined scheme should win on both.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rekey_bench::{fmt, print_table, write_csv};
use rekey_core::combined::CombinedManager;
use rekey_core::one_tree::OneTreeManager;
use rekey_core::partition::TtManager;
use rekey_core::{GroupKeyManager, Join};
use rekey_crypto::Key;
use rekey_keytree::MemberId;
use rekey_sim::membership::{MembershipGenerator, MembershipParams};
use rekey_transport::interest::interest_map;
use rekey_transport::loss::Population;
use rekey_transport::wka_bkr::{self, WkaBkrConfig};
use std::collections::BTreeMap;

const N: usize = 1024;
const K: u64 = 5;
const HIGH_LOSS_FRACTION: f64 = 0.3;
const P_HIGH: f64 = 0.2;
const P_LOW: f64 = 0.02;
const WARMUP: usize = 10;
const MEASURED: usize = 25;

struct RunResult {
    server_keys: f64,
    transport_keys: f64,
}

/// Runs the workload through one manager; `feedback` receives
/// per-member (lost, seen) counts after every delivery (the combined
/// manager learns from it, the others ignore it).
fn run<M: GroupKeyManager>(
    manager: &mut M,
    mut feedback: impl FnMut(&mut M, &BTreeMap<MemberId, (u64, u64)>),
    seed: u64,
) -> RunResult {
    let mut rng = StdRng::seed_from_u64(seed);
    let params = MembershipParams {
        target_size: N,
        ..MembershipParams::paper_default()
    };
    let mut generator = MembershipGenerator::new(params, &mut rng);
    let mut losses: BTreeMap<MemberId, f64> = BTreeMap::new();
    fn assign_loss(losses: &mut BTreeMap<MemberId, f64>, id: MemberId, rng: &mut StdRng) {
        let p = if rng.gen::<f64>() < HIGH_LOSS_FRACTION {
            P_HIGH
        } else {
            P_LOW
        };
        losses.insert(id, p);
    }

    // Bootstrap the steady-state population.
    let joins: Vec<Join> = (0..generator.population() as u64)
        .map(|i| {
            assign_loss(&mut losses, MemberId(i), &mut rng);
            Join::new(MemberId(i), Key::generate(&mut rng))
        })
        .collect();
    manager.process_interval(&joins, &[], &mut rng).unwrap();

    let (mut server_keys, mut transport_keys, mut measured) = (0u64, 0u64, 0usize);
    for step in 0..(WARMUP + MEASURED) {
        let events = generator.next_interval(&mut rng);
        let joins: Vec<Join> = events
            .joins
            .iter()
            .map(|&(m, _)| {
                assign_loss(&mut losses, m, &mut rng);
                Join::new(m, Key::generate(&mut rng))
            })
            .collect();
        let out = manager
            .process_interval(&joins, &events.leaves, &mut rng)
            .unwrap();
        for m in &events.leaves {
            losses.remove(m);
        }

        // Deliver the interval's message over the lossy channel.
        let interest = interest_map(&out.message, |node, out| {
            manager.members_under_into(node, out)
        });
        let pop = Population::from_map(
            interest
                .keys()
                .map(|m| (*m, losses.get(m).copied().unwrap_or(P_LOW)))
                .collect(),
        );
        let delivery = wka_bkr::deliver(
            &out.message,
            &interest,
            &pop,
            &WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(delivery.report.complete, "delivery incomplete");
        feedback(manager, &delivery.lost_packets);

        if step >= WARMUP {
            server_keys += out.stats.encrypted_keys as u64;
            transport_keys += delivery.report.keys_transmitted as u64;
            measured += 1;
        }
    }
    RunResult {
        server_keys: server_keys as f64 / measured as f64,
        transport_keys: transport_keys as f64 / measured as f64,
    }
}

fn main() {
    println!(
        "N={N}, K={K}, alpha=0.8; {:.0}% of receivers at {P_HIGH} loss, rest at {P_LOW}",
        HIGH_LOSS_FRACTION * 100.0
    );

    let seed = 2003;
    let mut one = OneTreeManager::new(4);
    let baseline = run(&mut one, |_, _| {}, seed);
    let mut tt = TtManager::new(4, K);
    let tt_result = run(&mut tt, |_, _| {}, seed);
    let mut combined = CombinedManager::two_loss_classes(4, K);
    let combined_result = run(
        &mut combined,
        |mgr: &mut CombinedManager, feedback| {
            for (&m, &(lost, seen)) in feedback {
                mgr.record_feedback(m, lost, seen);
            }
        },
        seed,
    );

    let rows = [
        ("one-keytree", baseline.server_keys, baseline.transport_keys),
        ("tt-scheme", tt_result.server_keys, tt_result.transport_keys),
        (
            "combined (§3 + §4.2)",
            combined_result.server_keys,
            combined_result.transport_keys,
        ),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, server, transport)| {
            vec![
                name.to_string(),
                fmt(*server, 0),
                fmt(100.0 * (1.0 - server / baseline.server_keys), 1),
                fmt(*transport, 0),
                fmt(100.0 * (1.0 - transport / baseline.transport_keys), 1),
            ]
        })
        .collect();
    print_table(
        "Combined scheme — key-server and transport cost per interval (measured)",
        &[
            "scheme",
            "server keys",
            "saving%",
            "transport keys",
            "saving%",
        ],
        &table,
    );
    write_csv(
        "combined_scheme",
        &[
            "scheme",
            "server_keys",
            "server_saving",
            "transport_keys",
            "transport_saving",
        ],
        &table,
    );

    assert!(
        combined_result.server_keys < baseline.server_keys,
        "combined should beat the baseline on server cost"
    );
    assert!(
        combined_result.transport_keys < baseline.transport_keys,
        "combined should beat the baseline on transport cost"
    );
    println!("[claim OK] §4.2: the two optimizations compose — both cost metrics improve");
}
