//! Ablations for the design choices called out in DESIGN.md.
//!
//! 1. **QT vs TT crossover** — sweep the short-class mean `Ms` (which
//!    controls the S-partition population) to locate where the queue
//!    construction stops paying off.
//! 2. **k loss classes** — generalize §4's two trees to k trees on a
//!    three-point loss population.
//! 3. **WKA packing order** — breadth-first vs depth-first key
//!    assignment on the executable protocol (§2.2.1 mentions both).
//! 4. **Exact vs idealized `Ne`** — the paper's closed form vs our
//!    exact-tree-shape extension on non-power group sizes.
//! 5. **OFT vs LKH** — per-eviction encrypted keys of the two
//!    hierarchies (§2.1.1's applicability claim).
//! 6. **Model vs simulation** — the §3.3.1 steady-state model checked
//!    against the executable key server.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_analytic::appendix_a::{ne, ne_ideal};
use rekey_analytic::appendix_b::{ev_forest, ev_wka, ForestTree, LossMix};
use rekey_analytic::partition::PartitionParams;
use rekey_bench::{fmt, print_table, write_csv};
use rekey_crypto::Key;
use rekey_keytree::oft::OftServer;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;
use rekey_transport::interest::interest_map;
use rekey_transport::loss::Population;
use rekey_transport::wka_bkr::{self, Packing, WkaBkrConfig};

fn ablation_qt_tt_crossover() {
    let base = PartitionParams::paper_default();
    let headers = ["Ms (s)", "Ns (model)", "QT cost", "TT cost", "winner"];
    let mut rows = Vec::new();
    let mut crossover = None;
    let mut prev_winner = None;
    for ms in [30.0, 60.0, 120.0, 180.0, 300.0, 600.0, 1200.0] {
        let p = PartitionParams {
            mean_short: ms,
            ..base
        };
        let ss = p.steady_state();
        let (qt, tt) = (p.cost_qt(), p.cost_tt());
        let winner = if qt < tt { "QT" } else { "TT" };
        if let Some(prev) = prev_winner {
            if prev != winner && crossover.is_none() {
                crossover = Some(ms);
            }
        }
        prev_winner = Some(winner);
        rows.push(vec![
            fmt(ms, 0),
            fmt(ss.n_s, 0),
            fmt(qt, 0),
            fmt(tt, 0),
            winner.to_string(),
        ]);
    }
    print_table(
        "Ablation 1 — QT vs TT as the S-partition grows (sweep Ms, K = 10)",
        &headers,
        &rows,
    );
    write_csv("ablation_qt_tt", &headers, &rows);
    println!(
        "[info] QT (queue) wins while the S-partition is small; TT takes over around Ms ≈ {}",
        crossover.map(|c| format!("{c:.0} s")).unwrap_or("—".into())
    );
}

fn ablation_k_trees() {
    // Three-point loss population: 60% at 1%, 25% at 8%, 15% at 25%.
    let classes = [(0.60, 0.01), (0.25, 0.08), (0.15, 0.25)];
    let (n, l, d) = (65536u64, 256.0, 4u32);
    let mix = LossMix {
        classes: classes.to_vec(),
    };
    let one = ev_wka(n, l, d, &mix);

    let forest = |split: &[Vec<(f64, f64)>]| {
        let trees: Vec<ForestTree> = split
            .iter()
            .map(|group| {
                let total: f64 = group.iter().map(|(f, _)| f).sum();
                let mix = LossMix {
                    classes: group.iter().map(|&(f, p)| (f / total, p)).collect(),
                };
                ForestTree {
                    size: (total * n as f64).round() as u64,
                    mix,
                }
            })
            .collect();
        ev_forest(&trees, l, d)
    };

    let two = forest(&[vec![classes[0], classes[1]], vec![classes[2]]]);
    let three = forest(&[vec![classes[0]], vec![classes[1]], vec![classes[2]]]);

    let headers = ["organization", "cost (#keys)", "gain%"];
    let rows = vec![
        vec!["one keytree".into(), fmt(one, 0), fmt(0.0, 1)],
        vec![
            "two trees (low+mid | high)".into(),
            fmt(two, 0),
            fmt(100.0 * (1.0 - two / one), 1),
        ],
        vec![
            "three trees (one per class)".into(),
            fmt(three, 0),
            fmt(100.0 * (1.0 - three / one), 1),
        ],
    ];
    print_table(
        "Ablation 2 — number of loss-homogenized trees on a 3-class population",
        &headers,
        &rows,
    );
    write_csv("ablation_k_trees", &headers, &rows);
    assert!(three < one, "full homogenization should win");
    println!("[info] finer loss classes extract more of the available gain");
}

fn ablation_packing() {
    let mut rng = StdRng::seed_from_u64(5);
    let mut server = LkhServer::new(4, 0);
    let joins: Vec<(MemberId, Key)> = (0..1024)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    server.apply_batch(&joins, &[], &mut rng);
    let leavers: Vec<MemberId> = (0..16).map(|i| MemberId(i * 63)).collect();
    let out = server.apply_batch(&[], &leavers, &mut rng);
    let present: Vec<MemberId> = (0..1024)
        .map(MemberId)
        .filter(|m| !leavers.contains(m))
        .collect();
    let interest = interest_map(&out.message, |n, out| server.members_under_into(n, out));

    let mut results = Vec::new();
    for (label, packing) in [
        ("breadth-first", Packing::BreadthFirst),
        ("depth-first", Packing::DepthFirst),
    ] {
        let mut keys = 0usize;
        let mut rounds = 0usize;
        let runs = 12;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(100 + seed);
            let pop = Population::two_point(&present, 0.2, 0.2, 0.02, &mut rng);
            let cfg = WkaBkrConfig {
                packing,
                ..WkaBkrConfig::default()
            };
            let o = wka_bkr::deliver(&out.message, &interest, &pop, &cfg, &mut rng);
            assert!(o.report.complete);
            keys += o.report.keys_transmitted;
            rounds += o.report.rounds;
        }
        results.push(vec![
            label.to_string(),
            fmt(keys as f64 / runs as f64, 0),
            fmt(rounds as f64 / runs as f64, 1),
        ]);
    }
    print_table(
        "Ablation 3 — WKA packing order on the executable protocol (N=1024, L=16)",
        &["packing", "keys transmitted", "rounds"],
        &results,
    );
    write_csv("ablation_packing", &["packing", "keys", "rounds"], &results);
}

fn ablation_ne_exact() {
    let headers = ["N", "L", "Ne exact", "Ne ideal", "note"];
    let mut rows = Vec::new();
    for &(n, l) in &[(65536u64, 256.0f64), (4096, 64.0), (1024, 16.0)] {
        rows.push(vec![
            n.to_string(),
            fmt(l, 0),
            fmt(ne(n, l, 4), 1),
            fmt(ne_ideal(n, l, 4), 1),
            "full tree: identical".into(),
        ]);
    }
    for &(n, l) in &[(3000u64, 30.0f64), (100_000, 1000.0), (65535, 256.0)] {
        rows.push(vec![
            n.to_string(),
            fmt(l, 0),
            fmt(ne(n, l, 4), 1),
            "n/a".into(),
            "partially full: exact shape only".into(),
        ]);
    }
    print_table(
        "Ablation 4 — Appendix A closed form vs exact tree-shape evaluation",
        &headers,
        &rows,
    );
    write_csv("ablation_ne_exact", &headers, &rows);
}

fn ablation_oft_vs_lkh() {
    let mut rng = StdRng::seed_from_u64(9);
    let n = 256u64;

    let mut lkh = LkhServer::new(2, 0);
    let joins: Vec<(MemberId, Key)> = (0..n)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    lkh.apply_batch(&joins, &[], &mut rng);

    let mut oft = OftServer::new(1);
    for i in 0..n {
        let ik = Key::generate(&mut rng);
        oft.join(MemberId(i), &ik, &mut rng).unwrap();
    }

    let mut lkh_cost = 0usize;
    let mut oft_cost = 0usize;
    let evictions = 16u64;
    for i in 0..evictions {
        let m = MemberId(i * 3);
        lkh_cost += lkh
            .try_apply_batch(&[], &[m], &mut rng)
            .unwrap()
            .message
            .encrypted_key_count();
        oft_cost += oft.leave(m, &mut rng).unwrap().encrypted_key_count();
    }
    let rows = vec![
        vec![
            "LKH (d=2)".into(),
            fmt(lkh_cost as f64 / evictions as f64, 1),
        ],
        vec![
            "OFT (binary)".into(),
            fmt(oft_cost as f64 / evictions as f64, 1),
        ],
    ];
    print_table(
        "Ablation 5 — per-eviction encrypted keys: OFT vs binary LKH (N=256)",
        &["hierarchy", "keys per eviction"],
        &rows,
    );
    write_csv("ablation_oft_vs_lkh", &["hierarchy", "keys"], &rows);
    assert!(
        oft_cost < lkh_cost,
        "OFT ({oft_cost}) should halve binary-LKH eviction cost ({lkh_cost})"
    );
    println!("[info] OFT ≈ h+1 vs LKH ≈ 2h keys per eviction, as [BM00] claims");
}

fn ablation_model_vs_sim() {
    use rekey_core::one_tree::OneTreeManager;
    use rekey_core::partition::{QtManager, TtManager};
    use rekey_core::GroupKeyManager;
    use rekey_sim::driver::{run_scheme, SimConfig};
    use rekey_sim::membership::{MembershipGenerator, MembershipParams};

    let n = 2048usize;
    let params = MembershipParams {
        target_size: n,
        ..MembershipParams::paper_default()
    };
    let model = PartitionParams {
        group_size: n as u64,
        ..PartitionParams::paper_default()
    };
    let cfg = SimConfig {
        intervals: 40,
        warmup: 15,
        ..SimConfig::quick()
    };
    let simulate = |mgr: &mut dyn GroupKeyManager| {
        let mut rng = StdRng::seed_from_u64(4242);
        let mut generator = MembershipGenerator::new(params, &mut rng);
        run_scheme(mgr, &mut generator, &cfg, &mut rng).mean_keys_per_interval
    };
    let costs = model.costs();
    let rows = vec![
        (
            "one-keytree",
            simulate(&mut OneTreeManager::new(4)),
            costs.one_keytree,
        ),
        ("tt-scheme", simulate(&mut TtManager::new(4, 10)), costs.tt),
        ("qt-scheme", simulate(&mut QtManager::new(4, 10)), costs.qt),
    ];
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, sim, model)| {
            vec![
                name.to_string(),
                fmt(*sim, 0),
                fmt(*model, 0),
                fmt(sim / model, 3),
            ]
        })
        .collect();
    print_table(
        "Ablation 6 — executable system vs §3.3.1 model (N=2048, K=10)",
        &["scheme", "simulated", "model", "ratio"],
        &table,
    );
    write_csv(
        "ablation_model_vs_sim",
        &["scheme", "simulated", "model", "ratio"],
        &table,
    );
    for (name, sim, model) in rows {
        assert!(
            (sim / model - 1.0).abs() < 0.15,
            "{name}: simulation {sim:.0} deviates from model {model:.0}"
        );
    }
    println!("[info] simulation within 15% of the analytic model for every scheme");
}

fn ablation_probabilistic_tree() {
    use rekey_analytic::probabilistic::{
        expected_eviction_cost_balanced, expected_eviction_cost_huffman,
    };
    // [SMS00] (§2.3): organize the tree by revocation probability.
    // Population: a churner fraction is `ratio`× more likely to be
    // revoked than the stable majority.
    let n = 4096usize;
    let d = 4usize;
    let balanced = expected_eviction_cost_balanced(n, d);
    let headers = [
        "churner fraction",
        "churner weight",
        "Huffman cost",
        "balanced",
        "gain%",
    ];
    let mut rows = Vec::new();
    for (frac, ratio) in [(0.1, 10.0), (0.1, 50.0), (0.3, 10.0), (0.5, 5.0)] {
        let churners = (frac * n as f64) as usize;
        let mut weights = vec![1.0f64; n];
        for w in weights.iter_mut().take(churners) {
            *w = ratio;
        }
        let huff = expected_eviction_cost_huffman(&weights, d);
        rows.push(vec![
            fmt(frac, 1),
            fmt(ratio, 0),
            fmt(huff, 1),
            fmt(balanced, 1),
            fmt(100.0 * (1.0 - huff / balanced), 1),
        ]);
    }
    print_table(
        "Ablation 7 — probabilistic (Huffman) tree organization [SMS00], N=4096 d=4",
        &headers,
        &rows,
    );
    write_csv("ablation_probabilistic", &headers, &rows);
    println!(
        "[info] like the PT-scheme, this requires knowing revocation probabilities in advance (§3.4)"
    );
}

fn ablation_degree_sweep() {
    // The paper fixes d = 4; sweep the degree to show why: for batched
    // rekeying the cost Ne(N, L) is minimized around d = 4 (the
    // classic LKH result).
    let (n, l) = (65536u64, 1684.0f64);
    let headers = ["degree d", "Ne(N, J)", "vs d=4"];
    let baseline = ne(n, l, 4);
    let rows: Vec<Vec<String>> = [2u32, 3, 4, 6, 8, 16]
        .iter()
        .map(|&d| {
            let cost = ne(n, l, d);
            vec![
                d.to_string(),
                fmt(cost, 0),
                format!("{:+.1}%", 100.0 * (cost / baseline - 1.0)),
            ]
        })
        .collect();
    print_table(
        "Ablation 8 — key-tree degree sweep (Table 1 workload)",
        &headers,
        &rows,
    );
    write_csv("ablation_degree_sweep", &headers, &rows);
    let d2 = ne(n, l, 2);
    let d16 = ne(n, l, 16);
    assert!(
        baseline < d2 && baseline < d16,
        "d=4 should beat the extremes: d2={d2:.0} d4={baseline:.0} d16={d16:.0}"
    );
    println!("[info] d = 4 is near-optimal for batched rekeying, as the paper assumes");
}

fn main() {
    ablation_qt_tt_crossover();
    ablation_k_trees();
    ablation_packing();
    ablation_ne_exact();
    ablation_oft_vs_lkh();
    ablation_model_vs_sim();
    ablation_probabilistic_tree();
    ablation_degree_sweep();
}
