//! Crypto kernel benchmark: per-backend (scalar/sse2/avx2) throughput
//! of the three SIMD-dispatched kernels plus batched keywrap, written
//! to `BENCH_crypto.json` at the workspace root.
//!
//! The headline metric is **encrypted keys per second** — the
//! denominator of every cost model in the repo (the paper counts
//! rekey cost in encrypted keys; this bench says how many of those a
//! second of CPU buys). Bulk kernels additionally report MB/sec, and
//! keywrap reports the equivalent wire MB/sec (keys/sec × the 60-byte
//! wire size).
//!
//! Backends are swept with the explicit `*_with` kernel entry points
//! (and `rekey_crypto::simd::force` for the whole-stack keywrap path),
//! so one process measures every tier the CPU supports back to back.
//! The `scalar_vs_best` block records the speedup of the best
//! supported tier over scalar per kernel; on hosts with no SIMD it
//! honestly records 1.0.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::keywrap::{WrapKek, WRAPPED_LEN};
use rekey_crypto::simd::{self, Backend};
use rekey_crypto::{chacha20, sha256, Key};
use rekey_transport::gf256;
use std::fmt::Write as _;
use std::time::Instant;

/// Bulk-kernel buffer size: large enough that the multi-block ChaCha20
/// lanes and the GF(256) vector loop dominate setup cost.
const BUF_LEN: usize = 16 * 1024;

/// Keys wrapped per keywrap rep (one batch through a cached KEK).
const WRAP_KEYS: usize = 4096;

const REPS: usize = 5;

struct Row {
    kernel: &'static str,
    backend: Backend,
    mb_per_s: f64,
    /// Encrypted keys per second; only for the keywrap kernel.
    keys_per_s: Option<f64>,
}

/// Minimum wall-clock of `REPS` runs of `f` (seconds).
fn time_min<F: FnMut()>(mut f: F) -> f64 {
    let mut min = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        min = min.min(start.elapsed().as_secs_f64());
    }
    min
}

fn bench_chacha20(backend: Backend, rows: &mut Vec<Row>) {
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    let mut buf = vec![0x5Au8; BUF_LEN];
    const ITERS: usize = 64;
    let secs = time_min(|| {
        for i in 0..ITERS {
            chacha20::xor_in_place_with(backend, &key, &nonce, i as u32, &mut buf);
        }
    });
    std::hint::black_box(&buf);
    rows.push(Row {
        kernel: "chacha20_multiblock",
        backend,
        mb_per_s: (ITERS * BUF_LEN) as f64 / secs / 1e6,
        keys_per_s: None,
    });
}

fn bench_sha256(backend: Backend, rows: &mut Vec<Row>) {
    let data = vec![0xABu8; BUF_LEN];
    const ITERS: usize = 32;
    let mut sink = 0u8;
    let secs = time_min(|| {
        for _ in 0..ITERS {
            sink ^= sha256::digest_with(backend, &data)[0];
        }
    });
    std::hint::black_box(sink);
    rows.push(Row {
        kernel: "sha256",
        backend,
        mb_per_s: (ITERS * BUF_LEN) as f64 / secs / 1e6,
        keys_per_s: None,
    });
}

fn bench_gf256(backend: Backend, rows: &mut Vec<Row>) {
    let src: Vec<u8> = (0..BUF_LEN).map(|i| (i * 37 + 5) as u8).collect();
    let mut dst = vec![0xC3u8; BUF_LEN];
    const ITERS: usize = 128;
    let secs = time_min(|| {
        for i in 0..ITERS {
            gf256::mul_acc_with(backend, &mut dst, &src, (i % 254 + 2) as u8);
        }
    });
    std::hint::black_box(&dst);
    rows.push(Row {
        kernel: "gf256_mul_acc",
        backend,
        mb_per_s: (ITERS * BUF_LEN) as f64 / secs / 1e6,
        keys_per_s: None,
    });
}

/// Batched keywrap through the whole stack (HKDF-derived `WrapKek`
/// setup once, then ChaCha20 + HMAC-SHA256 per key) — the engine's
/// execute-phase workload. Uses `simd::force` so the internal
/// `simd::active()` dispatch resolves to the swept backend.
fn bench_keywrap(backend: Backend, rows: &mut Vec<Row>) {
    simd::force(backend);
    let mut rng = StdRng::seed_from_u64(0xD15C);
    let kek = Key::generate(&mut rng);
    let payloads: Vec<Key> = (0..WRAP_KEYS).map(|_| Key::generate(&mut rng)).collect();
    let mut sink = 0u8;
    let secs = time_min(|| {
        let cached = WrapKek::new(&kek);
        for (i, payload) in payloads.iter().enumerate() {
            let nonce = (i as u128).to_le_bytes()[..12]
                .try_into()
                .expect("12 bytes");
            sink ^= cached.wrap_with_nonce(payload, nonce).to_bytes()[0];
        }
    });
    std::hint::black_box(sink);
    let keys_per_s = WRAP_KEYS as f64 / secs;
    rows.push(Row {
        kernel: "keywrap_batch",
        backend,
        mb_per_s: keys_per_s * WRAPPED_LEN as f64 / 1e6,
        keys_per_s: Some(keys_per_s),
    });
}

fn main() {
    let host = rekey_bench::emit::HostContext::detect();
    let cores = host.available_parallelism;
    let feats = simd::detect();
    let selected = simd::active();

    let mut backends = vec![Backend::Scalar];
    if feats.sse2 {
        backends.push(Backend::Sse2);
    }
    if feats.avx2 {
        backends.push(Backend::Avx2);
    }

    println!(
        "crypto kernel bench ({cores} core(s), sse2={} ssse3={} avx2={}, selected backend {selected}, {})",
        feats.sse2, feats.ssse3, feats.avx2, host.rustc
    );

    let mut rows: Vec<Row> = Vec::new();
    for &backend in &backends {
        bench_chacha20(backend, &mut rows);
        bench_sha256(backend, &mut rows);
        bench_gf256(backend, &mut rows);
        bench_keywrap(backend, &mut rows);
    }
    // Leave the process-wide selection as the environment dictates.
    simd::force(selected);

    for row in &rows {
        match row.keys_per_s {
            Some(k) => println!(
                "{:<20} {:<7} {:>10.1} MB/s  {:>12.0} keys/s",
                row.kernel,
                row.backend.name(),
                row.mb_per_s,
                k
            ),
            None => println!(
                "{:<20} {:<7} {:>10.1} MB/s",
                row.kernel,
                row.backend.name(),
                row.mb_per_s
            ),
        }
    }

    // Best-supported-tier vs scalar ratio per kernel (1.0 when only
    // scalar is available).
    let kernels = [
        "chacha20_multiblock",
        "sha256",
        "gf256_mul_acc",
        "keywrap_batch",
    ];
    let ratio_for = |kernel: &str| -> f64 {
        let scalar = rows
            .iter()
            .find(|r| r.kernel == kernel && r.backend == Backend::Scalar)
            .map(|r| r.mb_per_s)
            .unwrap_or(f64::NAN);
        let best = rows
            .iter()
            .filter(|r| r.kernel == kernel)
            .map(|r| r.mb_per_s)
            .fold(f64::NAN, f64::max);
        best / scalar
    };
    for kernel in kernels {
        println!("{kernel}: best/scalar = {:.2}x", ratio_for(kernel));
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"perf_crypto\",");
    host.push_json(
        &mut json,
        &[
            format!(
                "    \"cpu_features\": {{\"sse2\": {}, \"ssse3\": {}, \"avx2\": {}}},",
                feats.sse2, feats.ssse3, feats.avx2
            ),
            format!("    \"selected_backend\": \"{selected}\","),
        ],
    );
    let _ = writeln!(json, "  \"reps_per_point\": {REPS},");
    let _ = writeln!(json, "  \"bulk_buffer_bytes\": {BUF_LEN},");
    let _ = writeln!(json, "  \"keywrap_batch_keys\": {WRAP_KEYS},");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let keys = match r.keys_per_s {
            Some(k) => format!("{k:.0}"),
            None => "null".to_string(),
        };
        let _ = writeln!(
            json,
            "    {{\"kernel\": \"{}\", \"backend\": \"{}\", \"mb_per_s\": {:.2}, \"keys_per_s\": {keys}}}{sep}",
            r.kernel,
            r.backend.name(),
            r.mb_per_s
        );
    }
    json.push_str("  ],\n");
    json.push_str("  \"scalar_vs_best\": {\n");
    for (i, kernel) in kernels.iter().enumerate() {
        let sep = if i + 1 == kernels.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{kernel}\": {:.3}{sep}", ratio_for(kernel));
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_crypto.json");
    std::fs::write(path, &json).expect("write BENCH_crypto.json");
    println!("wrote {path}");
}
