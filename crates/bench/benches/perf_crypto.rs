//! Criterion micro-benchmarks for the cryptographic substrate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::{chacha20, hmac, keywrap, sha256, Key};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("sha256");
    for size in [64usize, 1024, 16 * 1024] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("digest_{size}B"), |b| {
            b.iter(|| sha256::digest(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let data = vec![0u8; 1024];
    c.bench_function("hmac_sha256_1KiB", |b| {
        b.iter(|| hmac::hmac(b"key", std::hint::black_box(&data)))
    });
}

fn bench_chacha20(c: &mut Criterion) {
    let key = [7u8; 32];
    let nonce = [9u8; 12];
    let mut group = c.benchmark_group("chacha20");
    for size in [64usize, 1500, 16 * 1024] {
        let data = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("encrypt_{size}B"), |b| {
            b.iter(|| chacha20::encrypt(&key, &nonce, 0, std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_keywrap(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let kek = Key::generate(&mut rng);
    let payload = Key::generate(&mut rng);
    c.bench_function("keywrap_wrap", |b| {
        b.iter(|| keywrap::wrap_with_nonce(&kek, &payload, [3; 12]))
    });
    let wrapped = keywrap::wrap_with_nonce(&kek, &payload, [3; 12]);
    c.bench_function("keywrap_unwrap", |b| {
        b.iter(|| keywrap::unwrap(&kek, std::hint::black_box(&wrapped)).unwrap())
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_hmac,
    bench_chacha20,
    bench_keywrap
);
criterion_main!(benches);
