//! Figure 3: impact of the S-period on key-server rekeying cost.
//!
//! X-axis: `K = Ts/Tp` from 0 to 20. Y-axis: encrypted keys per
//! periodic rekey for the one-keytree, TT, QT and PT schemes, under
//! the Table 1 defaults (N = 65536, d = 4, Tp = 60 s, Ms = 3 min,
//! Ml = 3 h, α = 0.8).
//!
//! Paper landmarks reproduced: one-keytree flat at ≈1.65e4; TT up to
//! ≈25% below it around K = 10; QT beats TT at small K and loses at
//! large K; PT flat at ≈40% below.

use rekey_analytic::partition::PartitionParams;
use rekey_bench::{check_claim, fmt, print_table, write_csv};

fn main() {
    let base = PartitionParams::paper_default();
    println!(
        "Table 1 defaults: Tp={}s N={} d={} Ms={}s Ml={}s alpha={}",
        base.rekey_period,
        base.group_size,
        base.degree,
        base.mean_short,
        base.mean_long,
        base.alpha
    );

    let headers = ["K", "one-keytree", "TT-scheme", "QT-scheme", "PT-scheme"];
    let mut rows = Vec::new();
    let mut at_k10 = None;
    for k in 0..=20u32 {
        let p = PartitionParams { k, ..base };
        let c = p.costs();
        if k == 10 {
            at_k10 = Some(c);
        }
        rows.push(vec![
            k.to_string(),
            fmt(c.one_keytree, 0),
            fmt(c.tt, 0),
            fmt(c.qt, 0),
            fmt(c.pt, 0),
        ]);
    }
    print_table(
        "Fig. 3 — rekeying cost (#keys) vs S-period K = Ts/Tp",
        &headers,
        &rows,
    );
    write_csv("fig3_speriod", &headers, &rows);

    let c10 = at_k10.expect("K=10 computed");
    check_claim(
        "Fig. 3: TT reduction at K=10 (paper: up to 25%)",
        1.0 - c10.tt / c10.one_keytree,
        0.25,
        0.03,
    );
    check_claim(
        "Fig. 3: PT reduction (paper: up to 40%)",
        1.0 - c10.pt / c10.one_keytree,
        0.40,
        0.04,
    );
    // Crossover: QT wins early, TT wins late.
    let early = PartitionParams { k: 2, ..base }.costs();
    assert!(early.qt < early.tt, "QT should win at K=2");
    let late = PartitionParams { k: 16, ..base }.costs();
    assert!(late.tt < late.qt, "TT should win at K=16");
    println!("[claim OK] Fig. 3: QT/TT crossover in K reproduced");
    // K=0 degenerates to the one-keytree scheme.
    let k0 = PartitionParams { k: 0, ..base }.costs();
    assert!((k0.tt - k0.one_keytree).abs() / k0.one_keytree < 1e-6);
    assert!((k0.qt - k0.one_keytree).abs() / k0.one_keytree < 1e-6);
    println!("[claim OK] Fig. 3: K=0 falls back to the one-keytree scheme");
}
