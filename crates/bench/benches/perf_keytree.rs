//! Criterion benchmarks for key-tree operations: the key server's
//! processing cost that periodic batching is designed to reduce.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;

fn build_server(n: u64, rng: &mut StdRng) -> LkhServer {
    let mut server = LkhServer::new(4, 0);
    let joins: Vec<(MemberId, Key)> = (0..n).map(|i| (MemberId(i), Key::generate(rng))).collect();
    server.apply_batch(&joins, &[], rng);
    server
}

fn bench_single_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let server = build_server(4096, &mut rng);

    c.bench_function("lkh_single_leave_n4096", |b| {
        b.iter_batched(
            || (server.clone(), StdRng::seed_from_u64(1)),
            |(mut s, mut r)| s.leave(MemberId(7), &mut r).unwrap(),
            BatchSize::SmallInput,
        )
    });

    c.bench_function("lkh_single_join_n4096", |b| {
        let ik = Key::generate(&mut rng);
        b.iter_batched(
            || (server.clone(), ik.clone(), StdRng::seed_from_u64(2)),
            |(mut s, ik, mut r)| s.join(MemberId(999_999), ik, &mut r),
            BatchSize::SmallInput,
        )
    });
}

fn bench_batch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let server = build_server(4096, &mut rng);
    let leavers: Vec<MemberId> = (0..64).map(|i| MemberId(i * 61)).collect();
    let joins: Vec<(MemberId, Key)> = (0..64u64)
        .map(|i| (MemberId(100_000 + i), Key::generate(&mut rng)))
        .collect();

    c.bench_function("lkh_batch_64in_64out_n4096", |b| {
        b.iter_batched(
            || (server.clone(), StdRng::seed_from_u64(4)),
            |(mut s, mut r)| s.apply_batch(&joins, &leavers, &mut r),
            BatchSize::SmallInput,
        )
    });
}

fn bench_member_processing(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut server = LkhServer::new(4, 0);
    let joins: Vec<(MemberId, Key)> = (0..4096)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    let bootstrap = server.apply_batch(&joins, &[], &mut rng);
    let mut member = GroupMember::new(MemberId(17), joins[17].1.clone());
    member.process(&bootstrap.message).unwrap();
    let leavers: Vec<MemberId> = (0..64).map(|i| MemberId(1 + i * 61)).collect();
    let update = server.apply_batch(&[], &leavers, &mut rng);

    c.bench_function("member_process_batch_message", |b| {
        b.iter_batched(
            || member.clone(),
            |mut m| m.process(&update.message).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_single_ops,
    bench_batch,
    bench_member_processing
);
criterion_main!(benches);
