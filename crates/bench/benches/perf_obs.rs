//! Observability overhead benchmark: the per-probe cost of the
//! instrumentation that PR 7 threads through the hot paths, written to
//! `BENCH_obs.json` at the workspace root.
//!
//! The number that matters is the **disabled** probe cost — every
//! `count`/`time_ns`/`span!` site in the engine and the network stack
//! pays it even when nobody installed a recorder. That path is one
//! relaxed atomic load plus a predicted branch, and the acceptance bar
//! is ≤ 5 ns/probe. The enabled costs and the flight-recorder push
//! cost (a seqlock write: one `fetch_add` plus five relaxed stores)
//! are reported alongside so regressions in either path show up in
//! the same artifact.
//!
//! Measured per (probe, state): minimum of `REPS` wall-clock runs over
//! a large iteration count, divided down to ns/op.

use rekey_obs::{Collector, FlightKind, FlightRecorder};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

const REPS: usize = 5;
/// Iterations per timed rep; large enough that `Instant` overhead and
/// loop setup vanish against even the ~1 ns disabled probe.
const ITERS: usize = 4_000_000;

struct Row {
    probe: &'static str,
    state: &'static str,
    ns_per_op: f64,
}

/// Minimum over `REPS` runs of `f` (whole-run seconds), as ns/op.
fn time_min_ns_per_op<F: FnMut()>(mut f: F) -> f64 {
    let mut min = f64::INFINITY;
    for _ in 0..REPS {
        let start = Instant::now();
        f();
        min = min.min(start.elapsed().as_secs_f64());
    }
    min * 1e9 / ITERS as f64
}

fn bench_probes(state: &'static str, rows: &mut Vec<Row>) {
    rows.push(Row {
        probe: "counter",
        state,
        ns_per_op: time_min_ns_per_op(|| {
            for i in 0..ITERS {
                rekey_obs::count("bench.obs.counter", std::hint::black_box(i as u64) & 1);
            }
        }),
    });
    rows.push(Row {
        probe: "timer",
        state,
        ns_per_op: time_min_ns_per_op(|| {
            for i in 0..ITERS {
                rekey_obs::time_ns("bench.obs.timer", std::hint::black_box(i as u64));
            }
        }),
    });
    rows.push(Row {
        probe: "span",
        state,
        ns_per_op: time_min_ns_per_op(|| {
            for _ in 0..ITERS {
                let guard = rekey_obs::span!("bench.obs.span");
                std::hint::black_box(&guard);
            }
        }),
    });
}

fn main() {
    let host = rekey_bench::emit::HostContext::detect();
    println!(
        "observability probe bench ({} core(s), {})",
        host.available_parallelism, host.rustc
    );

    let mut rows: Vec<Row> = Vec::new();

    // Disabled: no recorder installed; probes must be near-free.
    rekey_obs::uninstall();
    bench_probes("disabled", &mut rows);

    // Enabled: a live Collector behind the global slot.
    let collector = Arc::new(Collector::new());
    rekey_obs::install(collector.clone());
    bench_probes("enabled", &mut rows);
    rekey_obs::uninstall();
    std::hint::black_box(collector.snapshot());

    // Flight-recorder push: wait-free seqlock write into a fixed ring.
    let flight = FlightRecorder::new(4096);
    rows.push(Row {
        probe: "flight_record",
        state: "enabled",
        ns_per_op: time_min_ns_per_op(|| {
            for i in 0..ITERS {
                flight.record(FlightKind::Nack, std::hint::black_box(i as u64), 3);
            }
        }),
    });
    std::hint::black_box(flight.recorded());

    for row in &rows {
        println!(
            "{:<14} {:<9} {:>8.2} ns/op",
            row.probe, row.state, row.ns_per_op
        );
    }
    let disabled_max = rows
        .iter()
        .filter(|r| r.state == "disabled")
        .map(|r| r.ns_per_op)
        .fold(0.0f64, f64::max);
    println!("disabled probe worst case: {disabled_max:.2} ns/op (budget 5.00)");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"perf_obs\",");
    host.push_json(&mut json, &[]);
    let _ = writeln!(json, "  \"reps_per_point\": {REPS},");
    let _ = writeln!(json, "  \"iters_per_rep\": {ITERS},");
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 == rows.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"probe\": \"{}\", \"state\": \"{}\", \"ns_per_op\": {:.3}}}{sep}",
            r.probe, r.state, r.ns_per_op
        );
    }
    json.push_str("  ],\n");
    let _ = writeln!(json, "  \"disabled_probe_max_ns\": {disabled_max:.3}");
    json.push_str("}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("wrote {path}");
}
