//! Figure 6: impact of group loss heterogeneity on the reliable
//! rekey-transport bandwidth (WKA-BKR model, Appendix B).
//!
//! X-axis: α, the fraction of high-loss receivers (p_h = 20%,
//! p_l = 2%). Y-axis: expected encrypted-key transmissions for one
//! rekey (N = 65536, L = 256, d = 4) under three organizations:
//! one key tree, two random key trees, two loss-homogenized key trees.
//!
//! Paper landmarks reproduced: random splitting is slightly *worse*
//! than one tree; loss homogenization wins by up to 12.1% near
//! α = 0.3; all schemes coincide at α = 0 and α = 1.

use rekey_analytic::appendix_b::{ev_forest, ev_wka, ForestTree, LossMix};
use rekey_bench::{check_claim, fmt, print_table, write_csv};

const N: u64 = 65536;
const L: f64 = 256.0;
const D: u32 = 4;
const P_HIGH: f64 = 0.2;
const P_LOW: f64 = 0.02;

fn one_keytree(alpha: f64) -> f64 {
    ev_wka(N, L, D, &LossMix::two_point(alpha, P_HIGH, P_LOW))
}

fn two_random(alpha: f64) -> f64 {
    let mix = LossMix::two_point(alpha, P_HIGH, P_LOW);
    ev_forest(
        &[
            ForestTree {
                size: N / 2,
                mix: mix.clone(),
            },
            ForestTree { size: N / 2, mix },
        ],
        L,
        D,
    )
}

fn two_homogenized(alpha: f64) -> f64 {
    let n_high = (alpha * N as f64).round() as u64;
    ev_forest(
        &[
            ForestTree {
                size: N - n_high,
                mix: LossMix::homogeneous(P_LOW),
            },
            ForestTree {
                size: n_high,
                mix: LossMix::homogeneous(P_HIGH),
            },
        ],
        L,
        D,
    )
}

fn main() {
    println!("N={N} L={L} d={D} p_high={P_HIGH} p_low={P_LOW}");
    let headers = [
        "alpha",
        "one-keytree",
        "two-random",
        "loss-homogenized",
        "gain%",
    ];
    let mut rows = Vec::new();
    let mut peak = 0.0f64;
    for i in 0..=20 {
        let alpha = i as f64 / 20.0;
        let one = one_keytree(alpha);
        let random = two_random(alpha);
        let homog = two_homogenized(alpha);
        let gain = 1.0 - homog / one;
        peak = peak.max(gain);
        rows.push(vec![
            fmt(alpha, 2),
            fmt(one, 0),
            fmt(random, 0),
            fmt(homog, 0),
            fmt(gain * 100.0, 1),
        ]);
    }
    print_table(
        "Fig. 6 — rekeying cost (#keys) vs fraction of high-loss receivers",
        &headers,
        &rows,
    );
    write_csv("fig6_loss_heterogeneity", &headers, &rows);

    check_claim(
        "Fig. 6: peak loss-homogenization gain (paper: 12.1% near alpha=0.3)",
        peak,
        0.121,
        0.03,
    );
    // Random splitting never helps, and hurts slightly in the middle.
    for alpha in [0.2, 0.5, 0.8] {
        let one = one_keytree(alpha);
        let random = two_random(alpha);
        assert!(
            random >= one && random < one * 1.05,
            "alpha={alpha}: random {random:.0} vs one {one:.0}"
        );
    }
    println!("[claim OK] Fig. 6: two-random-keytree slightly worse than one-keytree");
    // Homogeneous extremes coincide.
    for alpha in [0.0, 1.0] {
        let one = one_keytree(alpha);
        let homog = two_homogenized(alpha);
        assert!(
            (one - homog).abs() / one < 1e-9,
            "alpha={alpha}: schemes should coincide"
        );
    }
    println!("[claim OK] Fig. 6: all schemes coincide at alpha = 0 and alpha = 1");
}
