//! §4.4 extension: loss homogenization over *proactive FEC* transport.
//!
//! "We have also evaluated our scheme based on proactive FEC
//! [YLZL01] … the performance gain is more significant — up to 25.7%
//! when ph = 20%, pl = 2% and α = 0.1."
//!
//! Sweeps α and reports the FEC-transport cost of one mixed group vs
//! the loss-homogenized split, next to the WKA-BKR gain at the same
//! point; checks that the FEC gain exceeds the WKA gain and peaks in
//! the paper's ballpark at small α.

use rekey_analytic::appendix_b::{ev_forest, ev_wka, ForestTree, LossMix};
use rekey_analytic::fec_model::{fec_cost_packets, FecParams};
use rekey_bench::{fmt, print_table, write_csv};

const N: f64 = 65536.0;
const KEYS: f64 = 6000.0;
const P_HIGH: f64 = 0.2;
const P_LOW: f64 = 0.02;

fn fec_gain(alpha: f64, params: &FecParams) -> f64 {
    let mixed = fec_cost_packets(
        N as u64,
        KEYS,
        &LossMix::two_point(alpha, P_HIGH, P_LOW),
        params,
    );
    let split = fec_cost_packets(
        ((1.0 - alpha) * N) as u64,
        (1.0 - alpha) * KEYS,
        &LossMix::homogeneous(P_LOW),
        params,
    ) + fec_cost_packets(
        (alpha * N) as u64,
        alpha * KEYS,
        &LossMix::homogeneous(P_HIGH),
        params,
    );
    1.0 - split / mixed
}

fn wka_gain(alpha: f64) -> f64 {
    let one = ev_wka(
        N as u64,
        256.0,
        4,
        &LossMix::two_point(alpha, P_HIGH, P_LOW),
    );
    let n_high = (alpha * N).round() as u64;
    let homog = ev_forest(
        &[
            ForestTree {
                size: N as u64 - n_high,
                mix: LossMix::homogeneous(P_LOW),
            },
            ForestTree {
                size: n_high,
                mix: LossMix::homogeneous(P_HIGH),
            },
        ],
        256.0,
        4,
    );
    1.0 - homog / one
}

fn main() {
    let params = FecParams::default();
    println!(
        "FEC: k={} packets/block, proactivity rho={}, {} keys/packet; p_high={P_HIGH} p_low={P_LOW}",
        params.block_packets, params.proactivity, params.keys_per_packet
    );

    let headers = ["alpha", "FEC gain%", "WKA-BKR gain%"];
    let mut rows = Vec::new();
    let mut fec_peak = 0.0f64;
    for i in 0..=10 {
        let alpha = i as f64 / 10.0;
        let fg = if alpha == 0.0 || alpha == 1.0 {
            0.0
        } else {
            fec_gain(alpha, &params)
        };
        let wg = if alpha == 0.0 || alpha == 1.0 {
            0.0
        } else {
            wka_gain(alpha)
        };
        fec_peak = fec_peak.max(fg);
        rows.push(vec![fmt(alpha, 1), fmt(fg * 100.0, 1), fmt(wg * 100.0, 1)]);
    }
    print_table(
        "§4.4 — loss-homogenization gain: proactive FEC vs WKA-BKR transport",
        &headers,
        &rows,
    );
    write_csv("fec_extension", &headers, &rows);

    let fg = fec_gain(0.1, &params);
    let wg = wka_gain(0.1);
    assert!(
        fg > wg,
        "FEC gain {fg:.3} at alpha=0.1 should exceed the WKA gain {wg:.3}"
    );
    println!(
        "[claim OK] §4.4: FEC gain ({:.1}%) exceeds WKA-BKR gain ({:.1}%) at alpha=0.1",
        fg * 100.0,
        wg * 100.0
    );
    assert!(
        (0.15..0.45).contains(&fec_peak),
        "FEC peak gain {fec_peak:.3} out of the paper's ballpark (25.7%)"
    );
    println!(
        "[claim OK] §4.4: peak FEC gain {:.1}% vs paper's 25.7% (our own FEC model, see DESIGN.md)",
        fec_peak * 100.0
    );
}
