//! Parallel rekey-engine benchmark: wall-clock time of one mixed
//! rekey batch at 1/2/4/8 encryption workers for several group sizes,
//! written to `BENCH_parallel.json` at the workspace root.
//!
//! The engine guarantees byte-identical output for every worker count
//! (asserted here as well), so the only thing that may change with
//! `--threads` is time. Speedups require physical cores: on a 1-core
//! host every worker count measures the same sequential work plus
//! thread overhead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_crypto::Key;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;
use std::fmt::Write as _;
use std::time::Instant;

const GROUP_SIZES: [u64; 3] = [4096, 16384, 65536];
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

struct Sample {
    n: u64,
    workers: usize,
    encrypted_keys: usize,
    mean_s: f64,
    min_s: f64,
    speedup_vs_seq: f64,
}

fn build_server(n: u64) -> LkhServer {
    let mut rng = StdRng::seed_from_u64(n);
    let mut server = LkhServer::new(4, 0);
    let joins: Vec<(MemberId, Key)> = (0..n)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    server.apply_batch(&joins, &[], &mut rng);
    server
}

/// One rekey interval with churn at 1/16 of the group: half leaves,
/// half joins — a group-oriented batch, the expensive mode.
fn churn(n: u64) -> (Vec<(MemberId, Key)>, Vec<MemberId>) {
    let mut rng = StdRng::seed_from_u64(n ^ 0xC0FFEE);
    let each = (n / 32).max(8);
    let stride = (n / each) | 1;
    let leavers: Vec<MemberId> = (0..each).map(|i| MemberId((i * stride) % n)).collect();
    let joins: Vec<(MemberId, Key)> = (0..each)
        .map(|i| (MemberId(1_000_000 + i), Key::generate(&mut rng)))
        .collect();
    (joins, leavers)
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|c| c.get())
        .unwrap_or(1);
    println!("parallel rekey engine bench ({cores} core(s) available)");

    let mut samples: Vec<Sample> = Vec::new();
    for n in GROUP_SIZES {
        let base = build_server(n);
        let (joins, leavers) = churn(n);
        let mut seq_min = 0.0f64;
        let mut reference = None;
        for workers in WORKER_COUNTS {
            let mut times = Vec::with_capacity(REPS);
            let mut encrypted_keys = 0;
            for rep in 0..REPS {
                let mut server = base.clone();
                server.set_parallelism(workers);
                let mut rng = StdRng::seed_from_u64(7 + rep as u64);
                let start = Instant::now();
                let out = server.apply_batch(&joins, &leavers, &mut rng);
                times.push(start.elapsed().as_secs_f64());
                encrypted_keys = out.stats.encrypted_keys;
                if rep == 0 {
                    // The engine's core guarantee, re-checked on bench
                    // inputs: worker count never changes the message.
                    match &reference {
                        None => reference = Some(out.message),
                        Some(msg) => assert_eq!(msg, &out.message, "output diverged"),
                    }
                }
            }
            let min_s = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let mean_s = times.iter().sum::<f64>() / times.len() as f64;
            if workers == 1 {
                seq_min = min_s;
            }
            let speedup = seq_min / min_s;
            println!(
                "n={n:>6} workers={workers}  min {:>9.3} ms  mean {:>9.3} ms  {encrypted_keys} keys  speedup {speedup:>5.2}x",
                min_s * 1e3,
                mean_s * 1e3
            );
            samples.push(Sample {
                n,
                workers,
                encrypted_keys,
                mean_s,
                min_s,
                speedup_vs_seq: speedup,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"perf_parallel\",");
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"reps_per_point\": {REPS},");
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"n\": {}, \"workers\": {}, \"encrypted_keys\": {}, \"min_s\": {:.6}, \"mean_s\": {:.6}, \"speedup_vs_seq\": {:.3}}}{sep}",
            s.n, s.workers, s.encrypted_keys, s.min_s, s.mean_s, s.speedup_vs_seq
        );
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}
