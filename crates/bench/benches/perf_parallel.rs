//! Parallel rekey-engine benchmark: wall-clock time of one mixed
//! rekey batch across a sweep of encryption worker counts (default
//! 1/2/4/8, capped at `available_parallelism`; override with
//! `--workers 1,2,4,8`) for several group sizes, written to
//! `BENCH_parallel.json` at the workspace root.
//!
//! Two scenarios: a single LKH tree (workers split one tree's plan
//! into chunks) and a four-tree loss-homogenized forest through the
//! unified engine (workers execute whole trees concurrently — the
//! cross-tree fan-out path).
//!
//! The engine guarantees byte-identical output for every worker count
//! (asserted here as well), so the only thing that may change with
//! `--threads` is time. Speedups require physical cores: on a 1-core
//! host every worker count measures the same sequential work plus
//! thread overhead.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::loss_forest::LossForestManager;
use rekey_core::{GroupKeyManager, Join};
use rekey_crypto::Key;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;
use std::fmt::Write as _;
use std::time::Instant;

const GROUP_SIZES: [u64; 3] = [4096, 16384, 65536];
const DEFAULT_WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
const REPS: usize = 5;

/// Worker counts to sweep and whether the default sweep was capped.
///
/// An explicit `--workers 1,2,4` (or `--workers=1,2,4`) after `--` is
/// taken verbatim. Otherwise the default sweep is capped at
/// `available_parallelism`: worker counts above the core count cannot
/// speed anything up, so the uncapped sweep only produced
/// honest-but-noisy <1.0× rows on small hosts. The cap is recorded in
/// the JSON host block so readers know which rows were skipped.
fn worker_counts(cores: usize) -> (Vec<usize>, bool) {
    let args: Vec<String> = std::env::args().collect();
    for (i, arg) in args.iter().enumerate() {
        let list = if let Some(rest) = arg.strip_prefix("--workers=") {
            Some(rest.to_string())
        } else if arg == "--workers" {
            args.get(i + 1).cloned()
        } else {
            None
        };
        if let Some(list) = list {
            let parsed: Vec<usize> = list
                .split(',')
                .filter_map(|w| w.trim().parse().ok())
                .filter(|&w| w > 0)
                .collect();
            if !parsed.is_empty() {
                return (parsed, false);
            }
        }
    }
    let capped: Vec<usize> = DEFAULT_WORKER_COUNTS
        .iter()
        .copied()
        .filter(|&w| w <= cores)
        .collect();
    let was_capped = capped.len() < DEFAULT_WORKER_COUNTS.len();
    (if capped.is_empty() { vec![1] } else { capped }, was_capped)
}

/// Loss-class boundaries for the cross-tree scenario: four trees.
const BOUNDARIES: [f64; 3] = [0.25, 0.5, 0.75];

struct Sample {
    scenario: &'static str,
    n: u64,
    workers: usize,
    encrypted_keys: usize,
    mean_s: f64,
    min_s: f64,
    speedup_vs_seq: f64,
}

fn build_server(n: u64) -> LkhServer {
    let mut rng = StdRng::seed_from_u64(n);
    let mut server = LkhServer::new(4, 0);
    let joins: Vec<(MemberId, Key)> = (0..n)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    server.apply_batch(&joins, &[], &mut rng);
    server
}

/// One rekey interval with churn at 1/16 of the group: half leaves,
/// half joins — a group-oriented batch, the expensive mode.
fn churn(n: u64) -> (Vec<(MemberId, Key)>, Vec<MemberId>) {
    let mut rng = StdRng::seed_from_u64(n ^ 0xC0FFEE);
    let each = (n / 32).max(8);
    let stride = (n / each) | 1;
    let leavers: Vec<MemberId> = (0..each).map(|i| MemberId((i * stride) % n)).collect();
    let joins: Vec<(MemberId, Key)> = (0..each)
        .map(|i| (MemberId(1_000_000 + i), Key::generate(&mut rng)))
        .collect();
    (joins, leavers)
}

/// Representative loss rate for class `c` under [`BOUNDARIES`].
fn class_loss(c: u64) -> f64 {
    [0.1, 0.3, 0.6, 0.9][(c % 4) as usize]
}

/// A four-tree loss-homogenized forest with members striped across all
/// classes — the engine's cross-tree fan-out path, where whole trees
/// (not chunks of one plan) are executed by parallel workers.
fn build_forest(n: u64) -> LossForestManager {
    let mut rng = StdRng::seed_from_u64(n ^ 0xF0);
    let mut manager = LossForestManager::new(4, &BOUNDARIES);
    let joins: Vec<Join> = (0..n)
        .map(|i| Join::new(MemberId(i), Key::generate(&mut rng)).with_loss_rate(class_loss(i)))
        .collect();
    manager
        .process_interval(&joins, &[], &mut rng)
        .expect("forest seed interval");
    manager
}

/// Churn for the forest scenario: leavers and joiners striped across
/// every loss class, so all four trees carry planned work.
fn forest_churn(n: u64) -> (Vec<Join>, Vec<MemberId>) {
    let mut rng = StdRng::seed_from_u64(n ^ 0xBEEF);
    let each = (n / 32).max(8);
    let stride = (n / each) | 1;
    let leavers: Vec<MemberId> = (0..each).map(|i| MemberId((i * stride) % n)).collect();
    let joins: Vec<Join> = (0..each)
        .map(|i| {
            Join::new(MemberId(2_000_000 + i), Key::generate(&mut rng))
                .with_loss_rate(class_loss(i))
        })
        .collect();
    (joins, leavers)
}

fn main() {
    let host = rekey_bench::emit::HostContext::detect();
    let cores = host.available_parallelism;
    let (sweep, sweep_capped) = worker_counts(cores);
    println!(
        "parallel rekey engine bench ({cores} core(s) available, {})",
        host.rustc
    );
    println!(
        "worker sweep: {sweep:?}{}",
        if sweep_capped {
            " (default sweep capped at available_parallelism; pass --workers to override)"
        } else {
            ""
        }
    );

    let mut samples: Vec<Sample> = Vec::new();
    for n in GROUP_SIZES {
        let base = build_server(n);
        let (joins, leavers) = churn(n);
        let mut seq_min = 0.0f64;
        let mut reference = None;
        for (wi, &workers) in sweep.iter().enumerate() {
            let mut times = Vec::with_capacity(REPS);
            let mut encrypted_keys = 0;
            for rep in 0..REPS {
                let mut server = base.clone();
                server.set_parallelism(workers);
                let mut rng = StdRng::seed_from_u64(7 + rep as u64);
                let start = Instant::now();
                let out = server.apply_batch(&joins, &leavers, &mut rng);
                times.push(start.elapsed().as_secs_f64());
                encrypted_keys = out.stats.encrypted_keys;
                if rep == 0 {
                    // The engine's core guarantee, re-checked on bench
                    // inputs: worker count never changes the message.
                    match &reference {
                        None => reference = Some(out.message),
                        Some(msg) => assert_eq!(msg, &out.message, "output diverged"),
                    }
                }
            }
            let min_s = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let mean_s = times.iter().sum::<f64>() / times.len() as f64;
            if wi == 0 {
                seq_min = min_s;
            }
            let speedup = seq_min / min_s;
            println!(
                "single-tree n={n:>6} workers={workers}  min {:>9.3} ms  mean {:>9.3} ms  {encrypted_keys} keys  speedup {speedup:>5.2}x",
                min_s * 1e3,
                mean_s * 1e3
            );
            samples.push(Sample {
                scenario: "single-tree",
                n,
                workers,
                encrypted_keys,
                mean_s,
                min_s,
                speedup_vs_seq: speedup,
            });
        }
    }

    // Cross-tree fan-out: a four-tree loss forest through the unified
    // engine, where parallelism distributes whole trees across workers
    // (each tree's plan was drawn sequentially, so output bytes are
    // pinned regardless of worker count — asserted below).
    for n in GROUP_SIZES {
        let base = build_forest(n);
        let (joins, leavers) = forest_churn(n);
        let mut seq_min = 0.0f64;
        let mut reference = None;
        for (wi, &workers) in sweep.iter().enumerate() {
            let mut times = Vec::with_capacity(REPS);
            let mut encrypted_keys = 0;
            for rep in 0..REPS {
                let mut manager = base.clone();
                manager.set_parallelism(workers);
                let mut rng = StdRng::seed_from_u64(11 + rep as u64);
                let start = Instant::now();
                let out = manager
                    .process_interval(&joins, &leavers, &mut rng)
                    .expect("forest churn interval");
                times.push(start.elapsed().as_secs_f64());
                encrypted_keys = out.stats.encrypted_keys;
                if rep == 0 {
                    match &reference {
                        None => reference = Some(out.message),
                        Some(msg) => assert_eq!(msg, &out.message, "output diverged"),
                    }
                }
            }
            let min_s = times.iter().cloned().fold(f64::INFINITY, f64::min);
            let mean_s = times.iter().sum::<f64>() / times.len() as f64;
            if wi == 0 {
                seq_min = min_s;
            }
            let speedup = seq_min / min_s;
            println!(
                "cross-tree  n={n:>6} workers={workers}  min {:>9.3} ms  mean {:>9.3} ms  {encrypted_keys} keys  speedup {speedup:>5.2}x",
                min_s * 1e3,
                mean_s * 1e3
            );
            samples.push(Sample {
                scenario: "cross-tree-forest",
                n,
                workers,
                encrypted_keys,
                mean_s,
                min_s,
                speedup_vs_seq: speedup,
            });
        }
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"perf_parallel\",");
    host.push_json(
        &mut json,
        &[
            format!(
                "    \"worker_sweep\": [{}],",
                sweep
                    .iter()
                    .map(|w| w.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            format!("    \"worker_sweep_capped_at_cores\": {sweep_capped},"),
        ],
    );
    let _ = writeln!(json, "  \"host_cores\": {cores},");
    let _ = writeln!(json, "  \"reps_per_point\": {REPS},");
    json.push_str("  \"results\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let sep = if i + 1 == samples.len() { "" } else { "," };
        let _ = writeln!(
            json,
            "    {{\"scenario\": \"{}\", \"n\": {}, \"workers\": {}, \"encrypted_keys\": {}, \"min_s\": {:.6}, \"mean_s\": {:.6}, \"speedup_vs_seq\": {:.3}}}{sep}",
            s.scenario, s.n, s.workers, s.encrypted_keys, s.min_s, s.mean_s, s.speedup_vs_seq
        );
    }
    json.push_str("  ]\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_parallel.json");
    std::fs::write(path, &json).expect("write BENCH_parallel.json");
    println!("wrote {path}");
}
