//! Figure 7: impact of misplacing members when organizing the
//! loss-homogenized key trees.
//!
//! A fraction β of the high-loss tree's members are actually low-loss
//! and the same head count of the low-loss tree's members are actually
//! high-loss (the key server mis-estimated their loss rates at join
//! time). N = 65536, L = 256, d = 4, α = 0.2, p_h = 20%, p_l = 2%.
//!
//! Paper landmarks reproduced: the gain degrades as β grows; small β
//! (≤ 0.1) still beats the one-keytree scheme; at β = 0.8 the scheme
//! is no better than one keytree; β = 1.0 is better than β = 0.8
//! (the "swapped" trees are loss-homogenized again, just mislabeled).

use rekey_analytic::appendix_b::{ev_forest, ev_wka, ForestTree, LossMix};
use rekey_bench::{fmt, print_table, write_csv};

const N: u64 = 65536;
const L: f64 = 256.0;
const D: u32 = 4;
const P_HIGH: f64 = 0.2;
const P_LOW: f64 = 0.02;
const ALPHA: f64 = 0.2;

fn mis_partitioned(beta: f64) -> f64 {
    let n_high = (ALPHA * N as f64).round() as u64;
    let n_low = N - n_high;
    // β of the nominal high tree is actually low-loss; the same head
    // count of the nominal low tree is actually high-loss.
    let moved = beta * n_high as f64;
    let high_tree = LossMix::two_point(1.0 - beta, P_HIGH, P_LOW);
    let low_tree = LossMix::two_point(moved / n_low as f64, P_HIGH, P_LOW);
    ev_forest(
        &[
            ForestTree {
                size: n_low,
                mix: low_tree,
            },
            ForestTree {
                size: n_high,
                mix: high_tree,
            },
        ],
        L,
        D,
    )
}

fn main() {
    println!("N={N} L={L} d={D} alpha={ALPHA} p_high={P_HIGH} p_low={P_LOW}");
    let one = ev_wka(N, L, D, &LossMix::two_point(ALPHA, P_HIGH, P_LOW));
    let correct = mis_partitioned(0.0);

    let headers = ["beta", "one-keytree", "mis-partitioned", "correct", "gain%"];
    let mut rows = Vec::new();
    for i in 0..=20 {
        let beta = i as f64 / 20.0;
        let mis = mis_partitioned(beta);
        rows.push(vec![
            fmt(beta, 2),
            fmt(one, 0),
            fmt(mis, 0),
            fmt(correct, 0),
            fmt(100.0 * (1.0 - mis / one), 1),
        ]);
    }
    print_table(
        "Fig. 7 — rekeying cost (#keys) vs fraction of misplaced receivers",
        &headers,
        &rows,
    );
    write_csv("fig7_misplacement", &headers, &rows);

    assert!(correct < one, "correct partitioning must beat one keytree");
    assert!(
        mis_partitioned(0.1) < one,
        "beta=0.1 should still beat the one-keytree scheme"
    );
    println!("[claim OK] Fig. 7: small misplacement (beta<=0.1) still wins");
    assert!(
        mis_partitioned(0.4) > mis_partitioned(0.1),
        "cost should grow with beta"
    );
    assert!(
        mis_partitioned(0.8) > one * 0.99,
        "beta=0.8 should erase the benefit (paper: slightly worse than one keytree)"
    );
    println!("[claim OK] Fig. 7: beta=0.8 erases the benefit");
    assert!(
        mis_partitioned(1.0) < mis_partitioned(0.8),
        "beta=1.0 should beat beta=0.8 (trees fully swapped are homogeneous again)"
    );
    println!("[claim OK] Fig. 7: beta=1.0 better than beta=0.8 (paper's closing observation)");
}
