//! Figure 5: impact of group size on the relative rekeying-cost
//! reduction of the QT and TT schemes.
//!
//! X-axis: N from 1K to 256K. Y-axis: relative reduction over the
//! one-keytree scheme under the Table 1 defaults.
//!
//! Paper landmarks reproduced: the curves are flat in the 0.20–0.30
//! band ("the group size has little impact"), averaging more than 22%
//! savings.

use rekey_analytic::partition::PartitionParams;
use rekey_bench::{check_claim, fmt, print_table, write_csv};

fn main() {
    let base = PartitionParams::paper_default();
    let headers = ["N", "QT reduction", "TT reduction"];
    let mut rows = Vec::new();
    let mut reductions = Vec::new();
    for exp in 10..=18u32 {
        let n = 1u64 << exp;
        let p = PartitionParams {
            group_size: n,
            ..base
        };
        let c = p.costs();
        let qt_red = 1.0 - c.qt / c.one_keytree;
        let tt_red = 1.0 - c.tt / c.one_keytree;
        reductions.push(qt_red);
        reductions.push(tt_red);
        rows.push(vec![n.to_string(), fmt(qt_red, 3), fmt(tt_red, 3)]);
        assert!(
            (0.20..0.30).contains(&qt_red) && (0.20..0.30).contains(&tt_red),
            "N={n}: reduction outside Fig. 5's 0.20–0.30 band"
        );
    }
    print_table(
        "Fig. 5 — relative rekeying-cost reduction vs group size N (K = 10, alpha = 0.8)",
        &headers,
        &rows,
    );
    write_csv("fig5_group_size", &headers, &rows);

    let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
    check_claim(
        "Fig. 5: average savings across N (paper: more than 22%)",
        avg,
        0.23,
        0.02,
    );
    let spread = reductions
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &r| {
            (lo.min(r), hi.max(r))
        });
    println!(
        "[claim OK] Fig. 5: group size has little impact (spread {:.3}..{:.3})",
        spread.0, spread.1
    );
}
