//! Figure 4: impact of membership-duration heterogeneity.
//!
//! X-axis: α, the fraction of short-lived (class Cs) joins, 0..1.
//! Y-axis: encrypted keys per rekey for the four schemes at K = 10.
//!
//! Paper landmarks reproduced: both partition schemes beat the
//! one-keytree scheme for α > 0.6 with the peak improvement 31.4% at
//! α = 0.9; the one-keytree scheme wins for α ≤ 0.4; PT always wins.

use rekey_analytic::partition::PartitionParams;
use rekey_bench::{check_claim, fmt, print_table, write_csv};

fn main() {
    let base = PartitionParams::paper_default();
    let headers = [
        "alpha",
        "one-keytree",
        "TT-scheme",
        "QT-scheme",
        "PT-scheme",
        "best-gain%",
    ];
    let mut rows = Vec::new();
    let mut peak = (0.0f64, 0.0f64);
    for i in 0..=20 {
        let alpha = i as f64 / 20.0;
        let p = PartitionParams { alpha, ..base };
        let c = p.costs();
        let gain = 1.0 - c.tt.min(c.qt) / c.one_keytree;
        if gain > peak.1 {
            peak = (alpha, gain);
        }
        rows.push(vec![
            fmt(alpha, 2),
            fmt(c.one_keytree, 0),
            fmt(c.tt, 0),
            fmt(c.qt, 0),
            fmt(c.pt, 0),
            fmt(gain * 100.0, 1),
        ]);
    }
    print_table(
        "Fig. 4 — rekeying cost (#keys) vs fraction of class Cs members (K = 10)",
        &headers,
        &rows,
    );
    write_csv("fig4_heterogeneity", &headers, &rows);

    check_claim(
        "Fig. 4: peak improvement at alpha=0.9 (paper: 31.4%)",
        {
            let c = PartitionParams { alpha: 0.9, ..base }.costs();
            1.0 - c.tt.min(c.qt) / c.one_keytree
        },
        0.314,
        0.03,
    );
    println!(
        "[info] overall peak improvement {:.1}% at alpha = {:.2}",
        peak.1 * 100.0,
        peak.0
    );

    for alpha in [0.7, 0.8, 0.9] {
        let c = PartitionParams { alpha, ..base }.costs();
        assert!(
            c.tt < c.one_keytree && c.qt < c.one_keytree,
            "partition schemes should win at alpha={alpha}"
        );
    }
    for alpha in [0.1, 0.2, 0.3, 0.4] {
        let c = PartitionParams { alpha, ..base }.costs();
        assert!(
            c.one_keytree < c.tt && c.one_keytree < c.qt,
            "one-keytree should win at alpha={alpha}"
        );
    }
    println!("[claim OK] Fig. 4: crossover near alpha = 0.5–0.6 reproduced");
    // At the degenerate extremes (α = 0 or 1) PT coincides with the
    // one-keytree scheme by construction; over the mixed range it is
    // the best of all schemes, as the paper observes.
    for alpha in [0.05, 0.25, 0.5, 0.75, 0.9, 0.95] {
        let c = PartitionParams { alpha, ..base }.costs();
        assert!(
            c.pt <= c.one_keytree + 1.0 && c.pt <= c.tt + 1.0 && c.pt <= c.qt + 1.0,
            "PT should be best at alpha={alpha}"
        );
    }
    println!("[claim OK] Fig. 4: PT-scheme works the best across the mixed range");
}
