//! Criterion benchmarks for the reliable-transport substrate:
//! Reed–Solomon coding and a full WKA-BKR delivery round.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rekey_crypto::Key;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;
use rekey_transport::interest::interest_map;
use rekey_transport::loss::Population;
use rekey_transport::rs::ReedSolomon;
use rekey_transport::wka_bkr::{self, WkaBkrConfig};

fn bench_reed_solomon(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (k, m, shard_len) = (8usize, 4usize, 1400usize);
    let data: Vec<Vec<u8>> = (0..k)
        .map(|_| (0..shard_len).map(|_| rng.gen()).collect())
        .collect();
    let rs = ReedSolomon::new(k, m);

    let mut group = c.benchmark_group("reed_solomon");
    group.throughput(Throughput::Bytes((k * shard_len) as u64));
    group.bench_function("encode_8+4_1400B", |b| b.iter(|| rs.encode(&data)));

    let parity = rs.encode(&data);
    let mut shards: Vec<Option<Vec<u8>>> = data
        .iter()
        .chain(parity.iter())
        .cloned()
        .map(Some)
        .collect();
    shards[0] = None;
    shards[3] = None;
    shards[5] = None;
    group.bench_function("reconstruct_3_erasures", |b| {
        b.iter(|| rs.reconstruct(&shards).unwrap())
    });
    group.finish();
}

fn bench_wka_delivery(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let mut server = LkhServer::new(4, 0);
    let joins: Vec<(MemberId, Key)> = (0..1024)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    server.apply_batch(&joins, &[], &mut rng);
    let leavers: Vec<MemberId> = (0..16).map(|i| MemberId(i * 60)).collect();
    let out = server.apply_batch(&[], &leavers, &mut rng);
    let present: Vec<MemberId> = (0..1024)
        .map(MemberId)
        .filter(|m| !leavers.contains(m))
        .collect();
    let interest = interest_map(&out.message, |n, out| server.members_under_into(n, out));
    let pop = Population::homogeneous(&present, 0.05);

    c.bench_function("wka_bkr_delivery_n1024_l16_p5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            wka_bkr::deliver(
                &out.message,
                &interest,
                &pop,
                &WkaBkrConfig::default(),
                &mut rng,
            )
        })
    });

    c.bench_function("interest_map_n1024", |b| {
        b.iter(|| interest_map(&out.message, |n, out| server.members_under_into(n, out)))
    });
}

criterion_group!(benches, bench_reed_solomon, bench_wka_delivery);
criterion_main!(benches);
