//! Transport-layer extension experiments (§2.2 and §4.4 discussion).
//!
//! 1. **Multi-group fairness** ([YSI99], §4.4): when each
//!    loss-homogenized key tree is served on its *own* multicast
//!    group, low-loss receivers stop receiving the redundancy
//!    provisioned for high-loss receivers — "it helps achieve
//!    inter-receiver fairness because the low loss members will not
//!    receive redundant keys that are unnecessary to them."
//! 2. **Soft real-time proactivity** (§2.2): rekey delivery must
//!    finish before the next rekey interval; proactive FEC parity
//!    trades bandwidth for deadline probability. Sweeps ρ and reports
//!    P(delivered within 2 rounds).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_bench::{fmt, print_table, write_csv};
use rekey_crypto::Key;
use rekey_keytree::server::LkhServer;
use rekey_keytree::MemberId;
use rekey_transport::interest::interest_map;
use rekey_transport::loss::Population;
use rekey_transport::{fec, wka_bkr};

/// Builds a freshly-churned tree: N members, L evicted.
fn churned_tree(
    n: u64,
    l: u64,
    id_base: u64,
    rng: &mut StdRng,
) -> (
    LkhServer,
    rekey_keytree::message::RekeyMessage,
    Vec<MemberId>,
) {
    let mut server = LkhServer::new(4, 0);
    let joins: Vec<(MemberId, Key)> = (0..n)
        .map(|i| (MemberId(id_base + i), Key::generate(rng)))
        .collect();
    server.apply_batch(&joins, &[], rng);
    // An odd stride scatters the evictions across subtrees (a stride
    // that is a power of d would evict one whole subtree, which is
    // artificially cheap).
    let stride = (n / l) | 1;
    let leavers: Vec<MemberId> = (0..l).map(|i| MemberId(id_base + i * stride)).collect();
    let out = server.apply_batch(&[], &leavers, rng);
    let present: Vec<MemberId> = (0..n)
        .map(|i| MemberId(id_base + i))
        .filter(|m| !leavers.contains(m))
        .collect();
    (server, out.message, present)
}

fn multigroup_fairness() {
    let runs = 6u64;
    let (n, l) = (2048u64, 32u64);
    let alpha = 0.3;
    let (p_high, p_low) = (0.2, 0.02);

    // Scenario A: one multicast group, one mixed tree. Low-loss
    // members receive every retransmission provoked by high-loss
    // members.
    let mut a_low_volume = 0.0f64;
    // Scenario B: two loss-homogenized trees, each on its own
    // multicast group; members only receive their tree's packets.
    let mut b_low_volume = 0.0f64;

    for seed in 0..runs {
        let mut rng = StdRng::seed_from_u64(seed);
        let (server, message, present) = churned_tree(n, l, 0, &mut rng);
        let interest = interest_map(&message, |node, out| server.members_under_into(node, out));
        let pop = Population::two_point(&present, alpha, p_high, p_low, &mut rng);
        let outcome = wka_bkr::deliver(
            &message,
            &interest,
            &pop,
            &wka_bkr::WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(outcome.report.complete);
        let (mut vol, mut cnt) = (0u64, 0u64);
        for (m, keys) in &outcome.received_keys {
            if pop.loss_of(*m) == p_low {
                vol += keys;
                cnt += 1;
            }
        }
        a_low_volume += vol as f64 / cnt as f64;

        // B: the low-loss members as their own tree + group.
        let mut rng = StdRng::seed_from_u64(seed);
        let n_low = ((1.0 - alpha) * n as f64) as u64;
        let l_low = ((1.0 - alpha) * l as f64).round() as u64;
        let (server, message, present) = churned_tree(n_low, l_low.max(1), 0, &mut rng);
        let interest = interest_map(&message, |node, out| server.members_under_into(node, out));
        let pop = Population::homogeneous(&present, p_low);
        let outcome = wka_bkr::deliver(
            &message,
            &interest,
            &pop,
            &wka_bkr::WkaBkrConfig::default(),
            &mut rng,
        );
        assert!(outcome.report.complete);
        let vol: u64 = outcome.received_keys.values().sum();
        b_low_volume += vol as f64 / outcome.received_keys.len() as f64;
    }
    a_low_volume /= runs as f64;
    b_low_volume /= runs as f64;

    let rows = vec![
        vec!["one group, mixed tree".to_string(), fmt(a_low_volume, 1)],
        vec![
            "per-class groups, homogenized trees".to_string(),
            fmt(b_low_volume, 1),
        ],
    ];
    print_table(
        "Extension 1 — keys received by an average LOW-loss member (N=2048, α=0.3)",
        &["delivery organization", "keys received"],
        &rows,
    );
    write_csv(
        "ext_multigroup_fairness",
        &["organization", "keys_received"],
        &rows,
    );
    assert!(
        b_low_volume < a_low_volume,
        "per-class groups should reduce low-loss receiver volume: {b_low_volume:.1} vs {a_low_volume:.1}"
    );
    println!(
        "[claim OK] §4.4: multi-group delivery cuts low-loss receiver volume by {:.1}% (inter-receiver fairness)",
        100.0 * (1.0 - b_low_volume / a_low_volume)
    );
}

fn fec_deadline_sweep() {
    let runs = 20u64;
    let headers = ["rho", "mean packets", "mean rounds", "P(rounds<=2)"];
    let mut rows = Vec::new();
    let mut first_meeting_deadline = None;

    for rho in [1.0f64, 1.25, 1.5, 1.75, 2.0, 2.5, 3.0] {
        let mut packets = 0usize;
        let mut rounds = 0usize;
        let mut within = 0usize;
        for seed in 0..runs {
            let mut rng = StdRng::seed_from_u64(7_000 + seed);
            let (server, message, present) = churned_tree(1024, 16, 0, &mut rng);
            let interest = interest_map(&message, |node, out| server.members_under_into(node, out));
            let pop = Population::two_point(&present, 0.2, 0.2, 0.02, &mut rng);
            let cfg = fec::FecConfig {
                proactivity: rho,
                ..fec::FecConfig::default()
            };
            let outcome = fec::deliver(&message, &interest, &pop, &cfg, &mut rng);
            assert!(outcome.report.complete);
            packets += outcome.report.packets;
            rounds += outcome.report.rounds;
            if outcome.report.rounds <= 2 {
                within += 1;
            }
        }
        let p_deadline = within as f64 / runs as f64;
        if p_deadline >= 0.9 && first_meeting_deadline.is_none() {
            first_meeting_deadline = Some(rho);
        }
        rows.push(vec![
            fmt(rho, 1),
            fmt(packets as f64 / runs as f64, 1),
            fmt(rounds as f64 / runs as f64, 2),
            fmt(p_deadline, 2),
        ]);
    }
    print_table(
        "Extension 2 — proactive FEC: bandwidth vs soft real-time deadline (N=1024, L=16)",
        &headers,
        &rows,
    );
    write_csv("ext_fec_deadline", &headers, &rows);
    println!(
        "[info] smallest proactivity meeting a 2-round deadline with P>=0.9: {}",
        first_meeting_deadline
            .map(|r| format!("rho = {r:.1}"))
            .unwrap_or("none in the swept range".into())
    );
}

fn main() {
    multigroup_fairness();
    fec_deadline_sweep();
}
