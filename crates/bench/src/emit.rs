//! Shared emit helpers for the `BENCH_*.json` reports.
//!
//! Every perf bench (and the `rekey workload` sweep) writes a
//! hand-rolled JSON report with the same host-context header:
//! `available_parallelism`, `rustc`, and the externally supplied
//! `BENCH_TIMESTAMP`. The escaping, toolchain probing, and header
//! layout used to be copy-pasted per bench; this module is the single
//! implementation, and the byte layout it emits matches the existing
//! committed `BENCH_*.json` files exactly.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The `rustc --version` line of the toolchain on `PATH`, or
/// `"unknown"`.
pub fn rustc_version() -> String {
    std::process::Command::new("rustc")
        .arg("--version")
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|v| v.trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The host-context fields every `BENCH_*.json` report carries.
#[derive(Debug, Clone)]
pub struct HostContext {
    /// `std::thread::available_parallelism()` (1 on error).
    pub available_parallelism: usize,
    /// Output of [`rustc_version`].
    pub rustc: String,
    /// The `BENCH_TIMESTAMP` environment variable, if set (timestamps
    /// are injected, never sampled, so reports stay reproducible).
    pub timestamp: Option<String>,
}

impl HostContext {
    /// Probes the current host and environment.
    pub fn detect() -> Self {
        HostContext {
            available_parallelism: std::thread::available_parallelism()
                .map(|c| c.get())
                .unwrap_or(1),
            rustc: rustc_version(),
            timestamp: std::env::var("BENCH_TIMESTAMP").ok(),
        }
    }

    /// Appends the standard two-space-indented host block —
    /// `  "host": { ... },\n` — optionally with extra pre-rendered
    /// lines (e.g. `perf_crypto`'s `cpu_features`) between
    /// `available_parallelism` and `rustc`. Byte-compatible with the
    /// blocks the benches used to emit inline.
    pub fn push_json(&self, json: &mut String, extra_lines: &[String]) {
        json.push_str("  \"host\": {\n");
        let _ = writeln!(
            json,
            "    \"available_parallelism\": {},",
            self.available_parallelism
        );
        for line in extra_lines {
            json.push_str(line);
            if !line.ends_with('\n') {
                json.push('\n');
            }
        }
        let _ = writeln!(json, "    \"rustc\": \"{}\",", json_escape(&self.rustc));
        match &self.timestamp {
            Some(ts) => {
                let _ = writeln!(json, "    \"timestamp\": \"{}\"", json_escape(ts));
            }
            None => json.push_str("    \"timestamp\": null\n"),
        }
        json.push_str("  },\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("x\n\t\r"), "x\\n\\t\\r");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn host_block_shape() {
        let host = HostContext {
            available_parallelism: 4,
            rustc: "rustc 1.0.0".into(),
            timestamp: None,
        };
        let mut json = String::new();
        host.push_json(&mut json, &[]);
        assert_eq!(
            json,
            "  \"host\": {\n    \"available_parallelism\": 4,\n    \"rustc\": \"rustc 1.0.0\",\n    \"timestamp\": null\n  },\n"
        );

        let mut with_ts = String::new();
        HostContext {
            timestamp: Some("2026-01-01T00:00:00Z".into()),
            ..host.clone()
        }
        .push_json(&mut with_ts, &["    \"cores_extra\": true,".into()]);
        assert!(with_ts.contains("\"cores_extra\": true,\n    \"rustc\""));
        assert!(with_ts.contains("\"timestamp\": \"2026-01-01T00:00:00Z\"\n"));
    }
}
