//! Shared harness utilities for the figure-regeneration benches.
//!
//! Every table and figure of the paper's evaluation has a
//! `harness = false` bench target in `benches/` that recomputes its
//! series from the models (and, where applicable, the executable
//! system), prints it in the same shape the paper reports, writes a
//! CSV under `target/figures/`, and asserts the headline claims.
//! Run them all with `cargo bench`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

/// Prints a fixed-width table with a title and rule lines.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let header_line: Vec<String> = headers
        .iter()
        .enumerate()
        .map(|(i, h)| format!("{h:>width$}", width = widths[i]))
        .collect();
    println!("{}", header_line.join("  "));
    println!("{}", "-".repeat(header_line.join("  ").len()));
    for row in rows {
        let line: Vec<String> = row
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect();
        println!("{}", line.join("  "));
    }
}

/// Writes a CSV with the same data under `target/figures/<name>.csv`
/// and returns the path.
///
/// # Panics
///
/// Panics on I/O errors (bench targets want loud failures).
pub fn write_csv(name: &str, headers: &[&str], rows: &[Vec<String>]) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../target/figures");
    fs::create_dir_all(&dir).expect("create figures dir");
    let path = dir.join(format!("{name}.csv"));
    let mut file = fs::File::create(&path).expect("create csv");
    writeln!(file, "{}", headers.join(",")).expect("write csv header");
    for row in rows {
        writeln!(file, "{}", row.join(",")).expect("write csv row");
    }
    println!("[csv] {}", path.display());
    path
}

/// Asserts a reproduced headline number against the paper's value,
/// with an explicit band, and reports the comparison.
pub fn check_claim(label: &str, measured: f64, paper: f64, tolerance: f64) {
    let status = if (measured - paper).abs() <= tolerance {
        "OK"
    } else {
        "MISMATCH"
    };
    println!(
        "[claim {status}] {label}: reproduced {measured:.3} vs paper {paper:.3} (±{tolerance:.3})"
    );
    assert!(
        (measured - paper).abs() <= tolerance,
        "{label}: reproduced {measured:.3} vs paper {paper:.3} exceeds ±{tolerance:.3}"
    );
}

/// Formats a float with the given precision (convenience for rows).
pub fn fmt(value: f64, precision: usize) -> String {
    format!("{value:.precision$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(1.23456, 2), "1.23");
        assert_eq!(fmt(10.0, 0), "10");
    }

    #[test]
    fn check_claim_accepts_within_band() {
        check_claim("test", 0.25, 0.26, 0.02);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn check_claim_rejects_outside_band() {
        check_claim("test", 0.10, 0.30, 0.05);
    }

    #[test]
    fn csv_roundtrip() {
        let path = write_csv(
            "unit_test_csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        );
        let text = std::fs::read_to_string(path).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
    }
}
