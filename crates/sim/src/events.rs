//! A generic discrete-event queue keyed by `f64` simulation time.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Scheduled<T> {
    time: f64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; ties broken by insertion order so
        // the queue is deterministic.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic min-heap of timed events.
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for EventQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .finish()
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` at `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is NaN.
    pub fn schedule(&mut self, time: f64, payload: T) {
        assert!(!time.is_nan(), "event time must not be NaN");
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// Time of the earliest event, if any.
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|s| s.time)
    }

    /// Pops the earliest event.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Pops every event scheduled at or before `time`.
    pub fn pop_until(&mut self, time: f64) -> Vec<(f64, T)> {
        let mut out = Vec::new();
        while self.peek_time().is_some_and(|t| t <= time) {
            out.push(self.pop().expect("peeked"));
        }
        out
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(3.0, "c");
        q.schedule(1.0, "a");
        q.schedule(2.0, "b");
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        assert_eq!(q.pop(), Some((1.0, "first")));
        assert_eq!(q.pop(), Some((1.0, "second")));
    }

    #[test]
    fn pop_until_takes_prefix() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(i as f64, i);
        }
        let batch = q.pop_until(4.5);
        assert_eq!(batch.len(), 5);
        assert_eq!(q.len(), 5);
        assert_eq!(q.peek_time(), Some(5.0));
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let mut q = EventQueue::new();
        q.schedule(f64::NAN, ());
    }
}
