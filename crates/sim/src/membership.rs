//! The two-class exponential membership workload of §3.3.1.
//!
//! Joins arrive as a Poisson process whose rate is chosen so the group
//! holds `target_size` members in steady state (the `J` of the paper's
//! queueing model, Fig. 2); each joiner is short-lived with
//! probability `alpha` and draws its membership duration from the
//! exponential distribution of its class. This is the synthetic
//! equivalent of the MBone traces \[AA97\] the paper's model is fitted
//! to — see DESIGN.md (substitutions).

use crate::events::EventQueue;
use rand::Rng;
use rekey_analytic::partition::PartitionParams;
use rekey_core::DurationClass;
use rekey_keytree::MemberId;
use serde::{Deserialize, Serialize};

/// Workload parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MembershipParams {
    /// Steady-state group size to aim for.
    pub target_size: usize,
    /// Fraction of short-lived joins (`α`).
    pub alpha: f64,
    /// Mean short duration `Ms` (seconds).
    pub mean_short: f64,
    /// Mean long duration `Ml` (seconds).
    pub mean_long: f64,
    /// Rekey interval `Tp` (seconds).
    pub rekey_period: f64,
}

impl MembershipParams {
    /// Table 1 defaults (with the paper's 65536-member group).
    pub fn paper_default() -> Self {
        MembershipParams {
            target_size: 65536,
            alpha: 0.8,
            mean_short: 180.0,
            mean_long: 10_800.0,
            rekey_period: 60.0,
        }
    }

    /// The steady-state join count per rekey interval (`J`).
    pub fn joins_per_interval(&self) -> f64 {
        let p = PartitionParams {
            group_size: self.target_size.max(2) as u64,
            degree: 4, // irrelevant for the queueing solution
            rekey_period: self.rekey_period,
            k: 1,
            mean_short: self.mean_short,
            mean_long: self.mean_long,
            alpha: self.alpha,
        };
        p.steady_state().joins_per_period
    }
}

/// One rekey interval's membership changes.
#[derive(Debug, Clone, Default)]
pub struct IntervalEvents {
    /// Members joining this interval, with their (ground-truth)
    /// duration classes — managers that are not oracles must ignore
    /// the class.
    pub joins: Vec<(MemberId, DurationClass)>,
    /// Members departing this interval.
    pub leaves: Vec<MemberId>,
    /// Arrivals whose membership ended within the same interval: with
    /// periodic batch rekeying they are never admitted, so they appear
    /// in neither `joins` nor `leaves`.
    pub transient: usize,
}

/// Generates per-interval joins and leaves.
#[derive(Debug)]
pub struct MembershipGenerator {
    params: MembershipParams,
    departures: EventQueue<MemberId>,
    now: f64,
    next_id: u64,
    population: usize,
}

impl MembershipGenerator {
    /// Creates a generator pre-populated at the steady state: the
    /// group starts with ~`target_size` members whose residual
    /// lifetimes follow the stationary distribution (exponential
    /// residuals, memorylessness).
    pub fn new<R: Rng>(params: MembershipParams, rng: &mut R) -> Self {
        assert!((0.0..=1.0).contains(&params.alpha), "alpha out of range");
        assert!(params.mean_short > 0.0 && params.mean_long > 0.0);
        assert!(params.rekey_period > 0.0);
        let mut generator = MembershipGenerator {
            params,
            departures: EventQueue::new(),
            now: 0.0,
            next_id: 0,
            population: 0,
        };
        // Stationary class mix of the *population* (not of joins):
        // long-lived members accumulate, so their population share
        // exceeds 1 - α.
        let p = PartitionParams {
            group_size: params.target_size.max(2) as u64,
            degree: 4,
            rekey_period: params.rekey_period,
            k: 1,
            mean_short: params.mean_short,
            mean_long: params.mean_long,
            alpha: params.alpha,
        };
        let ss = p.steady_state();
        let frac_short_pop = ss.n_cs / (ss.n_cs + ss.n_cl);
        for _ in 0..params.target_size {
            let class = if rng.gen::<f64>() < frac_short_pop {
                DurationClass::Short
            } else {
                DurationClass::Long
            };
            // Memorylessness: residual lifetime is exponential with
            // the class mean.
            let residual = exponential(rng, generator.class_mean(class));
            let id = generator.fresh_id();
            generator.departures.schedule(residual, id);
            generator.population += 1;
        }
        generator
    }

    fn fresh_id(&mut self) -> MemberId {
        let id = MemberId(self.next_id);
        self.next_id += 1;
        id
    }

    fn class_mean(&self, class: DurationClass) -> f64 {
        match class {
            DurationClass::Short => self.params.mean_short,
            DurationClass::Long => self.params.mean_long,
        }
    }

    /// Current population size.
    pub fn population(&self) -> usize {
        self.population
    }

    /// The workload parameters.
    pub fn params(&self) -> &MembershipParams {
        &self.params
    }

    /// Advances one rekey interval and returns its joins and leaves.
    pub fn next_interval<R: Rng>(&mut self, rng: &mut R) -> IntervalEvents {
        let end = self.now + self.params.rekey_period;
        let mut events = IntervalEvents::default();

        // Poisson joins over the interval.
        let rate = self.params.joins_per_interval() / self.params.rekey_period;
        let mut t = self.now + exponential(rng, 1.0 / rate.max(1e-12));
        while t <= end {
            let class = if rng.gen::<f64>() < self.params.alpha {
                DurationClass::Short
            } else {
                DurationClass::Long
            };
            let duration = exponential(rng, self.class_mean(class));
            if t + duration <= end {
                // Joined and left within one interval: never admitted
                // under periodic batch rekeying.
                events.transient += 1;
            } else {
                let id = self.fresh_id();
                self.departures.schedule(t + duration, id);
                events.joins.push((id, class));
                self.population += 1;
            }
            t += exponential(rng, 1.0 / rate.max(1e-12));
        }

        for (_, id) in self.departures.pop_until(end) {
            events.leaves.push(id);
            self.population -= 1;
        }
        self.now = end;
        events
    }
}

/// Samples an exponential with the given mean.
pub fn exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    -mean * (1.0 - rng.gen::<f64>()).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_params() -> MembershipParams {
        MembershipParams {
            target_size: 1000,
            ..MembershipParams::paper_default()
        }
    }

    #[test]
    fn population_stays_near_target() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = MembershipGenerator::new(small_params(), &mut rng);
        for _ in 0..100 {
            gen.next_interval(&mut rng);
        }
        let pop = gen.population() as f64;
        assert!(
            (700.0..1300.0).contains(&pop),
            "population {pop} drifted from target 1000"
        );
    }

    #[test]
    fn join_rate_matches_model() {
        let mut rng = StdRng::seed_from_u64(2);
        let params = small_params();
        let expected_j = params.joins_per_interval();
        let mut gen = MembershipGenerator::new(params, &mut rng);
        let mut joins = 0usize;
        let intervals = 200;
        for _ in 0..intervals {
            joins += gen.next_interval(&mut rng).joins.len();
        }
        let measured = joins as f64 / intervals as f64;
        assert!(
            (measured - expected_j).abs() / expected_j < 0.15,
            "measured J {measured} vs model {expected_j}"
        );
    }

    #[test]
    fn leave_rate_balances_join_rate() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = MembershipGenerator::new(small_params(), &mut rng);
        let (mut joins, mut leaves) = (0usize, 0usize);
        for _ in 0..300 {
            let ev = gen.next_interval(&mut rng);
            joins += ev.joins.len();
            leaves += ev.leaves.len();
        }
        let ratio = leaves as f64 / joins as f64;
        assert!(
            (0.85..1.15).contains(&ratio),
            "leave/join ratio {ratio} not balanced"
        );
    }

    #[test]
    fn class_mix_matches_alpha() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut gen = MembershipGenerator::new(small_params(), &mut rng);
        let mut short = 0usize;
        let mut total = 0usize;
        for _ in 0..200 {
            for (_, class) in gen.next_interval(&mut rng).joins {
                total += 1;
                if class == DurationClass::Short {
                    short += 1;
                }
            }
        }
        let frac = short as f64 / total as f64;
        assert!((frac - 0.8).abs() < 0.05, "short fraction {frac}");
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 50_000;
        let sum: f64 = (0..n).map(|_| exponential(&mut rng, 42.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 42.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn ids_are_unique() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut gen = MembershipGenerator::new(small_params(), &mut rng);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            for (id, _) in gen.next_interval(&mut rng).joins {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
    }
}
