//! Summary statistics for simulation series.

use serde::{Deserialize, Serialize};

/// Mean / deviation / extrema of a series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (0 for fewer than 2 samples).
    pub stddev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes `values` (all zeros for an empty slice).
    pub fn of(values: &[f64]) -> Self {
        if values.is_empty() {
            return Summary {
                count: 0,
                mean: 0.0,
                stddev: 0.0,
                min: 0.0,
                max: 0.0,
            };
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = if values.len() > 1 {
            values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
        } else {
            0.0
        };
        let (min, max) = values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        Summary {
            count: values.len(),
            mean,
            stddev: var.sqrt(),
            min,
            max,
        }
    }

    /// Relative half-width of a crude 95% confidence interval
    /// (`1.96·σ/(√n·mean)`) with `n = self.count`, the same count the
    /// mean and deviation were computed over; 0 when undefined
    /// (fewer than two samples, or a zero mean that would make the
    /// ratio blow up).
    pub fn relative_ci(&self) -> f64 {
        if self.count < 2 || self.mean == 0.0 {
            return 0.0;
        }
        let n = self.count as f64;
        let ci = 1.96 * self.stddev / (n.sqrt() * self.mean.abs());
        if ci.is_finite() {
            ci
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_values() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
    }

    #[test]
    fn summary_of_empty() {
        let s = Summary::of(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.mean, 0.0);
    }

    #[test]
    fn single_value_has_zero_stddev() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.relative_ci(), 0.0);
    }

    #[test]
    fn relative_ci_undefined_below_two_samples() {
        assert_eq!(Summary::of(&[]).relative_ci(), 0.0);
        assert_eq!(Summary::of(&[3.0]).relative_ci(), 0.0);
        // A hand-built summary with an inconsistent nonzero deviation
        // still reports 0 for a single sample.
        let s = Summary {
            count: 1,
            mean: 5.0,
            stddev: 2.0,
            min: 5.0,
            max: 5.0,
        };
        assert_eq!(s.relative_ci(), 0.0);
    }

    #[test]
    fn relative_ci_undefined_for_zero_mean() {
        let s = Summary::of(&[-1.0, 1.0]);
        assert_eq!(s.mean, 0.0);
        assert!(s.stddev > 0.0);
        assert_eq!(s.relative_ci(), 0.0);
    }

    #[test]
    fn relative_ci_positive_for_negative_mean_series() {
        let neg = Summary::of(&[-1.0, -2.0, -3.0]);
        let pos = Summary::of(&[1.0, 2.0, 3.0]);
        assert!(neg.relative_ci() > 0.0);
        assert!((neg.relative_ci() - pos.relative_ci()).abs() < 1e-12);
    }

    #[test]
    fn relative_ci_matches_formula() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        let expected = 1.96 * s.stddev / (4.0f64.sqrt() * s.mean);
        assert!((s.relative_ci() - expected).abs() < 1e-12);
    }

    #[test]
    fn relative_ci_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 2.0, 3.0]);
        let series: Vec<f64> = (0..300).map(|i| 1.0 + (i % 3) as f64).collect();
        let many = Summary::of(&series);
        assert!(many.relative_ci() < few.relative_ci());
    }
}
