//! Discrete-event simulation of multicast group membership and
//! periodic batch rekeying.
//!
//! The paper evaluates its optimizations purely analytically; this
//! crate adds what the paper did not have — an executable simulator —
//! so the analytic models of [`rekey_analytic`] can be
//! cross-validated against the real protocol machinery of
//! [`rekey_core`]:
//!
//! - [`events`] — a generic discrete-event queue,
//! - [`membership`] — the two-class exponential join/leave workload of
//!   §3.3.1 (\[AA97\]'s MBone behaviour), generated per rekey interval,
//! - [`driver`] — runs any [`rekey_core::GroupKeyManager`] over the
//!   workload, optionally verifying every member's key state each
//!   interval, and collects bandwidth statistics,
//! - [`metrics`] — summary statistics.
//!
//! # Example
//!
//! ```
//! use rekey_sim::membership::{MembershipGenerator, MembershipParams};
//! use rekey_sim::driver::{run_scheme, SimConfig};
//! use rekey_core::one_tree::OneTreeManager;
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let params = MembershipParams {
//!     target_size: 256,
//!     ..MembershipParams::paper_default()
//! };
//! let mut gen = MembershipGenerator::new(params, &mut rng);
//! let mut mgr = OneTreeManager::new(4);
//! let report = run_scheme(&mut mgr, &mut gen, &SimConfig::quick(), &mut rng);
//! assert!(report.mean_keys_per_interval > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod driver;
pub mod events;
pub mod membership;
pub mod metrics;
