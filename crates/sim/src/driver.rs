//! Drives a [`GroupKeyManager`] over a membership workload and
//! collects the paper's bandwidth metric per interval.

use crate::membership::{IntervalEvents, MembershipGenerator};
use crate::metrics::Summary;
use rand::Rng;
use rekey_core::{GroupKeyManager, IntervalStats, Join};
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::MemberId;
use rekey_obs::Collector;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Simulation configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimConfig {
    /// Measured intervals (after warm-up).
    pub intervals: usize,
    /// Warm-up intervals excluded from statistics (lets partitions
    /// fill and migrations reach steady state).
    pub warmup: usize,
    /// Maintain full receiver states and assert that every present
    /// member holds the DEK after every interval (and no departed
    /// member does). Quadratic-ish; use with small groups.
    pub verify_members: bool,
    /// Attach ground-truth duration-class hints to joins (for the
    /// oracle PT-scheme).
    pub oracle_hints: bool,
    /// Worker threads for the manager's encryption phase (`0`/`1` =
    /// sequential). Rekey messages and all reported metrics are
    /// identical for every setting; only wall-clock time changes.
    pub parallelism: usize,
    /// Write a Chrome `trace_event` JSON trace of the run to this
    /// path (load it in `about:tracing` or Perfetto). `None` disables
    /// tracing; the run's reported metrics are identical either way.
    pub trace: Option<String>,
    /// Write a Prometheus-style text dump of counters, histograms,
    /// and gauges to this path after the run.
    pub metrics: Option<String>,
}

impl SimConfig {
    /// A small, fast configuration for tests and examples.
    pub fn quick() -> Self {
        SimConfig {
            intervals: 20,
            warmup: 5,
            verify_members: false,
            oracle_hints: false,
            parallelism: 1,
            trace: None,
            metrics: None,
        }
    }
}

/// Wall clock spent in each phase of `LkhServer::try_apply_batch`
/// over a whole run, from the observability recorder. All zeros when
/// no recorder was active during the run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Tree mutation + fresh key generation (sequential).
    pub mutate_s: f64,
    /// Encryption planning (sequential, allocation-free).
    pub plan_s: f64,
    /// Encryption execution (parallel), as seen by the caller.
    pub execute_s: f64,
}

/// Result of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Per-interval stats over the measured window.
    pub intervals: Vec<IntervalStats>,
    /// Mean encrypted keys per interval — comparable to the analytic
    /// `Ne`-based costs.
    pub mean_keys_per_interval: f64,
    /// Summary of the keys-per-interval series.
    pub keys_summary: Summary,
    /// Group size at the end of the run.
    pub final_size: usize,
    /// Per-phase rekey-engine wall clock over the run (zeros without
    /// an active recorder). Derived from timing, so unlike every other
    /// field it is *not* deterministic across runs.
    pub phases: PhaseBreakdown,
}

/// Phase span names recorded by `rekey_keytree::server::LkhServer`.
const PHASE_SPANS: [&str; 3] = ["rekey.mutate", "rekey.plan", "rekey.execute"];

/// Observability bookkeeping for one simulation run: installs a
/// [`Collector`] when the config asks for trace/metrics output,
/// snapshots pre-run phase totals (a recorder may already be serving
/// other runs), and on `finish` exports files and computes the run's
/// phase-breakdown delta.
struct ObsRun {
    installed: Option<Arc<Collector>>,
    base_ns: [u64; 3],
}

impl ObsRun {
    fn start(config: &SimConfig) -> Self {
        let installed = if config.trace.is_some() || config.metrics.is_some() {
            let collector = Arc::new(Collector::new());
            rekey_obs::install(collector.clone());
            Some(collector)
        } else {
            None
        };
        ObsRun {
            installed,
            base_ns: PHASE_SPANS.map(rekey_obs::total_time_ns),
        }
    }

    fn finish(self, config: &SimConfig) -> PhaseBreakdown {
        let delta = |i: usize| {
            rekey_obs::total_time_ns(PHASE_SPANS[i]).saturating_sub(self.base_ns[i]) as f64 / 1e9
        };
        let phases = PhaseBreakdown {
            mutate_s: delta(0),
            plan_s: delta(1),
            execute_s: delta(2),
        };
        if let Some(collector) = self.installed {
            if let Some(path) = &config.trace {
                collector
                    .write_chrome_trace(path)
                    .unwrap_or_else(|e| panic!("writing trace file {path:?}: {e}"));
            }
            if let Some(path) = &config.metrics {
                collector
                    .write_metrics(path)
                    .unwrap_or_else(|e| panic!("writing metrics file {path:?}: {e}"));
            }
            rekey_obs::uninstall();
        }
        phases
    }
}

/// Emits the per-interval gauge series (Chrome counter tracks / last
/// value in the metrics dump). No-ops when no recorder is installed.
fn sample_interval(stats: &IntervalStats) {
    rekey_obs::sample("sim.joins", stats.joins as f64);
    rekey_obs::sample("sim.leaves", stats.leaves as f64);
    rekey_obs::sample("sim.migrations", stats.migrations as f64);
    rekey_obs::sample("sim.encrypted_keys", stats.encrypted_keys as f64);
    rekey_obs::sample("sim.message_bytes", stats.message_bytes as f64);
}

/// Runs `manager` over `generator`'s workload.
///
/// # Panics
///
/// Panics if the manager rejects a generated batch (that would be a
/// bug in manager/generator bookkeeping), or if `verify_members` is on
/// and a member loses synchronization — the end-to-end correctness
/// property.
pub fn run_scheme<R: Rng>(
    manager: &mut dyn GroupKeyManager,
    generator: &mut MembershipGenerator,
    config: &SimConfig,
    rng: &mut R,
) -> SimReport {
    let mut states: BTreeMap<MemberId, GroupMember> = BTreeMap::new();
    let mut measured: Vec<IntervalStats> = Vec::with_capacity(config.intervals);
    manager.set_parallelism(config.parallelism);
    let obs = ObsRun::start(config);

    // Admit the pre-populated steady-state members in one bootstrap
    // interval (excluded from measurement).
    let bootstrap: Vec<MemberId> = (0..generator.population() as u64).map(MemberId).collect();
    let joins: Vec<Join> = bootstrap
        .iter()
        .map(|&m| {
            let ik = Key::generate(rng);
            if config.verify_members {
                states.insert(m, GroupMember::new(m, ik.clone()));
            }
            Join::new(m, ik)
        })
        .collect();
    let out = manager
        .process_interval(&joins, &[], rng)
        .expect("bootstrap batch");
    if config.verify_members {
        for s in states.values_mut() {
            let _ = s.process(&out.message);
        }
    }

    for step in 0..(config.warmup + config.intervals) {
        let events = generator.next_interval(rng);
        let out = apply_interval(manager, &events, config, &mut states, rng);
        sample_interval(&out);
        if config.verify_members {
            verify(manager, &states, &events.leaves);
            // Drop departed members' states to keep memory bounded.
            for m in &events.leaves {
                states.remove(m);
            }
        }
        if step >= config.warmup {
            measured.push(out);
        }
    }

    let phases = obs.finish(config);
    let series: Vec<f64> = measured.iter().map(|s| s.encrypted_keys as f64).collect();
    let keys_summary = Summary::of(&series);
    SimReport {
        mean_keys_per_interval: keys_summary.mean,
        intervals: measured,
        keys_summary,
        final_size: manager.member_count(),
        phases,
    }
}

fn apply_interval<R: Rng>(
    manager: &mut dyn GroupKeyManager,
    events: &IntervalEvents,
    config: &SimConfig,
    states: &mut BTreeMap<MemberId, GroupMember>,
    rng: &mut R,
) -> IntervalStats {
    let joins: Vec<Join> = events
        .joins
        .iter()
        .map(|&(m, class)| {
            let ik = Key::generate(rng);
            if config.verify_members {
                states.insert(m, GroupMember::new(m, ik.clone()));
            }
            let mut join = Join::new(m, ik);
            if config.oracle_hints {
                join = join.with_class(class);
            }
            join
        })
        .collect();
    let out = manager
        .process_interval(&joins, &events.leaves, rng)
        .expect("generated batch is consistent");
    if config.verify_members {
        for s in states.values_mut() {
            let _ = s.process(&out.message);
        }
    }
    out.stats
}

fn verify(
    manager: &dyn GroupKeyManager,
    states: &BTreeMap<MemberId, GroupMember>,
    just_departed: &[MemberId],
) {
    let dek_node = manager.dek_node();
    let dek = manager.dek();
    for (id, state) in states {
        if just_departed.contains(id) {
            assert_ne!(
                state.key_for(dek_node),
                Some(dek),
                "departed member {id} still holds the DEK"
            );
        } else if manager.contains(*id) {
            assert_eq!(
                state.key_for(dek_node),
                Some(dek),
                "member {id} lost the DEK under {}",
                manager.scheme_name()
            );
        }
    }
}

/// Result of a simulation that also delivers every rekey message over
/// a lossy channel with the WKA-BKR protocol.
#[derive(Debug, Clone)]
pub struct TransportSimReport {
    /// The key-server report.
    pub server: SimReport,
    /// Mean encrypted-key transmissions per interval (replication and
    /// retransmission included) — the §4 metric.
    pub mean_transport_keys: f64,
    /// Mean delivery rounds per interval.
    pub mean_rounds: f64,
}

/// Like [`run_scheme`], but additionally delivers every interval's
/// rekey message with the executable WKA-BKR protocol over a two-point
/// loss population, feeding the per-member NACK feedback to
/// `feedback` (managers that learn loss rates — e.g.
/// `rekey_core::combined::CombinedManager` — hook in here; others pass
/// `|_, _, _| {}`).
///
/// Member loss rates are assigned at join time: high (`p_high`) with
/// probability `high_fraction`, else `p_low`.
///
/// # Panics
///
/// Panics if a delivery fails to complete within the protocol's round
/// budget, or on the same conditions as [`run_scheme`].
#[allow(clippy::too_many_arguments)]
pub fn run_scheme_with_transport<M, R, F>(
    manager: &mut M,
    generator: &mut MembershipGenerator,
    config: &SimConfig,
    high_fraction: f64,
    p_high: f64,
    p_low: f64,
    mut feedback: F,
    rng: &mut R,
) -> TransportSimReport
where
    M: GroupKeyManager,
    R: Rng,
    F: FnMut(&mut M, MemberId, u64, u64),
{
    use rekey_transport::interest::interest_map;
    use rekey_transport::loss::Population;
    use rekey_transport::wka_bkr::{self, WkaBkrConfig};

    manager.set_parallelism(config.parallelism);
    let obs = ObsRun::start(config);
    let mut losses: BTreeMap<MemberId, f64> = BTreeMap::new();
    let assign = |losses: &mut BTreeMap<MemberId, f64>, m: MemberId, rng: &mut R| {
        let p = if rng.gen::<f64>() < high_fraction {
            p_high
        } else {
            p_low
        };
        losses.insert(m, p);
    };

    // Bootstrap.
    let joins: Vec<Join> = (0..generator.population() as u64)
        .map(|i| {
            assign(&mut losses, MemberId(i), rng);
            Join::new(MemberId(i), Key::generate(rng))
        })
        .collect();
    manager
        .process_interval(&joins, &[], rng)
        .expect("bootstrap batch");

    let mut measured: Vec<IntervalStats> = Vec::new();
    let (mut transport_keys, mut rounds) = (0u64, 0u64);
    for step in 0..(config.warmup + config.intervals) {
        let events = generator.next_interval(rng);
        let joins: Vec<Join> = events
            .joins
            .iter()
            .map(|&(m, _)| {
                assign(&mut losses, m, rng);
                Join::new(m, Key::generate(rng))
            })
            .collect();
        let out = manager
            .process_interval(&joins, &events.leaves, rng)
            .expect("generated batch is consistent");
        for m in &events.leaves {
            losses.remove(m);
        }

        sample_interval(&out.stats);
        let interest = interest_map(&out.message, |node, out| {
            manager.members_under_into(node, out)
        });
        let pop = Population::from_map(
            interest
                .keys()
                .map(|m| (*m, losses.get(m).copied().unwrap_or(p_low)))
                .collect(),
        );
        let delivery =
            wka_bkr::deliver(&out.message, &interest, &pop, &WkaBkrConfig::default(), rng);
        assert!(delivery.report.complete, "rekey delivery incomplete");
        for (&m, &(lost, seen)) in &delivery.lost_packets {
            feedback(manager, m, lost, seen);
        }

        if step >= config.warmup {
            measured.push(out.stats);
            transport_keys += delivery.report.keys_transmitted as u64;
            rounds += delivery.report.rounds as u64;
        }
    }

    let phases = obs.finish(config);
    let series: Vec<f64> = measured.iter().map(|s| s.encrypted_keys as f64).collect();
    let keys_summary = Summary::of(&series);
    let n = measured.len().max(1) as f64;
    TransportSimReport {
        server: SimReport {
            mean_keys_per_interval: keys_summary.mean,
            intervals: measured,
            keys_summary,
            final_size: manager.member_count(),
            phases,
        },
        mean_transport_keys: transport_keys as f64 / n,
        mean_rounds: rounds as f64 / n,
    }
}

/// Compares the measured mean rekey cost of several managers on the
/// *same* workload (same seed), returning `(name, mean keys)` pairs.
pub fn compare_schemes<R: Rng + rand::SeedableRng + Clone>(
    managers: Vec<Box<dyn GroupKeyManager>>,
    params: crate::membership::MembershipParams,
    config: &SimConfig,
    seed: u64,
) -> Vec<(&'static str, f64)> {
    let mut results = Vec::new();
    for mut manager in managers {
        let mut rng = R::seed_from_u64(seed);
        let mut generator = MembershipGenerator::new(params, &mut rng);
        let report = run_scheme(manager.as_mut(), &mut generator, config, &mut rng);
        results.push((manager.scheme_name(), report.mean_keys_per_interval));
    }
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::membership::MembershipParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rekey_core::one_tree::OneTreeManager;
    use rekey_core::partition::{QtManager, TtManager};

    fn params(n: usize) -> MembershipParams {
        MembershipParams {
            target_size: n,
            ..MembershipParams::paper_default()
        }
    }

    #[test]
    fn one_tree_simulation_runs_verified() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut gen = MembershipGenerator::new(params(200), &mut rng);
        let mut mgr = OneTreeManager::new(4);
        let cfg = SimConfig {
            intervals: 10,
            warmup: 2,
            verify_members: true,
            ..SimConfig::quick()
        };
        let report = run_scheme(&mut mgr, &mut gen, &cfg, &mut rng);
        assert!(report.mean_keys_per_interval > 0.0);
        assert_eq!(report.intervals.len(), 10);
    }

    #[test]
    fn tt_simulation_runs_verified() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gen = MembershipGenerator::new(params(200), &mut rng);
        let mut mgr = TtManager::new(4, 5);
        let cfg = SimConfig {
            intervals: 12,
            warmup: 3,
            verify_members: true,
            ..SimConfig::quick()
        };
        let report = run_scheme(&mut mgr, &mut gen, &cfg, &mut rng);
        assert!(report.final_size > 0);
    }

    #[test]
    fn qt_simulation_runs_verified() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gen = MembershipGenerator::new(params(200), &mut rng);
        let mut mgr = QtManager::new(4, 5);
        let cfg = SimConfig {
            intervals: 12,
            warmup: 3,
            verify_members: true,
            ..SimConfig::quick()
        };
        run_scheme(&mut mgr, &mut gen, &cfg, &mut rng);
    }

    #[test]
    fn transport_in_the_loop_runs() {
        use rekey_core::combined::CombinedManager;
        let mut rng = StdRng::seed_from_u64(7);
        let mut gen = MembershipGenerator::new(params(300), &mut rng);
        let mut mgr = CombinedManager::two_loss_classes(4, 3);
        let report = run_scheme_with_transport(
            &mut mgr,
            &mut gen,
            &SimConfig::quick(),
            0.3,
            0.2,
            0.02,
            |m, member, lost, seen| m.record_feedback(member, lost, seen),
            &mut rng,
        );
        assert!(report.mean_transport_keys >= report.server.mean_keys_per_interval);
        assert!(report.mean_rounds >= 1.0);
        // The feedback loop placed migrated members into both classes.
        assert!(mgr.l_class_size(0) + mgr.l_class_size(1) > 0);
    }

    #[test]
    fn bandwidth_metrics_invariant_under_parallelism() {
        // The worker pool must never change what is measured: the same
        // seeded workload must produce identical SimReports at 1 and 8
        // threads.
        let run = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(99);
            let mut gen = MembershipGenerator::new(params(400), &mut rng);
            let mut mgr = TtManager::new(4, 5);
            let cfg = SimConfig {
                parallelism: threads,
                ..SimConfig::quick()
            };
            run_scheme(&mut mgr, &mut gen, &cfg, &mut rng)
        };
        let seq = run(1);
        let par = run(8);
        assert_eq!(seq.intervals, par.intervals);
        assert_eq!(seq.mean_keys_per_interval, par.mean_keys_per_interval);
        assert_eq!(seq.final_size, par.final_size);
    }

    #[test]
    fn compare_runs_same_workload() {
        let results = compare_schemes::<StdRng>(
            vec![
                Box::new(OneTreeManager::new(4)),
                Box::new(TtManager::new(4, 5)),
            ],
            params(300),
            &SimConfig::quick(),
            7,
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "one-keytree");
        assert!(results.iter().all(|&(_, cost)| cost > 0.0));
    }
}
