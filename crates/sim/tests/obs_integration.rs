//! Integration tests for the observability pipeline: a real simulation
//! run must export a valid, balanced Chrome trace and a metrics dump,
//! and turning the recorder on must not change a single reported
//! number (the determinism guard, mirroring the engine's byte-identical
//! parallelism property).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::partition::TtManager;
use rekey_sim::driver::{run_scheme, SimConfig, SimReport};
use rekey_sim::membership::{MembershipGenerator, MembershipParams};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};

/// The global recorder is process-wide state; tests that install one
/// must not overlap.
fn global_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn scratch(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("rekey-obs-it-{}-{name}", std::process::id()))
}

fn params() -> MembershipParams {
    MembershipParams {
        target_size: 300,
        ..MembershipParams::paper_default()
    }
}

fn run(config: &SimConfig) -> SimReport {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut generator = MembershipGenerator::new(params(), &mut rng);
    let mut manager = TtManager::new(4, 5);
    run_scheme(&mut manager, &mut generator, config, &mut rng)
}

#[test]
fn sim_run_exports_valid_trace_and_metrics() {
    let _guard = global_lock();
    let trace_path = scratch("trace.json");
    let metrics_path = scratch("metrics.prom");
    let config = SimConfig {
        intervals: 8,
        warmup: 2,
        parallelism: 2,
        trace: Some(trace_path.to_string_lossy().into_owned()),
        metrics: Some(metrics_path.to_string_lossy().into_owned()),
        ..SimConfig::quick()
    };
    let report = run(&config);

    // The trace validates: well-formed JSON, balanced begin/end per
    // thread, counters with numeric values.
    let trace = std::fs::read_to_string(&trace_path).expect("trace file written");
    let summary = rekey_obs::chrome::validate_trace(&trace).expect("exported trace is valid");
    assert_eq!(summary.begin_events, summary.end_events);
    assert!(summary.begin_events > 0, "trace has no spans");

    // Every engine phase shows up, including the parallel workers.
    for phase in [
        "rekey.batch",
        "rekey.mutate",
        "rekey.plan",
        "rekey.execute",
        "rekey.execute.worker",
    ] {
        assert!(
            summary.span_names.contains(phase),
            "span {phase:?} missing from trace (have {:?})",
            summary.span_names
        );
    }
    // Per-interval gauge tracks ride along as counter events.
    for track in [
        "sim.joins",
        "sim.leaves",
        "sim.encrypted_keys",
        "sim.message_bytes",
    ] {
        assert!(
            summary.counter_names.contains(track),
            "counter {track:?} missing from trace"
        );
    }

    // The metrics dump carries the crypto counters and the bandwidth
    // gauges in Prometheus text form.
    let metrics = std::fs::read_to_string(&metrics_path).expect("metrics file written");
    for needle in [
        "crypto_chacha20_blocks_total",
        "crypto_hmac_total",
        "crypto_keywrap_wrap_total",
        "rekey_encrypted_keys_total",
        "rekey_execute_seconds",
        "sim_message_bytes",
    ] {
        assert!(
            metrics.contains(needle),
            "metrics dump missing {needle}:\n{metrics}"
        );
    }

    // The run itself measured something, and the recorder saw the
    // phases it reports on.
    assert!(report.mean_keys_per_interval > 0.0);
    assert!(report.phases.execute_s > 0.0, "execute phase unobserved");

    let _ = std::fs::remove_file(&trace_path);
    let _ = std::fs::remove_file(&metrics_path);
}

#[test]
fn tracing_does_not_change_reported_numbers() {
    let _guard = global_lock();
    let trace_path = scratch("determinism-trace.json");
    let plain = run(&SimConfig {
        intervals: 8,
        warmup: 2,
        ..SimConfig::quick()
    });
    let traced = run(&SimConfig {
        intervals: 8,
        warmup: 2,
        trace: Some(trace_path.to_string_lossy().into_owned()),
        ..SimConfig::quick()
    });

    // Everything except the wall-clock phase breakdown is identical.
    assert_eq!(plain.intervals, traced.intervals);
    assert_eq!(plain.mean_keys_per_interval, traced.mean_keys_per_interval);
    assert_eq!(plain.keys_summary, traced.keys_summary);
    assert_eq!(plain.final_size, traced.final_size);
    // The plain run had no recorder, so its breakdown is all zeros.
    assert_eq!(plain.phases.mutate_s, 0.0);
    assert_eq!(plain.phases.plan_s, 0.0);
    assert_eq!(plain.phases.execute_s, 0.0);

    let _ = std::fs::remove_file(&trace_path);
}

#[test]
fn message_bytes_accompany_encrypted_keys() {
    // No recorder needed: the wire-size stat is part of the normal
    // report and must be consistent with the key count.
    let report = run(&SimConfig {
        intervals: 6,
        warmup: 2,
        ..SimConfig::quick()
    });
    for stats in &report.intervals {
        if stats.encrypted_keys > 0 {
            assert!(
                stats.message_bytes > stats.encrypted_keys,
                "message bytes ({}) should exceed the key count ({}) — every entry carries \
                 a header plus a wrapped key",
                stats.message_bytes,
                stats.encrypted_keys
            );
        } else {
            assert_eq!(stats.message_bytes, 0);
        }
    }
}
