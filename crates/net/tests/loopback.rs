//! End-to-end loopback test: the testkit's scenario generator drives a
//! real `rekeyd` over 127.0.0.1, and every socket-fed member must end
//! in *exactly* the state of its in-process twin in the `MemberFarm` —
//! same key rings, same key bytes, same wire digest — including under
//! injected disconnects mid-epoch (recovered via reconnect + NACK).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::{Join, Scheme, SchemeConfig};
use rekey_crypto::sha256::Sha256;
use rekey_crypto::Key;
use rekey_keytree::message::codec;
use rekey_keytree::MemberId;
use rekey_net::{
    BackoffConfig, ClientConfig, NetError, RejectReason, RekeyClient, Rekeyd, ServerConfig,
};
use rekey_testkit::{Delivery, GenParams, MemberFarm, Scenario};
use std::collections::HashMap;
use std::time::Duration;

const SYNC_BUDGET: Duration = Duration::from_secs(10);

fn test_client_config() -> ClientConfig {
    ClientConfig {
        backoff: BackoffConfig {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
            seed: 1,
        },
        ..ClientConfig::default()
    }
}

struct SocketMember {
    client: RekeyClient,
    start_epoch: u64,
}

/// Runs `scenario` through a manager, delivering every epoch both to
/// the in-process farm (lossless) and over real sockets, and checks
/// the two worlds agree. `disconnect_every` injects a hard disconnect
/// on one live client every N intervals, mid-epoch (after the epoch is
/// published but before that client has read it).
fn run_loopback(scheme: Scheme, seed: u64, intervals: usize, disconnect_every: Option<usize>) {
    let scenario = Scenario::generate(
        seed,
        intervals,
        &GenParams {
            bootstrap: 12,
            ..GenParams::default()
        },
    );
    let mut manager = scheme.build(
        &SchemeConfig::new()
            .degree(scenario.degree as usize)
            .s_period(u64::from(scenario.k)),
    );
    let mut churn_rng = StdRng::seed_from_u64(scenario.seed ^ 0x9E37_79B9_7F4A_7C15);
    let mut net_rng = StdRng::seed_from_u64(scenario.seed ^ 0x6A09_E667_F3BC_C908);

    let daemon = Rekeyd::bind("127.0.0.1:0", ServerConfig::default()).expect("bind rekeyd");
    let addr = daemon.local_addr();

    let mut farm = MemberFarm::new();
    let mut clients: HashMap<MemberId, SocketMember> = HashMap::new();
    let mut epoch_bytes: Vec<Vec<u8>> = Vec::new(); // epoch e at index e-1
    let mut disconnects = 0usize;

    for (interval, ops) in scenario.intervals.iter().enumerate() {
        let epoch = interval as u64 + 1;

        let mut joins = Vec::with_capacity(ops.joins.len());
        for op in &ops.joins {
            let member = MemberId(op.member);
            let key = Key::generate(&mut churn_rng);
            farm.admit(member, key.clone(), op.loss);
            daemon.register(member, key.clone());
            clients.insert(
                member,
                SocketMember {
                    client: RekeyClient::new(
                        addr,
                        member,
                        key.clone(),
                        epoch,
                        test_client_config(),
                    ),
                    start_epoch: epoch,
                },
            );
            let mut join = Join::new(member, key).with_loss_rate(op.loss);
            if let Some(class) = op.class {
                join = join.with_class(class);
            }
            joins.push(join);
        }
        let leaves: Vec<MemberId> = ops.leaves.iter().map(|&m| MemberId(m)).collect();
        for &m in &leaves {
            farm.depart(m);
            daemon.deregister(m);
            if let Some(mut gone) = clients.remove(&m) {
                gone.client.close();
            }
        }
        for &(m, loss) in &ops.loss_changes {
            farm.set_loss(MemberId(m), loss);
        }

        let out = manager
            .process_interval(&joins, &leaves, &mut churn_rng)
            .expect("manager accepts scenario batch");
        assert_eq!(out.message.epoch, epoch, "engine epochs are consecutive");

        let bytes = codec::encode_message(&out.message);
        let decoded = codec::decode_message(&bytes).expect("wire bytes decode");
        farm.deliver(&decoded, Delivery::Lossless, manager.as_ref(), &mut net_rng)
            .expect("farm accepts epoch");
        epoch_bytes.push(bytes);

        daemon.publish(&out.message).expect("publish epoch");

        // Inject a crash on one live client *after* the epoch hit the
        // wire but before that client read it: the client must come
        // back through reconnect + NACK.
        if let Some(every) = disconnect_every {
            if interval % every == every - 1 {
                // Deterministic victim: the lowest member id that has
                // already applied an epoch (so it certainly holds a
                // live connection to sever).
                let victim = clients
                    .iter_mut()
                    .filter(|(_, s)| s.client.applied() > 0)
                    .min_by_key(|(m, _)| m.0)
                    .map(|(_, s)| s);
                if let Some(victim) = victim {
                    victim.client.inject_disconnect();
                    disconnects += 1;
                }
            }
        }

        for socket_member in clients.values_mut() {
            socket_member
                .client
                .sync_to(epoch, SYNC_BUDGET)
                .expect("client catches up to published epoch");
        }
    }

    // Every surviving socket-fed member matches its in-process twin.
    let final_epoch = scenario.intervals.len() as u64;
    assert!(!clients.is_empty(), "scenario left no members to compare");
    let mut total_reconnects = 0u64;
    for (member, socket_member) in &clients {
        let twin = farm
            .member(*member)
            .unwrap_or_else(|| panic!("farm lost member {member:?}"));
        let over_socket = socket_member.client.member();

        let mut expected_ring: Vec<_> = twin.held_keys().collect();
        let mut actual_ring: Vec<_> = over_socket.held_keys().collect();
        expected_ring.sort_unstable();
        actual_ring.sort_unstable();
        assert_eq!(
            expected_ring, actual_ring,
            "member {member:?}: socket ring diverged from farm ring"
        );
        for (node, _) in expected_ring {
            assert_eq!(
                twin.key_for(node),
                over_socket.key_for(node),
                "member {member:?}: key bytes for {node:?} diverged"
            );
        }
        assert_eq!(
            over_socket.key_for(manager.dek_node()),
            Some(manager.dek()),
            "member {member:?}: socket member cannot derive the group DEK"
        );

        // The wire digest: SHA-256 over the codec bytes of every epoch
        // the client applied, in order — byte-identical to what left
        // the in-process encoder.
        let mut expected = Sha256::new();
        for e in socket_member.start_epoch..=final_epoch {
            expected.update(&epoch_bytes[(e - 1) as usize]);
        }
        assert_eq!(
            socket_member.client.digest(),
            expected.finalize(),
            "member {member:?}: wire digest diverged"
        );
        assert_eq!(socket_member.client.next_epoch(), final_epoch + 1);
        total_reconnects += socket_member.client.reconnects();
    }
    if disconnects > 0 {
        assert!(
            total_reconnects > 0,
            "injected {disconnects} disconnects but no client reconnected"
        );
    }

    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn lossless_loopback_matches_farm_one_tree() {
    run_loopback(Scheme::OneTree, 11, 10, None);
}

#[test]
fn lossless_loopback_matches_farm_combined() {
    run_loopback(Scheme::Combined, 12, 10, None);
}

#[test]
fn disconnected_clients_recover_via_nack_qt() {
    run_loopback(Scheme::Qt, 13, 12, Some(3));
}

#[test]
fn disconnected_clients_recover_via_nack_adaptive() {
    run_loopback(Scheme::Adaptive, 14, 12, Some(4));
}

#[test]
fn unregistered_member_is_rejected() {
    let daemon = Rekeyd::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut rng = StdRng::seed_from_u64(1);
    let key = Key::generate(&mut rng);
    let mut client = RekeyClient::new(
        daemon.local_addr(),
        MemberId(99),
        key,
        1,
        test_client_config(),
    );
    match client.poll(Duration::from_secs(2)) {
        Err(NetError::Rejected(RejectReason::UnknownMember)) => {}
        other => panic!("expected UnknownMember rejection, got {other:?}"),
    }
    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn wrong_key_fails_authentication() {
    let daemon = Rekeyd::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut rng = StdRng::seed_from_u64(2);
    let real = Key::generate(&mut rng);
    let wrong = Key::generate(&mut rng);
    daemon.register(MemberId(7), real);
    let mut client = RekeyClient::new(
        daemon.local_addr(),
        MemberId(7),
        wrong,
        1,
        test_client_config(),
    );
    match client.poll(Duration::from_secs(2)) {
        Err(NetError::Rejected(RejectReason::BadAuth)) => {}
        other => panic!("expected BadAuth rejection, got {other:?}"),
    }
    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn evicted_epoch_reports_gap() {
    // A tiny retransmission window: a client that needs epoch 1 after
    // the window moved past it must get a typed EpochEvicted error,
    // not silence or a corrupt state.
    let config = ServerConfig {
        window: 2,
        ..ServerConfig::default()
    };
    let daemon = Rekeyd::bind("127.0.0.1:0", config).expect("bind");
    let mut rng = StdRng::seed_from_u64(3);
    let key = Key::generate(&mut rng);
    let member = MemberId(1);
    daemon.register(member, key.clone());

    let mut manager = Scheme::OneTree.build(&SchemeConfig::new());
    for epoch in 1..=5u64 {
        let joins = if epoch == 1 {
            vec![Join::new(member, key.clone())]
        } else {
            vec![]
        };
        let out = manager
            .process_interval(&joins, &[], &mut rng)
            .expect("rekey");
        daemon.publish(&out.message).expect("publish");
    }

    let mut client = RekeyClient::new(daemon.local_addr(), member, key, 1, test_client_config());
    match client.sync_to(5, Duration::from_secs(2)) {
        Err(NetError::EpochEvicted { requested, oldest }) => {
            assert_eq!(requested, 1);
            assert_eq!(oldest, 4);
        }
        other => panic!("expected EpochEvicted, got {other:?}"),
    }
    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn shutdown_sends_bye_to_live_clients() {
    let daemon = Rekeyd::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    let mut rng = StdRng::seed_from_u64(4);
    let key = Key::generate(&mut rng);
    let member = MemberId(5);
    daemon.register(member, key.clone());

    let mut manager = Scheme::Tt.build(&SchemeConfig::new());
    let out = manager
        .process_interval(&[Join::new(member, key.clone())], &[], &mut rng)
        .expect("rekey");
    daemon.publish(&out.message).expect("publish");

    let mut client = RekeyClient::new(daemon.local_addr(), member, key, 1, test_client_config());
    client.sync_to(1, Duration::from_secs(5)).expect("sync");
    assert_eq!(daemon.session_count(), 1);

    daemon.shutdown().expect("clean shutdown");
    // The graceful drain delivered a Bye; the client notices instead
    // of spinning in reconnect.
    client
        .poll(Duration::from_secs(2))
        .expect("poll after shutdown");
    assert!(client.server_closed());
}
