//! Property tests for the wire layer under adversarial stream
//! conditions: frames fed one byte at a time, in odd-sized chunks, or
//! truncated anywhere must never panic and must either reassemble the
//! identical payloads or surface a typed error.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::{Join, Scheme, SchemeConfig};
use rekey_crypto::Key;
use rekey_keytree::message::codec;
use rekey_keytree::MemberId;
use rekey_net::frame::{encode_frame, FrameReader, DEFAULT_MAX_FRAME};
use rekey_net::proto::{self, Frame};

/// Splits `wire` into chunks whose sizes cycle through `pattern`
/// (sizes are 1-based; a pattern of `[0]` degrades to 1-byte reads).
fn feed_in_chunks(reader: &mut FrameReader, wire: &[u8], pattern: &[usize]) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut offset = 0;
    let mut i = 0;
    while offset < wire.len() {
        let size = pattern[i % pattern.len()].max(1);
        i += 1;
        let end = (offset + size).min(wire.len());
        reader.push(&wire[offset..end]);
        offset = end;
        while let Some(frame) = reader.next_frame().expect("well-formed stream") {
            out.push(frame);
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any sequence of frames, split at arbitrary odd-sized read
    /// boundaries, reassembles byte-identically and in order.
    #[test]
    fn split_reads_reassemble_exactly(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..400), 1..6),
        pattern in prop::collection::vec(1usize..13, 1..4),
    ) {
        let mut wire = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p, DEFAULT_MAX_FRAME).unwrap());
        }
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let got = feed_in_chunks(&mut reader, &wire, &pattern);
        prop_assert_eq!(got, payloads);
        prop_assert_eq!(reader.buffered(), 0);
    }

    /// Truncating the stream anywhere loses at most the final partial
    /// frame — every completed frame is intact, nothing panics, and
    /// the reader just reports "need more bytes".
    #[test]
    fn truncation_never_panics_or_corrupts(
        payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..200), 1..5),
        cut_num in 0u64..1001,
    ) {
        let mut wire = Vec::new();
        let mut boundaries = Vec::new();
        for p in &payloads {
            wire.extend(encode_frame(p, DEFAULT_MAX_FRAME).unwrap());
            boundaries.push(wire.len());
        }
        let cut = (cut_num as usize * wire.len()) / 1000;
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        reader.push(&wire[..cut]);
        let mut got = Vec::new();
        while let Some(frame) = reader.next_frame().expect("prefix of valid stream") {
            got.push(frame);
        }
        let complete = boundaries.iter().filter(|&&b| b <= cut).count();
        prop_assert_eq!(got.len(), complete);
        prop_assert_eq!(&got[..], &payloads[..complete]);
    }

    /// `proto::decode` of arbitrary bytes is total: a frame or a typed
    /// error, never a panic, and every *valid* frame survives a
    /// decode→encode→decode loop unchanged.
    #[test]
    fn arbitrary_payload_decode_is_total(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
        if let Ok(frame) = proto::decode(&bytes) {
            let rewired = proto::encode(&frame);
            prop_assert_eq!(proto::decode(&rewired).unwrap(), frame);
        }
    }

    /// A real rekey message carried in a `Rekey` frame over a
    /// byte-at-a-time stream decodes to the identical message.
    #[test]
    fn real_rekey_message_survives_one_byte_reads(seed in any::<u64>(), joins in 1usize..12) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut manager = Scheme::Tt.build(&SchemeConfig::new());
        let batch: Vec<Join> = (0..joins)
            .map(|i| Join::new(MemberId(i as u64), Key::generate(&mut rng)))
            .collect();
        let out = manager.process_interval(&batch, &[], &mut rng).unwrap();
        let payload = proto::encode(&Frame::Rekey {
            stamp_unix_ns: 1_700_000_000_000_000_000,
            payload: codec::encode_message(&out.message),
        });
        let wire = encode_frame(&payload, DEFAULT_MAX_FRAME).unwrap();

        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let frames = feed_in_chunks(&mut reader, &wire, &[1]);
        prop_assert_eq!(frames.len(), 1);
        match proto::decode(&frames[0]).unwrap() {
            Frame::Rekey { stamp_unix_ns, payload } => {
                prop_assert_eq!(stamp_unix_ns, 1_700_000_000_000_000_000);
                let decoded = codec::decode_message(&payload).expect("codec roundtrip");
                prop_assert_eq!(decoded, out.message);
            }
            other => prop_assert!(false, "expected Rekey frame, got {:?}", other),
        }
    }
}
