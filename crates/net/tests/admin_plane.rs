//! Live-observability integration test: churn runs through a real
//! `rekeyd` with the admin plane enabled, and the admin endpoints are
//! scraped *mid-run* — `/metrics` must validate as Prometheus text
//! with monotonically increasing counters and a non-empty end-to-end
//! propagation histogram, `/flightrec` must dump parseable JSONL, and
//! `/healthz` must flip to 503 during the shutdown drain while
//! `/metrics` stays scrapeable.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::{Join, Scheme, SchemeConfig};
use rekey_crypto::Key;
use rekey_keytree::MemberId;
use rekey_net::{BackoffConfig, ClientConfig, RekeyClient, Rekeyd, ServerConfig};
use rekey_obs::admin::http_get;
use rekey_obs::{json, prom};
use std::net::SocketAddr;
use std::time::{Duration, Instant};

const HTTP_TIMEOUT: Duration = Duration::from_secs(2);

fn get(addr: SocketAddr, path: &str) -> (u16, String) {
    let response = http_get(addr, path, HTTP_TIMEOUT).expect("admin endpoint answers");
    (response.status, response.body)
}

fn scrape(addr: SocketAddr) -> prom::PromSummary {
    let (status, body) = get(addr, "/metrics");
    assert_eq!(status, 200);
    prom::validate(&body).expect("served /metrics validates as Prometheus text")
}

/// Polls `/metrics` until the propagation histogram is non-empty
/// (client ACKs travel back asynchronously) or the deadline passes.
fn wait_for_acks(addr: SocketAddr, budget: Duration) -> prom::PromSummary {
    let deadline = Instant::now() + budget;
    loop {
        let summary = scrape(addr);
        if summary
            .histograms
            .get("net_propagation_seconds")
            .is_some_and(|&n| n > 0)
        {
            return summary;
        }
        assert!(
            Instant::now() < deadline,
            "no propagation ACKs reached the server within {budget:?}"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn admin_plane_reports_live_metrics_flight_events_and_drain() {
    let config = ServerConfig {
        admin_addr: Some("127.0.0.1:0".parse().unwrap()),
        ..ServerConfig::default()
    };
    let daemon = Rekeyd::bind("127.0.0.1:0", config).expect("bind rekeyd");
    let admin = daemon.admin_addr().expect("admin plane configured");

    // Health is green from the start.
    assert_eq!(get(admin, "/healthz"), (200, "ok\n".to_string()));
    assert_eq!(get(admin, "/readyz").0, 200);
    assert_eq!(get(admin, "/nothing-here").0, 404);

    // Drive churn: 6 members join at epoch 1, then empty rekey
    // intervals keep publishing epochs that every client applies.
    let mut rng = StdRng::seed_from_u64(77);
    let mut manager = Scheme::Tt.build(&SchemeConfig::new());
    let members: Vec<(MemberId, Key)> = (0..6)
        .map(|i| (MemberId(i), Key::generate(&mut rng)))
        .collect();
    for (member, key) in &members {
        daemon.register(*member, key.clone());
    }
    let joins: Vec<Join> = members
        .iter()
        .map(|(m, k)| Join::new(*m, k.clone()))
        .collect();
    let out = manager
        .process_interval(&joins, &[], &mut rng)
        .expect("rekey");
    daemon.publish(&out.message).expect("publish epoch 1");

    let client_config = ClientConfig {
        backoff: BackoffConfig {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
            seed: 1,
        },
        ..ClientConfig::default()
    };
    let mut clients: Vec<RekeyClient> = members
        .iter()
        .map(|(m, k)| RekeyClient::new(daemon.local_addr(), *m, k.clone(), 1, client_config))
        .collect();
    for client in &mut clients {
        client
            .sync_to(1, Duration::from_secs(10))
            .expect("sync epoch 1");
    }

    // Mid-run scrape #1: counters are present and the exposition is
    // parser-valid Prometheus text.
    let first = scrape(admin);
    assert!(first.counters["net_fanout_bytes_total"] > 0.0);
    assert_eq!(first.counters["net_epochs_published_total"], 1.0);
    assert_eq!(first.counters["net_sessions_opened_total"], 6.0);

    // More churn, then scrape #2: every counter is monotonic.
    for epoch in 2..=5u64 {
        let out = manager.process_interval(&[], &[], &mut rng).expect("rekey");
        daemon.publish(&out.message).expect("publish epoch");
        for client in &mut clients {
            client
                .sync_to(epoch, Duration::from_secs(10))
                .expect("client catches up");
        }
    }
    let second = wait_for_acks(admin, Duration::from_secs(5));
    for (family, &value) in &first.counters {
        assert!(
            second.counters[family] >= value,
            "{family} went backwards: {} -> {}",
            value,
            second.counters[family]
        );
    }
    assert_eq!(second.counters["net_epochs_published_total"], 5.0);
    assert!(second.counters["net_acks_total"] > 0.0);
    assert!(second.histograms["net_propagation_seconds"] > 0);
    // Per-shard propagation is exposed too (6 members over 2 shards,
    // ids 0..6 alternate, so both shards saw ACKs).
    assert!(second
        .histograms
        .contains_key("net_propagation_shard0_seconds"));
    assert!(second
        .histograms
        .contains_key("net_propagation_shard1_seconds"));

    // `/vars` carries pre-computed quantiles for pollers.
    let (status, vars) = get(admin, "/vars");
    assert_eq!(status, 200);
    let doc = json::parse(&vars).expect("/vars is JSON");
    let propagation = doc
        .get("hists")
        .and_then(|h| h.get("net.propagation"))
        .expect("propagation hist in /vars");
    assert!(
        propagation
            .get("p99_ns")
            .and_then(json::Value::as_num)
            .unwrap()
            > 0.0
    );
    assert!(
        doc.get("counters")
            .and_then(|c| c.get("net.epochs_published"))
            .and_then(json::Value::as_num)
            == Some(5.0)
    );

    // `/flightrec` dumps JSONL: every line parses, publishes and
    // accepts are on the record.
    let (status, flight) = get(admin, "/flightrec");
    assert_eq!(status, 200);
    assert!(!flight.is_empty());
    for line in flight.lines() {
        json::parse(line).expect("every flight line is JSON");
    }
    assert!(flight.contains("\"kind\":\"epoch_publish\""));
    assert!(flight.contains("\"kind\":\"accept\""));
    assert!(flight.contains("\"kind\":\"propagation_ack\""));

    // Drain: health flips to 503 while metrics stay scrapeable.
    daemon.begin_shutdown();
    assert_eq!(get(admin, "/healthz"), (503, "draining\n".to_string()));
    assert_eq!(get(admin, "/readyz").0, 503);
    let during_drain = scrape(admin);
    assert!(during_drain.counters["net_epochs_published_total"] >= 5.0);

    for client in &mut clients {
        client.close();
    }
    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn rekeyd_without_admin_port_still_collects() {
    let daemon = Rekeyd::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    assert!(daemon.admin_addr().is_none());
    let mut rng = StdRng::seed_from_u64(5);
    let mut manager = Scheme::OneTree.build(&SchemeConfig::new());
    let key = Key::generate(&mut rng);
    daemon.register(MemberId(1), key.clone());
    let out = manager
        .process_interval(&[Join::new(MemberId(1), key)], &[], &mut rng)
        .expect("rekey");
    daemon.publish(&out.message).expect("publish");

    let snap = daemon.collector().snapshot();
    assert_eq!(snap.counter("net.epochs_published"), 1);
    assert!(snap.counter("net.fanout.bytes") > 0);
    assert!(daemon.flight().recorded() > 0);
    daemon.shutdown().expect("clean shutdown");
}
