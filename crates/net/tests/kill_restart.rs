//! Crash/restart durability over real sockets: a `rekeyd` journaling
//! to a `DirStorage` is torn down mid-stream *without* a drain-time
//! snapshot (the moral equivalent of SIGKILL — everything in memory is
//! lost, only the WAL and the last periodic snapshot survive), a fresh
//! daemon recovers from the same directory on a new port, clients are
//! redirected to it, and the combined stream every client applied must
//! be byte-identical to an uninterrupted reference run — including for
//! a straggler that stopped polling epochs before the crash and
//! recovers them from the restarted daemon's republished window.

use rand::rngs::StdRng;
use rand::SeedableRng;
use rekey_core::{GroupKeyManager, Join, Journal, Scheme, SchemeConfig};
use rekey_crypto::sha256::Sha256;
use rekey_keytree::message::{codec, RekeyMessage};
use rekey_keytree::MemberId;
use rekey_net::{demo_member_key, BackoffConfig, ClientConfig, RekeyClient, Rekeyd, ServerConfig};
use rekey_storage::DirStorage;
use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

const SEED: u64 = 42;
const KEY_SEED: u64 = 9;
const MEMBERS: u64 = 6;
const CRASH_AFTER: u64 = 7;
const TOTAL: u64 = 12;
const SYNC_BUDGET: Duration = Duration::from_secs(10);

fn test_client_config() -> ClientConfig {
    ClientConfig {
        backoff: BackoffConfig {
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
            seed: 1,
        },
        ..ClientConfig::default()
    }
}

/// A unique per-test scratch directory, removed on drop.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("rekey-kill-restart-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn build_manager() -> Box<dyn GroupKeyManager> {
    Scheme::Tt.build(&SchemeConfig::new().degree(3).s_period(3))
}

/// The deterministic membership schedule both worlds run: interval 1
/// admits the demo members, later intervals cycle ghost members
/// (outside the client id range) through join/leave. Presence is read
/// back from the manager, so the restarted run derives the same
/// batches from its recovered state.
fn batch(interval: u64, manager: &dyn GroupKeyManager) -> (Vec<Join>, Vec<MemberId>) {
    let mut joins = Vec::new();
    let mut leaves = Vec::new();
    if interval == 1 {
        for m in 0..MEMBERS {
            joins.push(Join::new(
                MemberId(m),
                demo_member_key(KEY_SEED, MemberId(m)),
            ));
        }
    } else {
        let ghost = MemberId(100 + interval % 3);
        if manager.contains(ghost) {
            leaves.push(ghost);
        } else {
            joins.push(Join::new(ghost, demo_member_key(KEY_SEED, ghost)));
        }
    }
    (joins, leaves)
}

/// The uninterrupted reference: same scheme, seed, and schedule, no
/// crash — collects the codec bytes of every epoch.
fn reference_epochs() -> Vec<Vec<u8>> {
    let mut manager = build_manager();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut epochs = Vec::new();
    for interval in 1..=TOTAL {
        let (joins, leaves) = batch(interval, manager.as_ref());
        let out = manager
            .process_interval(&joins, &leaves, &mut rng)
            .expect("reference interval");
        assert_eq!(out.message.epoch, interval);
        epochs.push(codec::encode_message(&out.message));
    }
    epochs
}

fn digest_of(epochs: &[Vec<u8>]) -> [u8; 32] {
    let mut digest = Sha256::new();
    for bytes in epochs {
        digest.update(bytes);
    }
    digest.finalize()
}

fn register_all(daemon: &Rekeyd) {
    for m in 0..MEMBERS {
        daemon.register(MemberId(m), demo_member_key(KEY_SEED, MemberId(m)));
    }
}

/// One durable interval published through a daemon.
fn publish_interval(
    journal: &mut Journal<DirStorage>,
    manager: &mut Box<dyn GroupKeyManager>,
    rng: &mut StdRng,
    daemon: &Rekeyd,
    interval: u64,
) {
    let (joins, leaves) = batch(interval, manager.as_ref());
    let mut publish_err = None;
    let mut sink = |message: &RekeyMessage| {
        if let Err(e) = daemon.publish(message) {
            publish_err = Some(e);
        }
    };
    let out = journal
        .durable_interval(manager.as_mut(), &joins, &leaves, rng, &mut sink)
        .expect("durable interval");
    assert!(publish_err.is_none(), "publish failed: {publish_err:?}");
    assert_eq!(out.message.epoch, interval);
}

/// Runs the kill/restart scenario. `snapshot_every` shapes what the
/// restart finds on disk (periodic snapshots + short WAL tail vs one
/// long WAL); `straggler` optionally stops polling one member several
/// epochs before the crash, forcing it to recover those epochs from
/// the *restarted* daemon's republished retransmission window.
fn run_kill_restart(tag: &str, snapshot_every: u64, straggler: Option<MemberId>) {
    let scratch = TempDir::new(tag);
    let reference = reference_epochs();

    let mut manager = build_manager();
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut journal = Journal::new(
        DirStorage::open(&scratch.0).expect("open storage"),
        snapshot_every,
    );

    let daemon = Rekeyd::bind("127.0.0.1:0", ServerConfig::default()).expect("bind");
    register_all(&daemon);
    let mut clients: HashMap<MemberId, RekeyClient> = (0..MEMBERS)
        .map(|m| {
            let member = MemberId(m);
            (
                member,
                RekeyClient::new(
                    daemon.local_addr(),
                    member,
                    demo_member_key(KEY_SEED, member),
                    1,
                    test_client_config(),
                ),
            )
        })
        .collect();

    for interval in 1..=CRASH_AFTER {
        publish_interval(&mut journal, &mut manager, &mut rng, &daemon, interval);
        for (member, client) in clients.iter_mut() {
            // The straggler goes quiet three epochs before the crash:
            // those epochs exist only in the journal once the first
            // daemon dies.
            if straggler == Some(*member) && interval > CRASH_AFTER - 3 {
                continue;
            }
            client.sync_to(interval, SYNC_BUDGET).expect("sync");
        }
    }

    // Crash: the daemon dies and every in-memory structure — manager,
    // RNG, journal, retransmission window — is dropped. No drain-time
    // snapshot is taken; only what `durable_interval` already forced
    // to disk survives.
    drop(daemon);
    drop(manager);
    drop(journal);
    #[allow(clippy::drop_non_drop)]
    drop(rng);

    // Restart: fresh manager, fresh journal, same directory, new port.
    let mut manager = build_manager();
    let mut journal = Journal::new(
        DirStorage::open(&scratch.0).expect("reopen storage"),
        snapshot_every,
    );
    let recovery = journal.recover(manager.as_mut()).expect("recover");
    assert_eq!(
        recovery.epoch, CRASH_AFTER,
        "recovery resumes at the logged epoch"
    );
    assert_eq!(recovery.dropped_wal_bytes, 0);
    let mut rng = recovery
        .rng
        .expect("a non-empty journal always yields an RNG position");

    // The re-derived epochs are byte-identical to the reference run.
    for message in &recovery.messages {
        assert_eq!(
            codec::encode_message(message),
            reference[(message.epoch - 1) as usize],
            "replayed epoch {} diverged from the uninterrupted run",
            message.epoch
        );
    }

    let daemon = Rekeyd::bind("127.0.0.1:0", ServerConfig::default()).expect("rebind");
    register_all(&daemon);
    // Reseed the retransmission window so reconnecting clients can
    // NACK what they missed while the first daemon was dead.
    for message in &recovery.messages {
        daemon.publish(message).expect("republish");
    }

    for client in clients.values_mut() {
        client.redirect(daemon.local_addr());
    }
    for interval in CRASH_AFTER + 1..=TOTAL {
        publish_interval(&mut journal, &mut manager, &mut rng, &daemon, interval);
        for client in clients.values_mut() {
            client
                .sync_to(interval, SYNC_BUDGET)
                .expect("sync after restart");
        }
    }

    // Every client — including the straggler — applied the exact byte
    // stream of the uninterrupted run and holds the final DEK.
    let expected_digest = digest_of(&reference);
    for (member, client) in &clients {
        assert_eq!(client.applied(), TOTAL, "member {member:?} applied count");
        assert_eq!(client.next_epoch(), TOTAL + 1);
        assert_eq!(
            client.digest(),
            expected_digest,
            "member {member:?}: stream across crash/restart is not byte-identical"
        );
        assert_eq!(
            client.member().key_for(manager.dek_node()),
            Some(manager.dek()),
            "member {member:?} cannot derive the final group DEK"
        );
    }
    if let Some(straggler) = straggler {
        assert!(
            clients[&straggler].reconnects() > 0,
            "the straggler never reconnected"
        );
    }

    daemon.shutdown().expect("clean shutdown");
}

#[test]
fn restart_resumes_byte_identical_stream() {
    // Periodic snapshots: the restart loads a snapshot and replays a
    // short WAL tail.
    run_kill_restart("snap", 3, None);
}

#[test]
fn straggler_recovers_missed_epochs_across_restart() {
    // No periodic snapshots: the whole stream is in the WAL, so the
    // restarted daemon's republished window reaches back far enough
    // for the straggler to recover everything it slept through.
    run_kill_restart("straggler", 0, Some(MemberId(0)))
}
