//! Length-prefixed framing over a byte stream.
//!
//! Every frame on a rekey-net connection is `len:u32 (big-endian)`
//! followed by `len` payload bytes. [`FrameReader`] is the incremental
//! decoder: feed it whatever the socket produced — one byte at a time,
//! odd chunks, several frames glued together — and it yields complete
//! payloads in order. It never panics on adversarial input; oversized
//! or empty frames surface as typed [`NetError`]s.

use crate::error::NetError;
use std::io::{self, Read};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Bytes of the length prefix in front of every frame.
pub const FRAME_HEADER_LEN: usize = 4;

/// Default maximum payload length an endpoint accepts (16 MiB —
/// comfortably above any realistic rekey message, far below an
/// allocation-bomb).
pub const DEFAULT_MAX_FRAME: usize = 16 * 1024 * 1024;

/// Prepends the length header to `payload`, returning one contiguous
/// wire buffer.
///
/// # Errors
///
/// [`NetError::FrameTooLarge`] if the payload exceeds `max`, and
/// [`NetError::Malformed`] for an empty payload (the protocol has no
/// zero-length frames; an empty frame on the wire is always a bug).
pub fn encode_frame(payload: &[u8], max: usize) -> Result<Vec<u8>, NetError> {
    if payload.is_empty() {
        return Err(NetError::Malformed {
            what: "attempted to send an empty frame",
        });
    }
    if payload.len() > max {
        return Err(NetError::FrameTooLarge {
            len: payload.len(),
            max,
        });
    }
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(payload);
    Ok(buf)
}

/// Incremental frame decoder: accumulates stream bytes and yields
/// complete payloads.
#[derive(Debug)]
pub struct FrameReader {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily so 1-byte feeds do
    /// not trigger O(n²) copying.
    start: usize,
    max: usize,
}

impl FrameReader {
    /// A reader that rejects payloads longer than `max` bytes.
    pub fn new(max: usize) -> Self {
        FrameReader {
            buf: Vec::new(),
            start: 0,
            max,
        }
    }

    /// Appends raw stream bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Extracts the next complete frame payload, or `None` if more
    /// stream bytes are needed.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLarge`] when the header announces a payload
    /// above the limit and [`NetError::Malformed`] for a zero-length
    /// frame. Both mean the stream is unrecoverable — the caller must
    /// drop the connection.
    pub fn next_frame(&mut self) -> Result<Option<Vec<u8>>, NetError> {
        if self.buffered() < FRAME_HEADER_LEN {
            self.compact();
            return Ok(None);
        }
        let header = &self.buf[self.start..self.start + FRAME_HEADER_LEN];
        let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
        if len == 0 {
            return Err(NetError::Malformed {
                what: "zero-length frame",
            });
        }
        if len > self.max {
            return Err(NetError::FrameTooLarge { len, max: self.max });
        }
        if self.buffered() < FRAME_HEADER_LEN + len {
            self.compact();
            return Ok(None);
        }
        let begin = self.start + FRAME_HEADER_LEN;
        let payload = self.buf[begin..begin + len].to_vec();
        self.start = begin + len;
        self.compact();
        Ok(Some(payload))
    }

    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start > 64 * 1024 {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// Reads one complete frame from a blocking stream, polling in short
/// read-timeout slices so the overall `deadline` is honored. Used on
/// both sides of the handshake, before a connection goes nonblocking.
///
/// # Errors
///
/// [`NetError::Timeout`] when the deadline passes, [`NetError::Closed`]
/// on EOF, and any framing error from [`FrameReader::next_frame`].
pub fn read_frame_deadline(
    stream: &mut TcpStream,
    reader: &mut FrameReader,
    deadline: Instant,
    what: &'static str,
) -> Result<Vec<u8>, NetError> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some(frame) = reader.next_frame()? {
            return Ok(frame);
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(NetError::Timeout { what });
        }
        let slice = (deadline - now).min(Duration::from_millis(50));
        // A zero Duration means "no timeout" to the socket API; clamp up.
        stream.set_read_timeout(Some(slice.max(Duration::from_millis(1))))?;
        match stream.read(&mut chunk) {
            Ok(0) => return Err(NetError::Closed),
            Ok(n) => reader.push(&chunk[..n]),
            Err(e) if retryable(&e) => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
}

/// Whether a socket error just means "try again" (timeout slice
/// elapsed or the call was interrupted).
pub(crate) fn retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut | io::ErrorKind::Interrupted
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_frame_roundtrips() {
        let wire = encode_frame(b"hello", DEFAULT_MAX_FRAME).unwrap();
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        reader.push(&wire);
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"hello");
        assert!(reader.next_frame().unwrap().is_none());
        assert_eq!(reader.buffered(), 0);
    }

    #[test]
    fn byte_at_a_time_reassembles() {
        let wire = encode_frame(&[7u8; 300], DEFAULT_MAX_FRAME).unwrap();
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let mut out = None;
        for &b in &wire {
            reader.push(&[b]);
            if let Some(frame) = reader.next_frame().unwrap() {
                assert!(out.is_none());
                out = Some(frame);
            }
        }
        assert_eq!(out.unwrap(), vec![7u8; 300]);
    }

    #[test]
    fn coalesced_frames_split_correctly() {
        let mut wire = encode_frame(b"one", DEFAULT_MAX_FRAME).unwrap();
        wire.extend(encode_frame(b"two", DEFAULT_MAX_FRAME).unwrap());
        wire.extend(encode_frame(b"three", DEFAULT_MAX_FRAME).unwrap());
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        reader.push(&wire);
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"one");
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"two");
        assert_eq!(reader.next_frame().unwrap().unwrap(), b"three");
        assert!(reader.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_header_is_rejected_before_buffering() {
        let mut reader = FrameReader::new(1024);
        reader.push(&u32::MAX.to_be_bytes());
        match reader.next_frame() {
            Err(NetError::FrameTooLarge { len, max }) => {
                assert_eq!(len, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected FrameTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn zero_length_frame_is_malformed() {
        let mut reader = FrameReader::new(1024);
        reader.push(&0u32.to_be_bytes());
        assert!(matches!(
            reader.next_frame(),
            Err(NetError::Malformed { .. })
        ));
    }

    #[test]
    fn encode_rejects_oversize_and_empty() {
        assert!(matches!(
            encode_frame(&[0u8; 11], 10),
            Err(NetError::FrameTooLarge { .. })
        ));
        assert!(matches!(
            encode_frame(&[], 10),
            Err(NetError::Malformed { .. })
        ));
    }

    #[test]
    fn long_session_compacts_consumed_prefix() {
        let mut reader = FrameReader::new(DEFAULT_MAX_FRAME);
        let wire = encode_frame(&[1u8; 1000], DEFAULT_MAX_FRAME).unwrap();
        for _ in 0..200 {
            reader.push(&wire);
            assert!(reader.next_frame().unwrap().is_some());
        }
        // All consumed — the buffer must not have grown without bound.
        assert_eq!(reader.buffered(), 0);
        assert!(reader.buf.len() <= 128 * 1024);
    }
}
