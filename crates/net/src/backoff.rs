//! Capped exponential backoff with deterministic jitter.
//!
//! Reconnect storms are the classic failure mode of fan-out daemons:
//! every client that lost its connection retries on the same schedule
//! and the thundering herd knocks the server over again. The standard
//! fix is exponential backoff with jitter; the twist here is that the
//! jitter stream is seeded, so tests get byte-identical retry
//! schedules run after run.

use std::time::Duration;

/// Backoff policy knobs.
#[derive(Debug, Clone, Copy)]
pub struct BackoffConfig {
    /// First retry delay.
    pub base: Duration,
    /// Ceiling no delay exceeds.
    pub cap: Duration,
    /// Seed for the jitter stream. Two `Backoff`s with the same config
    /// produce the same schedule — deterministic for tests; production
    /// callers seed from something per-client (e.g. the member id).
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            base: Duration::from_millis(50),
            cap: Duration::from_secs(5),
            seed: 0x9E37_79B9,
        }
    }
}

/// Stateful backoff schedule: `delay(n) ∈ [exp/2, exp)` where
/// `exp = min(cap, base · 2ⁿ)` — the "equal jitter" variant, keeping a
/// guaranteed floor between attempts while still decorrelating
/// clients.
#[derive(Debug, Clone)]
pub struct Backoff {
    config: BackoffConfig,
    attempt: u32,
    state: u64,
}

impl Backoff {
    /// A fresh schedule at attempt zero.
    pub fn new(config: BackoffConfig) -> Self {
        Backoff {
            config,
            attempt: 0,
            state: config.seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Retries since the last [`Backoff::reset`].
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Returns the next delay and advances the schedule.
    pub fn next_delay(&mut self) -> Duration {
        let shift = self.attempt.min(20);
        let exp_ns = (self.config.base.as_nanos() as u64)
            .saturating_mul(1u64 << shift)
            .min(self.config.cap.as_nanos() as u64)
            .max(1);
        // splitmix64 step for the jitter draw.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let half = exp_ns / 2;
        let jittered = half + z % (exp_ns - half).max(1);
        self.attempt = self.attempt.saturating_add(1);
        Duration::from_nanos(jittered)
    }

    /// Resets after a successful connection: the next failure starts
    /// the schedule from `base` again.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_for_a_seed() {
        let config = BackoffConfig::default();
        let mut a = Backoff::new(config);
        let mut b = Backoff::new(config);
        for _ in 0..10 {
            assert_eq!(a.next_delay(), b.next_delay());
        }
    }

    #[test]
    fn delays_grow_and_respect_the_cap() {
        let config = BackoffConfig {
            base: Duration::from_millis(10),
            cap: Duration::from_millis(640),
            seed: 7,
        };
        let mut backoff = Backoff::new(config);
        let mut prev_floor = Duration::ZERO;
        for attempt in 0..12 {
            let d = backoff.next_delay();
            let exp = config
                .cap
                .min(config.base * 2u32.saturating_pow(attempt.min(20)));
            assert!(d >= exp / 2, "attempt {attempt}: {d:?} below floor");
            assert!(d < exp.max(Duration::from_nanos(1)) + Duration::from_nanos(1));
            assert!(d >= prev_floor);
            prev_floor = exp / 2;
        }
    }

    #[test]
    fn reset_restarts_the_schedule() {
        let mut backoff = Backoff::new(BackoffConfig::default());
        for _ in 0..5 {
            backoff.next_delay();
        }
        assert_eq!(backoff.attempt(), 5);
        backoff.reset();
        assert_eq!(backoff.attempt(), 0);
        let d = backoff.next_delay();
        assert!(d < BackoffConfig::default().base);
    }
}
