//! `rekeyd` — the threaded TCP key-distribution daemon.
//!
//! ```text
//!                       ┌─────────────┐
//!   key server thread ──│  publish()  │── frames the epoch once,
//!                       └──────┬──────┘   stores it in the window
//!                  ┌───────────┼───────────┐
//!            ┌─────▼────┐ ┌────▼─────┐ ┌───▼──────┐
//!            │ shard 0  │ │ shard 1  │ │ shard N  │   worker threads
//!            └─────┬────┘ └────┬─────┘ └───┬──────┘
//!              sessions     sessions    sessions      (member % N)
//! ```
//!
//! One accept thread owns the listener and runs the challenge/response
//! handshake under blocking socket timeouts; authenticated sessions
//! are handed to a worker *shard* chosen by hashing the member id.
//! Each shard owns its sessions outright — their nonblocking sockets,
//! read buffers, and bounded send queues — so fan-out needs no
//! per-session locking: [`Rekeyd::publish`] frames the epoch once into
//! an `Arc<[u8]>` and every shard enqueues the same allocation.
//!
//! Backpressure is a disconnect: a session whose send queue is full is
//! dropped rather than allowed to stall the shard or buffer without
//! bound. The client reconnects, re-authenticates, and NACKs what it
//! missed out of the retransmission window of the last `window` epochs
//! (also served to late joiners and reconnecting clients; an evicted
//! epoch answers with a `Gap` frame).
//!
//! # Observability
//!
//! The daemon owns an [`rekey_obs::Collector`] and a lock-free
//! [`FlightRecorder`] and records into both directly — no reliance on
//! the process-global recorder, so `/metrics` is live even when global
//! tracing is off. With [`ServerConfig::admin_addr`] set, an admin
//! HTTP plane ([`rekey_obs::admin`]) serves `/metrics`, `/healthz`,
//! `/readyz`, `/vars`, and `/flightrec` on a separate port. True
//! end-to-end rekey latency comes from the wire: `publish` stamps the
//! fan-out wall clock into each `Rekey` frame, clients measure the lag
//! at DEK install and report it back with an `Ack`, and the daemon
//! folds those into `net.propagation` (aggregate and per shard).

use crate::error::{NetError, RejectReason};
use crate::frame::{self, encode_frame, FrameReader};
use crate::proto::{self, Frame};
use rekey_crypto::sha256::Sha256;
use rekey_crypto::Key;
use rekey_keytree::message::{codec, RekeyMessage};
use rekey_keytree::MemberId;
use rekey_obs::admin::{AdminServer, AdminState};
use rekey_obs::{Collector, FlightKind, FlightRecorder, HealthFlags, Recorder};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant, SystemTime};

/// Daemon configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker shards fanning out rekey frames (≥ 1).
    pub workers: usize,
    /// Maximum accepted frame payload.
    pub max_frame: usize,
    /// Bound on a session's send queue, in frames. A session that
    /// falls this far behind is disconnected (backpressure policy).
    pub send_queue_frames: usize,
    /// Retransmission window: how many recent epochs stay NACKable.
    pub window: usize,
    /// Handshake must complete within this budget.
    pub handshake_timeout: Duration,
    /// Graceful-shutdown budget for flushing session queues.
    pub drain_timeout: Duration,
    /// Where to serve the admin HTTP plane (`/metrics`, `/healthz`,
    /// `/readyz`, `/vars`, `/flightrec`). `None` disables it; metrics
    /// and the flight recorder are still collected either way.
    pub admin_addr: Option<SocketAddr>,
    /// Flight-recorder ring capacity, in events (40 bytes each).
    pub flight_events: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            max_frame: frame::DEFAULT_MAX_FRAME,
            send_queue_frames: 1024,
            window: 128,
            handshake_timeout: Duration::from_secs(2),
            drain_timeout: Duration::from_secs(1),
            admin_addr: None,
            flight_events: 4096,
        }
    }
}

/// Retransmission window: the last `cap` published epochs, pre-framed.
struct Window {
    cap: usize,
    latest: u64,
    frames: VecDeque<(u64, Arc<[u8]>)>,
}

impl Window {
    fn push(&mut self, epoch: u64, framed: Arc<[u8]>) {
        self.frames.push_back((epoch, framed));
        while self.frames.len() > self.cap {
            self.frames.pop_front();
        }
        self.latest = epoch;
    }

    fn get(&self, epoch: u64) -> Option<Arc<[u8]>> {
        // Epochs are consecutive, so the deque is indexable.
        let (front, _) = self.frames.front()?;
        let idx = epoch.checked_sub(*front)? as usize;
        self.frames.get(idx).map(|(_, f)| f.clone())
    }

    fn oldest(&self) -> u64 {
        self.frames.front().map(|(e, _)| *e).unwrap_or(0)
    }
}

/// State shared between the accept thread, shards, and the handle.
struct Shared {
    registry: Mutex<HashMap<MemberId, Key>>,
    window: RwLock<Window>,
    shutdown: AtomicBool,
    sessions: AtomicUsize,
    nonce_counter: AtomicU64,
    metrics: Arc<Collector>,
    flight: Arc<FlightRecorder>,
    health: Arc<HealthFlags>,
    /// Per-shard propagation histogram names (`net.propagation.shardN`),
    /// leaked once per daemon because the recorder keys on
    /// `&'static str`. Bounded by the worker count.
    shard_prop_names: Vec<&'static str>,
}

impl Shared {
    /// Publishes the live session count as a gauge after a change.
    fn sample_sessions(&self) {
        let live = self.sessions.load(Ordering::SeqCst);
        self.metrics
            .sample("net.sessions.live", rekey_obs::now_ns(), live as f64);
    }
}

/// An in-flight (possibly partially written) outbound frame.
struct Outbound {
    bytes: Arc<[u8]>,
    offset: usize,
}

/// One authenticated connection, owned by exactly one shard.
struct Session {
    member: MemberId,
    stream: TcpStream,
    reader: FrameReader,
    queue: VecDeque<Outbound>,
    dead: bool,
}

impl Session {
    /// Enqueues a pre-framed buffer, applying the backpressure bound.
    fn enqueue(&mut self, bytes: Arc<[u8]>, shared: &Shared, cap: usize) {
        if self.dead {
            return;
        }
        if self.queue.len() >= cap {
            shared.metrics.count("net.sessions.dropped_backpressure", 1);
            shared.flight.record(
                FlightKind::BackpressureDrop,
                self.member.0,
                self.queue.len() as u64,
            );
            self.dead = true;
            return;
        }
        self.queue.push_back(Outbound { bytes, offset: 0 });
    }

    /// Writes as much queued data as the socket accepts right now.
    fn pump_write(&mut self, shared: &Shared) {
        while let Some(front) = self.queue.front_mut() {
            match self.stream.write(&front.bytes[front.offset..]) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    shared.metrics.count("net.bytes_out", n as u64);
                    front.offset += n;
                    if front.offset == front.bytes.len() {
                        self.queue.pop_front();
                    }
                }
                Err(e) if frame::retryable(&e) => return,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    /// Drains readable bytes and reacts to client frames (NACKs,
    /// propagation ACKs, Bye).
    fn pump_read(&mut self, shared: &Shared, cap: usize) {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    shared.metrics.count("net.bytes_in", n as u64);
                    self.reader.push(&chunk[..n]);
                }
                Err(e) if frame::retryable(&e) => break,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
        loop {
            match self.reader.next_frame() {
                Ok(Some(payload)) => {
                    if self.handle_frame(&payload, shared, cap).is_err() {
                        self.dead = true;
                        return;
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    fn handle_frame(
        &mut self,
        payload: &[u8],
        shared: &Shared,
        cap: usize,
    ) -> Result<(), NetError> {
        match proto::decode(payload)? {
            Frame::Nack { epochs } => {
                shared.metrics.count("net.nacks", 1);
                shared
                    .flight
                    .record(FlightKind::Nack, self.member.0, epochs.len() as u64);
                let window = shared.window.read().expect("window lock");
                for epoch in epochs {
                    match window.get(epoch) {
                        Some(framed) => {
                            shared.metrics.count("net.retransmit.frames", 1);
                            shared
                                .flight
                                .record(FlightKind::Retransmit, self.member.0, epoch);
                            self.enqueue(framed, shared, cap);
                        }
                        None if epoch > window.latest => {
                            // Future epoch: nothing to do yet; the live
                            // fan-out will deliver it.
                        }
                        None => {
                            shared.metrics.count("net.retransmit.gaps", 1);
                            shared.flight.record(FlightKind::Gap, self.member.0, epoch);
                            let gap = proto::encode(&Frame::Gap {
                                oldest: window.oldest(),
                                requested: epoch,
                            });
                            let framed: Arc<[u8]> = encode_frame(&gap, usize::MAX)?.into();
                            self.enqueue(framed, shared, cap);
                        }
                    }
                }
                Ok(())
            }
            Frame::Ack { epoch, lag_ns } => {
                // End-to-end propagation as measured by the client:
                // fan-out stamp to DEK install. Aggregate + per shard.
                shared.metrics.count("net.acks", 1);
                shared.metrics.time("net.propagation", lag_ns);
                let shards = shared.shard_prop_names.len() as u64;
                let shard = (self.member.0 % shards) as usize;
                shared.metrics.time(shared.shard_prop_names[shard], lag_ns);
                shared
                    .flight
                    .record(FlightKind::PropagationAck, epoch, lag_ns);
                Ok(())
            }
            Frame::Bye => {
                self.dead = true;
                Ok(())
            }
            // Anything else from an authenticated client is a
            // protocol violation.
            _ => Err(NetError::Malformed {
                what: "unexpected frame from client",
            }),
        }
    }
}

/// Commands a shard receives from the accept thread and the handle.
enum ShardCmd {
    Adopt(Box<Session>),
    Publish(Arc<[u8]>),
    Shutdown,
}

/// The daemon handle. Dropping it shuts the daemon down gracefully.
pub struct Rekeyd {
    shared: Arc<Shared>,
    shards: Vec<Sender<ShardCmd>>,
    threads: Vec<JoinHandle<()>>,
    addr: SocketAddr,
    admin: Option<AdminServer>,
    stopped: bool,
}

impl Rekeyd {
    /// Binds the listener, spawns the accept thread and `workers`
    /// shard threads, and starts admitting sessions. The daemon
    /// records into a fresh [`Collector`]; use [`Rekeyd::bind_with`]
    /// to share one with other instrumentation.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding.
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig) -> Result<Rekeyd, NetError> {
        Rekeyd::bind_with(addr, config, Arc::new(Collector::new()))
    }

    /// [`Rekeyd::bind`] recording into a caller-supplied collector —
    /// the admin plane then exposes the caller's counters alongside
    /// the daemon's own.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener or the
    /// admin port.
    pub fn bind_with<A: ToSocketAddrs>(
        addr: A,
        config: ServerConfig,
        metrics: Arc<Collector>,
    ) -> Result<Rekeyd, NetError> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let workers = config.workers.max(1);
        let shard_prop_names = (0..workers)
            .map(|i| &*Box::leak(format!("net.propagation.shard{i}").into_boxed_str()))
            .collect();
        let shared = Arc::new(Shared {
            registry: Mutex::new(HashMap::new()),
            window: RwLock::new(Window {
                cap: config.window.max(1),
                latest: 0,
                frames: VecDeque::new(),
            }),
            shutdown: AtomicBool::new(false),
            sessions: AtomicUsize::new(0),
            nonce_counter: AtomicU64::new(0),
            metrics,
            flight: Arc::new(FlightRecorder::new(config.flight_events)),
            health: HealthFlags::up(),
            shard_prop_names,
        });

        let admin = match config.admin_addr {
            Some(admin_addr) => Some(
                AdminServer::bind(
                    admin_addr,
                    AdminState {
                        collector: shared.metrics.clone(),
                        flight: Some(shared.flight.clone()),
                        health: shared.health.clone(),
                    },
                )
                .map_err(NetError::Io)?,
            ),
            None => None,
        };

        let mut shards = Vec::with_capacity(workers);
        let mut threads = Vec::with_capacity(workers + 1);
        for index in 0..workers {
            let (tx, rx) = mpsc::channel();
            shards.push(tx);
            let shared = shared.clone();
            threads.push(
                thread::Builder::new()
                    .name(format!("rekeyd-shard-{index}"))
                    .spawn(move || shard_main(rx, shared, config))
                    .map_err(NetError::Io)?,
            );
        }

        {
            let shared = shared.clone();
            let shards = shards.clone();
            threads.push(
                thread::Builder::new()
                    .name("rekeyd-accept".into())
                    .spawn(move || accept_main(listener, shared, shards, config))
                    .map_err(NetError::Io)?,
            );
        }

        Ok(Rekeyd {
            shared,
            shards,
            threads,
            addr,
            admin,
            stopped: false,
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound admin-plane address, when one was configured.
    pub fn admin_addr(&self) -> Option<SocketAddr> {
        self.admin.as_ref().map(AdminServer::local_addr)
    }

    /// The collector the daemon records into.
    pub fn collector(&self) -> Arc<Collector> {
        self.shared.metrics.clone()
    }

    /// The daemon's flight recorder (for dumps on signal/panic).
    pub fn flight(&self) -> Arc<FlightRecorder> {
        self.shared.flight.clone()
    }

    /// Registers a member's individual key; only registered members
    /// pass the handshake. Safe to call while serving.
    pub fn register(&self, member: MemberId, individual_key: Key) {
        self.shared
            .registry
            .lock()
            .expect("registry lock")
            .insert(member, individual_key);
    }

    /// Removes a member from the handshake registry. Live sessions are
    /// unaffected (departed members keep receiving ciphertext they can
    /// no longer use — exactly the model the testkit's farm assumes).
    pub fn deregister(&self, member: MemberId) {
        self.shared
            .registry
            .lock()
            .expect("registry lock")
            .remove(&member);
    }

    /// Publishes one epoch: frames the message once and fans it out to
    /// every live session, retaining it in the retransmission window.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] if the daemon has shut down, and framing
    /// errors if the encoded message exceeds the frame limit.
    pub fn publish(&self, message: &RekeyMessage) -> Result<(), NetError> {
        let started = Instant::now();
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return Err(NetError::Closed);
        }
        // The wall-clock stamp rides in the shared frame: every client
        // measures install-time lag against the same fan-out instant.
        let payload = proto::encode(&Frame::Rekey {
            stamp_unix_ns: proto::unix_now_ns(),
            payload: codec::encode_message(message),
        });
        let framed: Arc<[u8]> = encode_frame(&payload, frame::DEFAULT_MAX_FRAME)?.into();
        self.shared
            .metrics
            .count("net.fanout.bytes", framed.len() as u64);
        self.shared.metrics.count("net.epochs_published", 1);
        self.shared
            .flight
            .record(FlightKind::EpochPublish, message.epoch, framed.len() as u64);
        self.shared
            .window
            .write()
            .expect("window lock")
            .push(message.epoch, framed.clone());
        for shard in &self.shards {
            shard
                .send(ShardCmd::Publish(framed.clone()))
                .map_err(|_| NetError::Closed)?;
        }
        self.shared
            .metrics
            .time("net.fanout", started.elapsed().as_nanos() as u64);
        Ok(())
    }

    /// Latest epoch published so far (0 = none).
    pub fn latest_epoch(&self) -> u64 {
        self.shared.window.read().expect("window lock").latest
    }

    /// Currently live authenticated sessions.
    pub fn session_count(&self) -> usize {
        self.shared.sessions.load(Ordering::SeqCst)
    }

    /// Starts the drain without tearing anything down yet: new
    /// handshakes are refused, `/healthz` and `/readyz` flip to 503,
    /// and [`Rekeyd::publish`] returns [`NetError::Closed`] — but
    /// existing sessions, the admin plane, and all threads stay up so
    /// operators (and the integration tests) can watch the drain.
    /// Follow with [`Rekeyd::shutdown`] to finish.
    pub fn begin_shutdown(&self) {
        self.shared.health.begin_drain();
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Graceful shutdown: stop accepting, drain session queues (each
    /// session gets a `Bye`), join all threads. The admin plane is
    /// stopped last so `/metrics` stays scrapeable through the drain.
    ///
    /// # Errors
    ///
    /// [`NetError::Closed`] if a worker thread panicked.
    pub fn shutdown(mut self) -> Result<(), NetError> {
        self.stop()
    }

    fn stop(&mut self) -> Result<(), NetError> {
        if self.stopped {
            return Ok(());
        }
        self.stopped = true;
        self.begin_shutdown();
        for shard in &self.shards {
            // A dead shard already stopped; that is shutdown enough.
            let _ = shard.send(ShardCmd::Shutdown);
        }
        let mut panicked = false;
        for handle in self.threads.drain(..) {
            panicked |= handle.join().is_err();
        }
        if let Some(admin) = self.admin.take() {
            admin.shutdown();
        }
        if panicked {
            Err(NetError::Closed)
        } else {
            Ok(())
        }
    }
}

impl Drop for Rekeyd {
    fn drop(&mut self) {
        let _ = self.stop();
    }
}

/// Accept loop: nonblocking accept + blocking handshake, then hand the
/// session to `member % shards`.
fn accept_main(
    listener: TcpListener,
    shared: Arc<Shared>,
    shards: Vec<Sender<ShardCmd>>,
    config: ServerConfig,
) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let started = Instant::now();
                match handshake(stream, &shared, &config) {
                    Ok(session) => {
                        let shard = (session.member.0 % shards.len() as u64) as usize;
                        shared.sessions.fetch_add(1, Ordering::SeqCst);
                        shared.metrics.count("net.sessions.opened", 1);
                        shared
                            .flight
                            .record(FlightKind::Accept, session.member.0, 0);
                        shared.sample_sessions();
                        if shards[shard]
                            .send(ShardCmd::Adopt(Box::new(session)))
                            .is_err()
                        {
                            shared.sessions.fetch_sub(1, Ordering::SeqCst);
                            shared.sample_sessions();
                        }
                    }
                    Err(e) => {
                        shared.metrics.count("net.sessions.rejected", 1);
                        let reason = match e {
                            NetError::Rejected(reason) => u64::from(reason.code()),
                            _ => 0,
                        };
                        shared.flight.record(FlightKind::HandshakeFail, reason, 0);
                    }
                }
                shared
                    .metrics
                    .time("net.accept", started.elapsed().as_nanos() as u64);
            }
            Err(e) if frame::retryable(&e) => thread::sleep(Duration::from_millis(2)),
            Err(_) => thread::sleep(Duration::from_millis(10)),
        }
    }
}

/// Challenge/response handshake, run on the accept thread under
/// blocking socket timeouts. On success the socket flips to
/// nonblocking and the session is ready for a shard.
fn handshake(
    mut stream: TcpStream,
    shared: &Shared,
    config: &ServerConfig,
) -> Result<Session, NetError> {
    let started = Instant::now();
    let deadline = started + config.handshake_timeout;
    stream.set_nodelay(true)?;
    stream.set_write_timeout(Some(config.handshake_timeout))?;

    let nonce = fresh_nonce(shared);
    let hello = encode_frame(&proto::encode(&Frame::ServerHello { nonce }), usize::MAX)?;
    stream.write_all(&hello)?;

    let mut reader = FrameReader::new(config.max_frame);
    let payload = frame::read_frame_deadline(&mut stream, &mut reader, deadline, "client hello")?;
    let (member, tag) = match proto::decode(&payload) {
        Ok(Frame::Hello { member, tag }) => (member, tag),
        Ok(_) => {
            return Err(NetError::Malformed {
                what: "expected hello frame",
            })
        }
        Err(e) => {
            // A version mismatch deserves an explicit reject so the
            // client reports the right cause.
            let _ = reject(&mut stream, RejectReason::BadVersion);
            return Err(e);
        }
    };

    let key = shared
        .registry
        .lock()
        .expect("registry lock")
        .get(&member)
        .cloned();
    let Some(key) = key else {
        let _ = reject(&mut stream, RejectReason::UnknownMember);
        return Err(NetError::Rejected(RejectReason::UnknownMember));
    };
    let expected = proto::hello_tag(&key, &nonce, member);
    if !constant_time_eq(&expected, &tag) {
        let _ = reject(&mut stream, RejectReason::BadAuth);
        return Err(NetError::Rejected(RejectReason::BadAuth));
    }
    if shared.shutdown.load(Ordering::SeqCst) {
        let _ = reject(&mut stream, RejectReason::ShuttingDown);
        return Err(NetError::Rejected(RejectReason::ShuttingDown));
    }

    let latest_epoch = shared.window.read().expect("window lock").latest;
    let welcome = encode_frame(&proto::encode(&Frame::Welcome { latest_epoch }), usize::MAX)?;
    stream.write_all(&welcome)?;
    stream.set_nonblocking(true)?;
    shared
        .metrics
        .time("net.session.handshake", started.elapsed().as_nanos() as u64);

    Ok(Session {
        member,
        stream,
        reader,
        queue: VecDeque::new(),
        dead: false,
    })
}

fn reject(stream: &mut TcpStream, reason: RejectReason) -> Result<(), NetError> {
    let frame = encode_frame(&proto::encode(&Frame::Reject { reason }), usize::MAX)?;
    stream.write_all(&frame)?;
    Ok(())
}

/// A fresh 32-byte challenge: SHA-256 over wall clock, a process-wide
/// counter, and the shared state's address. Unpredictable enough for a
/// liveness challenge (the secret in the handshake is the HMAC key,
/// not the nonce).
fn fresh_nonce(shared: &Shared) -> [u8; proto::NONCE_LEN] {
    let mut hasher = Sha256::new();
    let now = SystemTime::now()
        .duration_since(SystemTime::UNIX_EPOCH)
        .unwrap_or_default();
    hasher.update(&now.as_nanos().to_be_bytes());
    hasher.update(
        &shared
            .nonce_counter
            .fetch_add(1, Ordering::SeqCst)
            .to_be_bytes(),
    );
    hasher.update(&(shared as *const Shared as usize).to_be_bytes());
    hasher.finalize()
}

fn constant_time_eq(a: &[u8; 32], b: &[u8; 32]) -> bool {
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

/// Shard main loop: owns its sessions, multiplexing channel commands
/// with socket polling.
fn shard_main(rx: Receiver<ShardCmd>, shared: Arc<Shared>, config: ServerConfig) {
    let mut sessions: Vec<Session> = Vec::new();
    let cap = config.send_queue_frames.max(1);
    loop {
        // Idle shards block on the channel; busy shards poll it.
        let first = if sessions.is_empty() {
            match rx.recv() {
                Ok(cmd) => Some(cmd),
                Err(_) => return,
            }
        } else {
            match rx.recv_timeout(Duration::from_millis(1)) {
                Ok(cmd) => Some(cmd),
                Err(RecvTimeoutError::Timeout) => None,
                Err(RecvTimeoutError::Disconnected) => return,
            }
        };
        let mut commands: Vec<ShardCmd> = first.into_iter().collect();
        while let Ok(cmd) = rx.try_recv() {
            commands.push(cmd);
        }

        let mut max_depth = 0usize;
        for cmd in commands {
            match cmd {
                ShardCmd::Adopt(session) => sessions.push(*session),
                ShardCmd::Publish(framed) => {
                    for session in &mut sessions {
                        session.enqueue(framed.clone(), &shared, cap);
                        max_depth = max_depth.max(session.queue.len());
                    }
                }
                ShardCmd::Shutdown => {
                    drain(&mut sessions, &shared, config.drain_timeout);
                    return;
                }
            }
        }
        if max_depth > 0 {
            shared
                .metrics
                .sample("net.queue.depth", rekey_obs::now_ns(), max_depth as f64);
        }

        for session in &mut sessions {
            session.pump_write(&shared);
            if !session.dead {
                session.pump_read(&shared, cap);
            }
        }
        let before = sessions.len();
        sessions.retain(|s| {
            if s.dead {
                shared
                    .flight
                    .record(FlightKind::SessionClosed, s.member.0, 0);
            }
            !s.dead
        });
        let removed = before - sessions.len();
        if removed > 0 {
            shared.sessions.fetch_sub(removed, Ordering::SeqCst);
            shared.metrics.count("net.sessions.closed", removed as u64);
            shared.sample_sessions();
        }
    }
}

/// Graceful drain: append a `Bye` to every queue and flush until done
/// or the budget runs out.
fn drain(sessions: &mut Vec<Session>, shared: &Shared, budget: Duration) {
    if let Ok(bye) = encode_frame(&proto::encode(&Frame::Bye), usize::MAX) {
        let bye: Arc<[u8]> = bye.into();
        for session in sessions.iter_mut() {
            // Bypass the backpressure bound: the Bye must go out even
            // on a full queue if the socket drains in time.
            session.queue.push_back(Outbound {
                bytes: bye.clone(),
                offset: 0,
            });
        }
    }
    let deadline = Instant::now() + budget;
    while Instant::now() < deadline {
        let mut pending = false;
        for session in sessions.iter_mut() {
            if !session.dead && !session.queue.is_empty() {
                session.pump_write(shared);
                pending |= !session.dead && !session.queue.is_empty();
            }
        }
        if !pending {
            break;
        }
        thread::sleep(Duration::from_millis(1));
    }
    for session in sessions.iter() {
        shared
            .flight
            .record(FlightKind::SessionClosed, session.member.0, 0);
    }
    let count = sessions.len();
    sessions.clear();
    shared.sessions.fetch_sub(count, Ordering::SeqCst);
    shared.metrics.count("net.sessions.closed", count as u64);
    shared.sample_sessions();
}
