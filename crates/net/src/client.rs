//! `RekeyClient` — a real [`GroupMember`] fed over a socket.
//!
//! The client owns the member's key ring and a TCP connection to a
//! [`crate::server::Rekeyd`]. It reconnects with capped exponential
//! backoff (deterministic jitter, see [`crate::backoff`]), and on
//! every (re)connect it resubscribes by NACKing the epochs between
//! what it has applied and what the server's `Welcome` advertises —
//! reconnect recovery and late-join catch-up are the same code path.
//!
//! Epochs are applied strictly in order: an out-of-order `Rekey` frame
//! (retransmissions can overtake the live fan-out) is parked in a
//! pending buffer and the missing prefix is NACKed; `process` runs
//! only when the next expected epoch is available. The client also
//! maintains a SHA-256 digest over the codec bytes of every applied
//! epoch, so tests can compare a socket-fed member byte-for-byte
//! against an in-process delivery path.
//!
//! Every `Rekey` frame carries the server's fan-out wall-clock stamp;
//! at DEK-install time the client measures the end-to-end propagation
//! lag, records it under `net.client.propagation_ns`, and reports it
//! back to the server with a best-effort `Ack`. Connection-health
//! counters (`net.client.connect_attempts`, `.backoff_sleeps`,
//! `.handshake_retries`, `.replayed_frames`, …) go to the global
//! recorder when one is installed.

use crate::backoff::{Backoff, BackoffConfig};
use crate::error::NetError;
use crate::frame::{self, encode_frame, FrameReader};
use crate::proto::{self, Frame, MAX_NACK_EPOCHS};
use rekey_crypto::sha256::Sha256;
use rekey_crypto::Key;
use rekey_keytree::member::GroupMember;
use rekey_keytree::message::codec;
use rekey_keytree::MemberId;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

/// Client configuration.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// Maximum accepted frame payload.
    pub max_frame: usize,
    /// Budget for one TCP connect attempt.
    pub connect_timeout: Duration,
    /// Budget for one handshake (after connect).
    pub handshake_timeout: Duration,
    /// Reconnect backoff policy.
    pub backoff: BackoffConfig,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_frame: frame::DEFAULT_MAX_FRAME,
            connect_timeout: Duration::from_secs(2),
            handshake_timeout: Duration::from_secs(2),
            backoff: BackoffConfig::default(),
        }
    }
}

struct Conn {
    stream: TcpStream,
    reader: FrameReader,
}

/// A key-distribution client wrapping one real group member.
pub struct RekeyClient {
    addr: SocketAddr,
    config: ClientConfig,
    member: GroupMember,
    individual_key: Key,
    conn: Option<Conn>,
    backoff: Backoff,
    /// Next epoch to apply (everything below is done).
    next_epoch: u64,
    /// Out-of-order arrivals: epoch → (fan-out stamp, codec bytes).
    pending: BTreeMap<u64, (u64, Vec<u8>)>,
    /// Epochs we have NACKed and not yet seen arrive, to count
    /// retransmission-window replays distinctly from live fan-out.
    nacked: BTreeSet<u64>,
    digest: Sha256,
    applied: u64,
    reconnects: u64,
    server_latest: u64,
    server_closed: bool,
    connected_once: bool,
}

impl RekeyClient {
    /// A client for `member` whose first wanted epoch is
    /// `start_epoch` (engine epochs are 1-based; a member admitted at
    /// interval `t` wants epochs from `t + 1` on). No I/O happens
    /// until the first [`RekeyClient::poll`].
    pub fn new(
        addr: SocketAddr,
        member: MemberId,
        individual_key: Key,
        start_epoch: u64,
        config: ClientConfig,
    ) -> Self {
        let backoff = Backoff::new(BackoffConfig {
            // Decorrelate clients without losing determinism.
            seed: config.backoff.seed ^ member.0,
            ..config.backoff
        });
        RekeyClient {
            addr,
            config,
            member: GroupMember::new(member, individual_key.clone()),
            individual_key,
            conn: None,
            backoff,
            next_epoch: start_epoch.max(1),
            pending: BTreeMap::new(),
            nacked: BTreeSet::new(),
            digest: Sha256::new(),
            applied: 0,
            reconnects: 0,
            server_latest: 0,
            server_closed: false,
            connected_once: false,
        }
    }

    /// The wrapped member (key ring, DEK lookups).
    pub fn member(&self) -> &GroupMember {
        &self.member
    }

    /// Next epoch the client still needs.
    pub fn next_epoch(&self) -> u64 {
        self.next_epoch
    }

    /// Epochs applied so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Successful connections beyond the first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Whether the server said `Bye`.
    pub fn server_closed(&self) -> bool {
        self.server_closed
    }

    /// SHA-256 over the codec bytes of every applied epoch, in order.
    pub fn digest(&self) -> [u8; 32] {
        self.digest.clone().finalize()
    }

    /// Points the client at a different server address, dropping any
    /// live connection. All epoch state (next wanted epoch, digest,
    /// pending buffer) is kept: the next poll connects to the new
    /// address, re-authenticates, and NACKs whatever is missing — the
    /// recovery path a client takes when a crashed daemon restarts on
    /// a new port.
    pub fn redirect(&mut self, addr: SocketAddr) {
        self.addr = addr;
        self.conn = None;
        // A Bye from the old (crashed or drained) server is void: the
        // new address is a new stream.
        self.server_closed = false;
        self.backoff.reset();
        rekey_obs::count("net.client.redirects", 1);
    }

    /// Drops the connection without telling the server — simulates a
    /// crash mid-epoch. The next poll reconnects and NACKs the gap.
    pub fn inject_disconnect(&mut self) {
        if self.conn.take().is_some() {
            rekey_obs::count("net.client.injected_disconnects", 1);
        }
    }

    /// Graceful close: best-effort `Bye`, then drop the connection.
    pub fn close(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            if let Ok(bye) = encode_frame(&proto::encode(&Frame::Bye), self.config.max_frame) {
                let _ = conn.stream.write_all(&bye);
            }
        }
    }

    /// Connects (with handshake and resubscribe-NACK), retrying with
    /// backoff until `deadline`.
    fn ensure_connected(&mut self, deadline: Instant) -> Result<(), NetError> {
        if self.conn.is_some() {
            return Ok(());
        }
        loop {
            match self.connect_once() {
                Ok(()) => return Ok(()),
                Err(NetError::Rejected(reason)) => {
                    // Authentication and version failures are not
                    // transient; retrying would loop forever.
                    return Err(NetError::Rejected(reason));
                }
                Err(e) => {
                    rekey_obs::count("net.client.handshake_retries", 1);
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(e);
                    }
                    let delay = self.backoff.next_delay().min(deadline - now);
                    rekey_obs::count("net.client.backoff_sleeps", 1);
                    thread::sleep(delay);
                }
            }
        }
    }

    fn connect_once(&mut self) -> Result<(), NetError> {
        rekey_obs::count("net.client.connect_attempts", 1);
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)?;
        stream.set_nodelay(true)?;
        let mut stream = stream;
        stream.set_write_timeout(Some(self.config.handshake_timeout))?;
        let deadline = Instant::now() + self.config.handshake_timeout;
        let mut reader = FrameReader::new(self.config.max_frame);

        let payload =
            frame::read_frame_deadline(&mut stream, &mut reader, deadline, "server hello")?;
        let nonce = match proto::decode(&payload)? {
            Frame::ServerHello { nonce } => nonce,
            Frame::Reject { reason } => return Err(NetError::Rejected(reason)),
            _ => {
                return Err(NetError::Malformed {
                    what: "expected server hello",
                })
            }
        };

        let tag = proto::hello_tag(&self.individual_key, &nonce, self.member.id());
        let hello = encode_frame(
            &proto::encode(&Frame::Hello {
                member: self.member.id(),
                tag,
            }),
            self.config.max_frame,
        )?;
        stream.write_all(&hello)?;

        let payload = frame::read_frame_deadline(&mut stream, &mut reader, deadline, "welcome")?;
        let latest = match proto::decode(&payload)? {
            Frame::Welcome { latest_epoch } => latest_epoch,
            Frame::Reject { reason } => return Err(NetError::Rejected(reason)),
            _ => {
                return Err(NetError::Malformed {
                    what: "expected welcome",
                })
            }
        };
        self.server_latest = latest;

        if self.connected_once {
            self.reconnects += 1;
            rekey_obs::count("net.client.reconnects", 1);
        }
        self.connected_once = true;
        self.backoff.reset();
        self.conn = Some(Conn { stream, reader });

        // Resubscribe: ask for everything between our state and the
        // server's head. Late join and reconnect are the same path.
        self.nack_missing(latest)?;
        Ok(())
    }

    /// NACKs every epoch in `[next_epoch, upto]` not already pending,
    /// bounded by [`MAX_NACK_EPOCHS`] (the rest follows once the first
    /// batch lands and uncovers the still-missing suffix).
    fn nack_missing(&mut self, upto: u64) -> Result<(), NetError> {
        if self.next_epoch > upto {
            return Ok(());
        }
        let epochs: Vec<u64> = (self.next_epoch..=upto)
            .filter(|e| !self.pending.contains_key(e))
            .take(MAX_NACK_EPOCHS)
            .collect();
        if epochs.is_empty() {
            return Ok(());
        }
        rekey_obs::count("net.client.nacks", 1);
        self.nacked.extend(epochs.iter().copied());
        let nack = encode_frame(
            &proto::encode(&Frame::Nack { epochs }),
            self.config.max_frame,
        )?;
        let Some(conn) = self.conn.as_mut() else {
            return Err(NetError::Closed);
        };
        conn.stream.write_all(&nack)?;
        Ok(())
    }

    /// Reads the socket until progress is made (at least one epoch
    /// applied), `wait` elapses, the server says `Bye`, or a fatal
    /// error occurs; transient connection failures trigger
    /// reconnect-with-backoff internally. Returns the number of epochs
    /// applied during this call.
    ///
    /// # Errors
    ///
    /// Fatal conditions only: handshake rejection,
    /// [`NetError::EpochEvicted`] (the window has moved past what we
    /// need), codec failures, and key-tree rejections. Socket drops
    /// are handled by reconnecting.
    pub fn poll(&mut self, wait: Duration) -> Result<u64, NetError> {
        let deadline = Instant::now() + wait;
        let mut applied = 0u64;
        let mut chunk = [0u8; 4096];
        loop {
            if self.server_closed {
                return Ok(applied);
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(applied);
            }
            if self.conn.is_none() {
                self.ensure_connected(deadline)?;
            }
            let conn = self.conn.as_mut().expect("just connected");
            let slice = (deadline - now).min(Duration::from_millis(20));
            conn.stream
                .set_read_timeout(Some(slice.max(Duration::from_millis(1))))?;
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.conn = None;
                    continue;
                }
                Ok(n) => {
                    rekey_obs::count("net.client.bytes_in", n as u64);
                    conn.reader.push(&chunk[..n]);
                }
                Err(e) if frame::retryable(&e) => continue,
                Err(_) => {
                    self.conn = None;
                    continue;
                }
            }
            applied += self.drain_frames()?;
            if applied > 0 {
                return Ok(applied);
            }
        }
    }

    /// Polls until `target` is applied (i.e. `next_epoch > target`).
    ///
    /// # Errors
    ///
    /// [`NetError::Timeout`] if the budget runs out, plus every fatal
    /// error of [`RekeyClient::poll`].
    pub fn sync_to(&mut self, target: u64, budget: Duration) -> Result<(), NetError> {
        let deadline = Instant::now() + budget;
        while self.next_epoch <= target {
            let now = Instant::now();
            if now >= deadline {
                return Err(NetError::Timeout { what: "epoch sync" });
            }
            self.poll((deadline - now).min(Duration::from_millis(50)))?;
        }
        Ok(())
    }

    /// Decodes and dispatches every complete frame in the read buffer.
    fn drain_frames(&mut self) -> Result<u64, NetError> {
        let mut applied = 0u64;
        loop {
            let next = match self.conn.as_mut() {
                Some(conn) => conn.reader.next_frame()?,
                None => return Ok(applied),
            };
            let Some(payload) = next else {
                return Ok(applied);
            };
            match proto::decode(&payload)? {
                Frame::Rekey {
                    stamp_unix_ns,
                    payload,
                } => applied += self.on_rekey(stamp_unix_ns, payload)?,
                Frame::Gap { oldest, requested } => {
                    if requested >= self.next_epoch {
                        return Err(NetError::EpochEvicted { requested, oldest });
                    }
                    // Stale gap for an epoch we already have: ignore.
                }
                Frame::Bye => {
                    self.server_closed = true;
                    self.conn = None;
                    return Ok(applied);
                }
                _ => {
                    return Err(NetError::Malformed {
                        what: "unexpected frame from server",
                    })
                }
            }
        }
    }

    /// Ingests one epoch payload: apply in order, park out-of-order
    /// arrivals and NACK the uncovered prefix. Applied epochs measure
    /// and report end-to-end propagation against the fan-out stamp.
    fn on_rekey(&mut self, stamp_unix_ns: u64, payload: Vec<u8>) -> Result<u64, NetError> {
        let message = codec::decode_message(&payload).ok_or(NetError::Codec { epoch: None })?;
        let epoch = message.epoch;
        self.server_latest = self.server_latest.max(epoch);
        if self.nacked.remove(&epoch) {
            rekey_obs::count("net.client.replayed_frames", 1);
        }
        if epoch < self.next_epoch {
            return Ok(0); // duplicate (e.g. double-NACKed)
        }
        self.pending.insert(epoch, (stamp_unix_ns, payload));

        let mut applied = 0u64;
        while let Some((stamp, bytes)) = self.pending.remove(&self.next_epoch) {
            let message = codec::decode_message(&bytes).ok_or(NetError::Codec { epoch: None })?;
            self.member.process(&message)?;
            self.digest.update(&bytes);
            let installed_epoch = self.next_epoch;
            self.applied += 1;
            self.next_epoch += 1;
            applied += 1;
            self.report_propagation(installed_epoch, stamp);
        }
        if applied == 0 {
            // Still blocked on a hole below `epoch`: ask for it.
            self.nack_missing(epoch.saturating_sub(1))?;
        }
        Ok(applied)
    }

    /// The DEK for `epoch` is installed: measure the lag against the
    /// server's fan-out stamp, record it locally, and report it back
    /// with a best-effort `Ack` (an unsendable ack is dropped — the
    /// measurement is observability, not protocol state).
    fn report_propagation(&mut self, epoch: u64, stamp_unix_ns: u64) {
        if stamp_unix_ns == 0 {
            return; // server clock was unusable at publish
        }
        let lag_ns = proto::unix_now_ns().saturating_sub(stamp_unix_ns);
        rekey_obs::time_ns("net.client.propagation_ns", lag_ns);
        let ack = proto::encode(&Frame::Ack { epoch, lag_ns });
        if let (Some(conn), Ok(framed)) = (
            self.conn.as_mut(),
            encode_frame(&ack, self.config.max_frame),
        ) {
            let _ = conn.stream.write_all(&framed);
        }
    }
}
