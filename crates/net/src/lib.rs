//! `rekey-net` — key distribution over real sockets.
//!
//! The rest of the workspace produces and verifies rekey messages
//! in-process; this crate puts the existing versioned
//! `rekey_keytree::message::codec` envelopes on TCP, std-only and
//! zero-dependency:
//!
//! - [`server::Rekeyd`] — a threaded daemon: one accept thread
//!   running an HMAC challenge/response handshake (under the member's
//!   registered individual key, via [`rekey_crypto::hmac`]), N worker
//!   shards owning sessions hashed by member id, per-session bounded
//!   send queues whose overflow policy is *disconnect* (backpressure),
//!   and a retransmission window of the last W epochs served to NACKs.
//! - [`client::RekeyClient`] — wraps a real
//!   [`rekey_keytree::member::GroupMember`]; reconnects with capped
//!   exponential backoff and deterministic jitter, and resubscribes by
//!   NACKing the missed epoch range on every (re)connect.
//! - [`frame`] — `u32` length-prefixed framing with a strict size
//!   limit and an incremental [`frame::FrameReader`].
//! - [`proto`] — the typed session frames (`ServerHello`/`Hello`/
//!   `Welcome`/`Reject`/`Rekey`/`Nack`/`Gap`/`Bye`/`Ack`). Protocol
//!   v2: `Rekey` carries the publish wall-clock stamp and clients
//!   answer with `Ack{epoch, lag_ns}` after installing the DEK.
//! - [`backoff`] — the reconnect schedule.
//! - [`NetError`] — one typed error for the whole layer; no
//!   stringly-typed results.
//!
//! # Observability
//!
//! The daemon owns a live [`rekey_obs::Collector`] and a lock-free
//! [`rekey_obs::FlightRecorder`]; with [`ServerConfig::admin_addr`]
//! set it also serves an admin plane (`/metrics`, `/healthz`,
//! `/readyz`, `/vars`, `/flightrec`). Server-side metrics include
//! `net.fanout` / `net.session.handshake` timings, byte and session
//! counters, queue-depth gauges, and the end-to-end
//! `net.propagation` histogram (publish stamp → client DEK install,
//! reported back in `Ack` frames, also split per shard as
//! `net.propagation.shardN`). The client feeds the global recorder:
//! `net.client.connect_attempts`, `net.client.handshake_retries`,
//! `net.client.backoff_sleeps`, `net.client.replayed_frames`, and the
//! `net.client.propagation_ns` histogram.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod client;
pub mod frame;
pub mod proto;
pub mod server;

mod error;

pub use backoff::{Backoff, BackoffConfig};
pub use client::{ClientConfig, RekeyClient};
pub use error::{NetError, RejectReason};
pub use server::{Rekeyd, ServerConfig};

use rekey_crypto::Key;
use rekey_keytree::MemberId;

/// Derives the demo individual key for `member` from a shared secret
/// seed — how the `rekey serve` / `rekey client` CLI pair agree on
/// member keys without a registration service. Real deployments
/// register per-member keys out of band; this is for demos, smoke
/// tests, and the loopback CI job.
pub fn demo_member_key(key_seed: u64, member: MemberId) -> Key {
    let mut out = [0u8; 32];
    rekey_crypto::hkdf::derive(
        b"rekey-net demo member keys",
        &key_seed.to_be_bytes(),
        &member.0.to_be_bytes(),
        &mut out,
    );
    Key::from_bytes(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_keys_differ_by_member_and_seed() {
        let a = demo_member_key(1, MemberId(1));
        assert_eq!(a, demo_member_key(1, MemberId(1)));
        assert_ne!(a, demo_member_key(1, MemberId(2)));
        assert_ne!(a, demo_member_key(2, MemberId(1)));
    }
}
